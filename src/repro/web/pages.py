"""HTML page renderers: menu, library, input form, design spreadsheet.

Pure functions from state to markup; :mod:`repro.web.app` wires them to
routes.  The three screens the paper shows:

* Figure 4 — the primitive input form (parameters in, instant power/
  capacitance feedback, "save to design" at the bottom);
* Figure 2 — a chip-level design spreadsheet (one row per block, Play
  button, engineering-notation powers, share column);
* Figure 5 — a system-level spreadsheet whose sub-design rows hyperlink
  to their own spreadsheets.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.design import Design, SubDesign
from ..core.estimator import AreaReport, PowerReport, TimingReport
from ..core.expressions import Expression
from ..core.parameters import Parameter
from ..core.units import format_eng, format_quantity
from ..library.catalog import Library, LibraryEntry
from . import html as H


def cred(user: str, auth: str = "") -> str:
    """Query-string credential: cookie-less 1996-style URL rewriting.

    Users without a password authenticate by name alone (the paper's
    default); password-protected users carry a login token in every URL.
    """
    suffix = f"&auth={auth}" if auth else ""
    return f"user={user}{suffix}"


def auth_fields(user: str, auth: str = "") -> H.Raw:
    """The hidden credential inputs every form posts back."""
    fields = [H.hidden_input("user", user)]
    if auth:
        fields.append(H.hidden_input("auth", auth))
    return H.join(*fields)


def nav_for(user: str, auth: str = "") -> List[Tuple[str, str]]:
    q = cred(user, auth)
    return [
        (f"/menu?{q}", "Main Menu"),
        (f"/library?{q}", "Library"),
        (f"/define?{q}", "Define Model"),
        (f"/sweep?{q}", "Sweeps"),
        ("/tutorial", "Tutorial"),
        ("/help", "Help"),
    ]


def login_page(error: str = "") -> str:
    body = [
        H.paragraph(
            "PowerPlay tracks each individual's designs and preferences. "
            "Since WWW browsers do not supply user names, please identify "
            "yourself."
        ),
        H.form(
            "/login",
            H.join(
                "Username: ",
                H.text_input("user"),
                "  Password (if set): ",
                H.tag("input", type="password", name="password"),
                " ",
                H.submit("Enter PowerPlay"),
            ),
        ),
    ]
    if error:
        body.insert(0, H.tag("p", error, class_="error"))
    return H.page("PowerPlay — Early Power Exploration", *body)


def menu_page(
    user: str,
    libraries: Sequence[Library],
    designs: Sequence[str],
    examples: Sequence[str],
    auth: str = "",
) -> str:
    q = cred(user, auth)
    library_items = [
        H.join(
            H.link(f"/library?{q}&library={library.name}", library.name),
            f" — {library.description} ({len(library)} entries)",
        )
        for library in libraries
    ]
    design_items = [
        H.link(f"/design?{q}&name={name}", name) for name in designs
    ] or [H.Raw("<i>none yet</i>")]
    example_items = [
        H.form(
            "/design/load_example",
            H.join(
                auth_fields(user, auth),
                H.hidden_input("example", example),
                H.submit(f"Load {example}"),
            ),
        )
        for example in examples
    ]
    return H.page(
        f"PowerPlay Main Menu — {user}",
        H.heading("Hardware libraries", 2),
        H.unordered_list(library_items),
        H.heading("Your designs", 2),
        H.unordered_list(design_items),
        H.form(
            "/design/new",
            H.join(
                auth_fields(user, auth),
                "New design name: ",
                H.text_input("name"),
                " ",
                H.submit("Create"),
            ),
        ),
        H.heading("Example designs", 2),
        H.join(*example_items),
        H.heading("Account", 2),
        H.form(
            "/password",
            H.join(
                auth_fields(user, auth),
                "Set password: ",
                H.tag("input", type="password", name="password"),
                " ",
                H.submit("Protect my designs"),
            ),
        ),
        nav=nav_for(user, auth),
    )


def library_page(user: str, libraries: Sequence[Library], auth: str = "") -> str:
    q = cred(user, auth)
    sections: List[H.Content] = []
    for library in libraries:
        sections.append(H.heading(library.name, 2))
        if library.description:
            sections.append(H.paragraph(library.description))
        for category, names in sorted(library.categories().items()):
            rows = []
            for name in names:
                entry = library.get(name)
                doc_links = " ".join(
                    H.link(href, "[doc]") for href in entry.links[:1]
                )
                rows.append(
                    [
                        H.link(f"/cell?{q}&name={name}", name),
                        entry.doc,
                        H.Raw(doc_links),
                    ]
                )
            sections.append(H.heading(category, 3))
            sections.append(H.table(rows, header=["Element", "Description", ""]))
    return H.page(f"Library — {user}", *sections, nav=nav_for(user, auth))


def _parameter_field(
    parameter: Parameter, value: Optional[float]
) -> H.Raw:
    shown = value if value is not None else parameter.default
    if parameter.choices:
        options = [format_quantity(float(c)) for c in parameter.choices]
        field = H.select(f"p:{parameter.name}", options, str(shown))
    else:
        field = H.text_input(f"p:{parameter.name}", shown)
    note = parameter.doc
    if parameter.unit:
        note = f"[{parameter.unit}] {note}"
    return H.labelled_field(parameter.name, field, note)


def cell_form_page(
    user: str,
    entry: LibraryEntry,
    values: Mapping[str, float],
    result: Optional[Mapping[str, str]] = None,
    designs: Sequence[str] = (),
    error: str = "",
    auth: str = "",
) -> str:
    """The Figure 4 input form, with the result excerpt below."""
    fields: List[H.Content] = []
    parameters = list(entry.models.parameters)
    names = {parameter.name for parameter in parameters}
    for parameter in parameters:
        fields.append(_parameter_field(parameter, values.get(parameter.name)))
    if "VDD" not in names:
        fields.append(
            H.labelled_field(
                "VDD", H.text_input("p:VDD", values.get("VDD", 1.5)), "[V] supply"
            )
        )
    if "f" not in names:
        fields.append(
            H.labelled_field(
                "f",
                H.text_input("p:f", values.get("f", 2e6)),
                "[Hz] access frequency",
            )
        )
    body: List[H.Content] = [
        H.paragraph(entry.doc),
        H.paragraph(
            H.join(*[H.link(href, "[documentation] ") for href in entry.links])
        ),
        H.form(
            "/cell",
            H.join(
                auth_fields(user, auth),
                H.hidden_input("name", entry.name),
                H.field_table(fields),
                H.submit("Compute"),
            ),
        ),
    ]
    if error:
        body.append(H.tag("p", error, class_="error"))
    if result:
        rows = [[key, H.tag("span", value, class_="num")] for key, value in result.items()]
        body.append(H.heading("Result", 2))
        body.append(H.table(rows, header=["Quantity", "Value"]))
        save_fields = H.join(
            auth_fields(user, auth),
            H.hidden_input("name", entry.name),
            *[
                H.hidden_input(f"p:{key}", value)
                for key, value in values.items()
            ],
            "Add to design: ",
            H.select("design", list(designs) or ["(create one first)"]),
            " as row ",
            H.text_input("row", entry.name),
            " ",
            H.submit("Save to design"),
        )
        body.append(H.form("/cell/save", save_fields))
    return H.page(f"{entry.name} — {user}", *body, nav=nav_for(user, auth))


def _row_link(
    user: str, design_name: str, row, report: PowerReport, auth: str = ""
) -> H.Content:
    if isinstance(row, SubDesign):
        return H.link(
            f"/design?{cred(user, auth)}&name={design_name}&path={row.name}",
            row.name,
        )
    return H.escape(row.name)


def design_sheet_page(
    user: str,
    design: Design,
    report: PowerReport,
    design_name: Optional[str] = None,
    path: str = "",
    error: str = "",
    auth: str = "",
) -> str:
    """The Figure 2 / Figure 5 spreadsheet."""
    design_name = design_name or design.name
    total = report.power
    rows: List[List[H.Content]] = []
    for row in design:
        child = report.child(row.name)
        parameter_fields: List[H.Content] = []
        for name in row.scope.local_names():
            raw = row.scope.raw(name)
            shown = raw.source if isinstance(raw, Expression) else raw
            parameter_fields.append(
                H.join(
                    f"{name}=",
                    H.text_input(f"p:{row.name}:{name}", shown, size=8),
                    " ",
                )
            )
        share = f"{100.0 * child.fraction_of(total):.1f}%"
        source = (
            "" if child.source in ("modeled", "hierarchy") else child.source
        )
        rows.append(
            [
                _row_link(user, design_name, row, child, auth),
                H.join(*parameter_fields),
                H.tag("span", format_eng(child.power, "W"), class_="num"),
                share,
                source,
                row.doc,
            ]
        )
    global_fields: List[H.Content] = []
    for name in design.scope.local_names():
        raw = design.scope.raw(name)
        shown = raw.source if isinstance(raw, Expression) else raw
        global_fields.append(
            H.join(f"{name}=", H.text_input(f"g:{name}", shown, size=10), " ")
        )
    body: List[H.Content] = []
    if error:
        body.append(H.tag("p", error, class_="error"))
    body.append(
        H.form(
            "/design",
            H.join(
                auth_fields(user, auth),
                H.hidden_input("name", design_name),
                H.hidden_input("path", path),
                H.heading("Global parameters", 2),
                H.paragraph(H.join(*global_fields)),
                H.table(
                    rows,
                    header=["Name", "Parameters", "Power", "Share",
                            "Source", "Notes"],
                    caption=f"{design.name} summary",
                ),
                H.paragraph(
                    H.join(
                        H.submit("PLAY"),
                        H.Raw("&nbsp;"),
                        H.tag(
                            "b",
                            f"Total: {format_eng(total, 'W')}"
                            f"  ({format_quantity(total, 'W')})",
                        ),
                    )
                ),
            ),
        )
    )
    body.append(
        H.paragraph(
            H.join(
                H.link(
                    f"/export/design?{cred(user, auth)}&name={design_name}",
                    "Export design as JSON",
                ),
                H.Raw(" | "),
                H.link(
                    f"/design/analysis?{cred(user, auth)}&name={design_name}"
                    + (f"&path={path}" if path else ""),
                    "Area / timing analysis",
                ),
            )
        )
    )
    title = design.name if not path else f"{design_name} / {design.name}"
    return H.page(f"{title} — {user}", *body, nav=nav_for(user, auth))


def define_model_page(
    user: str, error: str = "", saved: str = "", auth: str = ""
) -> str:
    """The "define your own primitive" form.

    "The user is prompted for names, equations, and documentation
    information."
    """
    body: List[H.Content] = [
        H.paragraph(
            "Define a new primitive.  The power equation may use your "
            "declared parameters plus VDD and f; write capacitances with "
            "engineering suffixes (e.g. 253f) and standard functions "
            "(log2, sqrt, ...)."
        ),
        H.form(
            "/define",
            H.join(
                auth_fields(user, auth),
                H.field_table(
                    [
                        H.labelled_field("Name", H.text_input("name", size=20)),
                        H.labelled_field(
                            "Power equation [W]",
                            H.text_input("equation", size=50),
                            "e.g. bitwidth * 68f * VDD^2 * f",
                        ),
                        H.labelled_field(
                            "Parameters",
                            H.text_input("parameters", size=40),
                            "name=default pairs, space-separated "
                            "(e.g. 'bitwidth=16 alpha=0.5')",
                        ),
                        H.labelled_field(
                            "Area equation [m2]",
                            H.text_input("area_equation", size=50),
                            "optional, e.g. bitwidth * 2.3n",
                        ),
                        H.labelled_field(
                            "Delay equation [s]",
                            H.text_input("delay_equation", size=50),
                            "optional, e.g. bitwidth * 1.1n * (1.5 / VDD)",
                        ),
                        H.labelled_field(
                            "Category",
                            H.select(
                                "category",
                                ["computation", "storage", "controller",
                                 "analog", "system", "other"],
                            ),
                        ),
                        H.labelled_field(
                            "Documentation", H.text_input("doc", size=50)
                        ),
                        H.labelled_field(
                            "Proprietary",
                            H.select("proprietary", ["no", "yes"]),
                            "proprietary models are not shared",
                        ),
                    ]
                ),
                H.submit("Create model"),
            ),
        ),
    ]
    if error:
        body.insert(0, H.tag("p", error, class_="error"))
    if saved:
        body.insert(
            0,
            H.paragraph(
                H.join(
                    f"Model {saved} created with documentation links — ",
                    H.link(f"/cell?{cred(user, auth)}&name={saved}", "open its input form"),
                )
            ),
        )
    return H.page(f"Define a model — {user}", *body, nav=nav_for(user, auth))


def doc_page(entry: LibraryEntry) -> str:
    """Auto-generated documentation for a library entry."""
    parameters = entry.models.parameters
    rows = [
        [
            p.name,
            format_quantity(float(p.default))
            if isinstance(p.default, (int, float))
            else str(p.default),
            p.unit,
            p.doc,
        ]
        for p in parameters
    ]
    return H.page(
        f"Documentation — {entry.name}",
        H.paragraph(entry.doc),
        H.heading("Parameters", 2),
        H.table(rows, header=["Name", "Default", "Unit", "Description"]),
        H.paragraph(f"Category: {entry.category}; origin: {entry.origin}"),
    )


def tutorial_page() -> str:
    return H.page(
        "PowerPlay tutorial",
        H.paragraph(
            "1. Identify yourself on the front page.  2. Browse the library "
            "and open a primitive's input form.  3. Set parameters and "
            "Compute — feedback is immediate, so cycle through options.  "
            "4. Save the configured primitive into a design.  5. On the "
            "design spreadsheet, adjust any parameter (rows inherit the "
            "globals) and press PLAY to recompute the whole hierarchy."
        ),
        H.paragraph(
            "Sub-design rows are hyperlinked: click through to optimize a "
            "subsystem, then return to the top page — the entire design "
            "space is accessible from one location."
        ),
    )


def help_page() -> str:
    return H.page(
        "PowerPlay help",
        H.unordered_list(
            [
                "Quantities accept engineering notation: 253f, 2M, 1.5.",
                "Formulas may reference other parameters: f_pixel / 16.",
                "The PLAY button recomputes power for the entire design.",
                "Export links serve JSON payloads other PowerPlay servers "
                "can import (remote model access).",
            ]
        ),
    )


def design_analysis_page(
    user: str,
    design: Design,
    area: "AreaReport",
    timing: "TimingReport",
    design_name: str,
    path: str = "",
    auth: str = "",
) -> str:
    """Area and timing tables for a design.

    "Though not detailed in this paper, parameterized models are also
    used for area and timing analysis."  Rows without an area/timing
    model show '-' rather than a false zero.
    """
    area_rows: List[List[H.Content]] = []

    def emit_area(node, depth: int) -> None:
        text = (
            format_quantity(node.area * 1e12, "um2") if node.modeled else "-"
        )
        area_rows.append(["  " * depth + node.name, H.tag("span", text, class_="num")])
        for child in node.children:
            emit_area(child, depth + 1)

    emit_area(area, 0)

    timing_rows: List[List[H.Content]] = []

    def emit_timing(node, depth: int) -> None:
        if node.modeled and node.delay > 0:
            text = format_quantity(node.delay, "s")
            frequency = format_quantity(1.0 / node.delay, "Hz")
        else:
            text, frequency = "-", "-"
        timing_rows.append(
            [
                "  " * depth + node.name,
                H.tag("span", text, class_="num"),
                H.tag("span", frequency, class_="num"),
            ]
        )
        for child in node.children:
            emit_timing(child, depth + 1)

    emit_timing(timing, 0)

    back = f"/design?{cred(user, auth)}&name={design_name}"
    if path:
        back += f"&path={path}"
    return H.page(
        f"{design.name} — area / timing — {user}",
        H.paragraph(H.link(back, "Back to the power spreadsheet")),
        H.heading("Active area", 2),
        H.table(area_rows, header=["Name", "Area"]),
        H.heading("Timing (critical path = max over rows)", 2),
        H.table(timing_rows, header=["Name", "Delay", "Max frequency"]),
        nav=nav_for(user, auth),
    )


def _job_table(
    user: str, summaries: Sequence[Mapping], auth: str = ""
) -> H.Raw:
    q = cred(user, auth)
    rows: List[List[H.Content]] = []
    for summary in summaries:
        job_id = summary["job_id"]
        progress = f"{summary['done']}/{summary['points']}"
        rows.append(
            [
                H.link(f"/sweep/job?{q}&job={job_id}", job_id),
                summary["design"],
                summary["state"],
                H.tag("span", progress, class_="num"),
                summary["objectives"],
                summary.get("error", ""),
            ]
        )
    return H.table(
        rows or [["(no jobs yet)", "", "", "", "", ""]],
        header=["Job", "Design", "State", "Points", "Objectives", "Error"],
    )


def sweep_form_page(
    user: str,
    designs: Sequence[str],
    examples: Sequence[str],
    jobs: Sequence[Mapping] = (),
    values: Optional[Mapping[str, str]] = None,
    error: str = "",
    auth: str = "",
) -> str:
    """``GET /sweep`` — submit a parameter-space exploration job.

    The 1996 designer pressed PLAY once per what-if; this form submits
    thousands of PLAYs as one background job with axis specs in the
    same mini-language the CLI uses (``VDD2=1.1:3.3:0.1``,
    ``bw=8,12,16``, ``f=log:1e6:1e9:7``; ``name@row.param`` writes a
    dotted target).
    """
    filled = dict(values or {})

    def area(name: str, rows: int, hint: str) -> H.Raw:
        return H.labelled_field(
            name,
            H.tag(
                "textarea", filled.get(name, ""), name=name, rows=rows,
                cols=60,
            ),
            hint,
        )

    options = list(designs) + [f"example:{name}" for name in examples]
    fields = [
        H.labelled_field(
            "design",
            H.select("design", options, filled.get("design")),
            "your design, or a built-in example",
        ),
        area("axes", 4, "one axis per line: VDD2=1.1:3.3:0.1 | "
             "bw=8,12,16 | f=log:1e6:1e9:7 | name@row.param=..."),
        area("couple", 2, "optional: target=expression over axis names"),
        area("derive", 2, "optional extra objectives: name=expression"),
        H.labelled_field(
            "objectives",
            H.text_input("objectives", filled.get("objectives", "power")),
            "comma-separated from power, area, delay",
        ),
        H.labelled_field(
            "workers",
            H.text_input("workers", filled.get("workers", "2"), size=4),
            "evaluator workers",
        ),
        H.labelled_field(
            "mode",
            H.select(
                "mode", ["serial", "thread", "process"],
                filled.get("mode", "thread"),
            ),
        ),
        H.labelled_field(
            "chunk_size",
            H.text_input("chunk_size", filled.get("chunk_size", "16"), size=6),
            "points per checkpointed chunk",
        ),
        H.labelled_field(
            "point_cap",
            H.text_input("point_cap", filled.get("point_cap", ""), size=10),
            "optional: reject spaces larger than this many points",
        ),
        H.labelled_field(
            "prune",
            H.select("prune", ["no", "yes"], filled.get("prune", "no")),
            "keep only Pareto-optimal rows",
        ),
        H.labelled_field(
            "surrogate",
            H.select(
                "surrogate", ["no", "yes"], filled.get("surrogate", "no")
            ),
            "fit-predict-verify: exact-evaluate a sample, predict the "
            "rest, re-verify the predicted frontier",
        ),
        H.labelled_field(
            "train_frac",
            H.text_input(
                "train_frac", filled.get("train_frac", "0.01"), size=6
            ),
            "surrogate: fraction of points exact-evaluated for training",
        ),
        H.labelled_field(
            "train_seed",
            H.text_input(
                "train_seed", filled.get("train_seed", "1996"), size=6
            ),
            "surrogate: training-sample seed (same seed, same sample)",
        ),
        H.labelled_field(
            "verify_top",
            H.text_input(
                "verify_top", filled.get("verify_top", "64"), size=6
            ),
            "surrogate: exact re-verification budget (front first, "
            "then the most uncertain predictions)",
        ),
        H.labelled_field(
            "max_error",
            H.text_input(
                "max_error", filled.get("max_error", ""), size=6
            ),
            "surrogate: optional holdout error budget (e.g. 0.1 fails "
            "the job if the fitted bound is worse than 10%)",
        ),
        H.labelled_field(
            "basis",
            H.select(
                "basis",
                ["auto", "linear", "quadratic", "cubic", "log"],
                filled.get("basis", "auto"),
            ),
            "surrogate: regression basis (auto races them on holdout)",
        ),
    ]
    body: List[H.Content] = []
    if error:
        body.append(H.tag("p", error, class_="error"))
    body.append(
        H.form(
            "/sweep",
            H.join(
                auth_fields(user, auth),
                H.field_table(fields),
                H.submit("Launch sweep"),
            ),
        )
    )
    body.append(H.heading("Your sweep jobs", 2))
    body.append(_job_table(user, jobs, auth))
    return H.page(f"Sweeps — {user}", *body, nav=nav_for(user, auth))


def sweep_job_page(user: str, summary: Mapping, auth: str = "") -> str:
    """``GET /sweep/job`` — one job's live status (reload to poll)."""
    q = cred(user, auth)
    job_id = summary["job_id"]
    state = summary["state"]
    rows = [
        ["Job", job_id],
        ["Design", summary["design"]],
        ["State", state],
        ["Progress",
         H.tag("span", f"{summary['done']}/{summary['points']} points",
               class_="num")],
        ["Objectives", summary["objectives"]],
    ]
    if summary.get("surrogate"):
        rows.append(
            ["Surrogate",
             "fit-predict-verify (progress counts exact "
             "train + verify points only)"]
        )
    if summary.get("error"):
        rows.append(["Error", H.tag("span", summary["error"], class_="error")])
    body: List[H.Content] = [H.table(rows, header=["Field", "Value"])]
    links: List[H.Content] = [
        H.link(f"/sweep/job?{q}&job={job_id}", "Refresh"),
        H.Raw(" | "),
        H.link(f"/sweep?{q}", "All sweeps"),
    ]
    if state == "done":
        links.extend(
            [
                H.Raw(" | "),
                H.link(f"/sweep/result?{q}&job={job_id}", "Results"),
                H.Raw(" | "),
                H.link(f"/sweep/result?{q}&job={job_id}&fmt=csv", "CSV"),
                H.Raw(" | "),
                H.link(f"/sweep/result?{q}&job={job_id}&fmt=json", "JSON"),
            ]
        )
    body.append(H.paragraph(H.join(*links)))
    if state in ("pending", "running"):
        body.append(
            H.form(
                "/sweep/cancel",
                H.join(
                    auth_fields(user, auth),
                    H.hidden_input("job", job_id),
                    H.submit("Cancel job"),
                ),
            )
        )
    if state == "cancelled":
        body.append(
            H.paragraph(
                "Cancelled jobs keep their finished chunks; resume from "
                f"the command line with: repro sweep --resume {job_id} "
                "--state <STATE_DIR>"
            )
        )
    return H.page(
        f"Sweep {job_id} — {user}", *body, nav=nav_for(user, auth)
    )


def sweep_results_page(
    user: str,
    summary: Mapping,
    axis_names: Sequence[str],
    objective_names: Sequence[str],
    front_rows: Sequence[Mapping],
    sensitivity: Sequence[Mapping],
    total_rows: int,
    auth: str = "",
    surrogate: Optional[Mapping] = None,
) -> str:
    """``GET /sweep/result`` — Pareto frontier + sensitivity ranking.

    For surrogate jobs the frontier table gains a ``source`` column
    (``exact`` rows were measured by the real estimator, ``predicted``
    rows are surrogate output the verification budget did not reach)
    and the page opens with the fit-predict-verify report panel.
    """
    q = cred(user, auth)
    job_id = summary["job_id"]
    with_source = surrogate is not None
    header = ["#", *axis_names, *objective_names]
    if with_source:
        header.append("source")
    rows: List[List[H.Content]] = []
    for row in front_rows:
        cells: List[H.Content] = [str(row["index"])]
        for name in axis_names:
            cells.append(
                H.tag("span", format_quantity(float(row["values"][name])),
                      class_="num")
            )
        for name in objective_names:
            cells.append(
                H.tag("span", format_quantity(float(row["objectives"][name])),
                      class_="num")
            )
        if with_source:
            cells.append(str(row.get("source", "exact")))
        rows.append(cells)
    sens_rows = [
        [
            item["axis"],
            H.tag("span", format_quantity(item["spread"]), class_="num"),
            H.tag("span", f"{100.0 * item['relative']:.1f}%", class_="num"),
        ]
        for item in sensitivity
    ]
    body: List[H.Content] = [
        H.paragraph(
            H.join(
                f"Design {summary['design']!r}: {len(front_rows)} "
                f"Pareto-optimal of {total_rows} evaluated points.  ",
                H.link(f"/sweep/result?{q}&job={job_id}&fmt=csv", "CSV"),
                " | ",
                H.link(f"/sweep/result?{q}&job={job_id}&fmt=json", "JSON"),
                " | ",
                H.link(f"/sweep/job?{q}&job={job_id}", "Job status"),
                ".",
            )
        ),
    ]
    if surrogate is not None:
        verified_front = sum(
            1 for row in front_rows
            if row.get("source", "exact") == "exact"
        )
        panel_rows: List[List[H.Content]] = [
            ["Space",
             H.tag("span", f"{surrogate['total_points']} points",
                   class_="num")],
            ["Trained (exact)",
             H.tag("span", str(surrogate["train_points"]), class_="num")],
            ["Predicted",
             H.tag("span", str(surrogate["predicted_points"]),
                   class_="num")],
            ["Verified (exact)",
             H.tag("span", str(surrogate["verified_points"]),
                   class_="num")],
            ["Frontier verified",
             H.tag("span",
                   f"{verified_front}/{len(front_rows)} rows exact",
                   class_="num")],
            ["Error bound (holdout)",
             H.tag("span", f"{100.0 * surrogate['error_bound']:.4f}%",
                   class_="num")],
            ["Observed error (verified rows)",
             H.tag("span",
                   f"{100.0 * surrogate['observed_max_rel']:.4f}%",
                   class_="num")],
        ]
        if surrogate.get("dropped_non_finite"):
            panel_rows.append(
                ["Dropped non-finite predictions",
                 H.tag("span", str(surrogate["dropped_non_finite"]),
                       class_="num")]
            )
        for name, entry in sorted(surrogate.get("fits", {}).items()):
            panel_rows.append(
                [f"Fit: {name}",
                 H.tag(
                     "span",
                     f"{entry['basis']} basis, holdout max "
                     f"{100.0 * entry['holdout_max_rel']:.4f}% / p95 "
                     f"{100.0 * entry['holdout_p95_rel']:.4f}%",
                     class_="num",
                 )]
            )
        body.extend(
            [
                H.heading("Surrogate fit-predict-verify", 2),
                H.table(panel_rows, header=["Field", "Value"]),
            ]
        )
    body.extend([
        H.heading("Pareto frontier", 2),
        H.table(rows, header=header,
                caption=f"minimizing {', '.join(objective_names)}"),
        H.heading("Sensitivity (mean spread when only this axis moves)", 2),
        H.table(
            sens_rows or [["(not enough points)", "", ""]],
            header=["Axis", "Spread", "Relative"],
        ),
    ])
    return H.page(
        f"Sweep {job_id} results — {user}", *body, nav=nav_for(user, auth)
    )


def status_page(
    server_name: str,
    uptime_s: float,
    known_users: int,
    request_rows: Sequence[Tuple[str, int, str, str, str, str]],
    status_rows: Sequence[Tuple[str, int]],
    circuit_rows: Sequence[Tuple[str, str]],
    cache_rows: Sequence[Tuple[str, int]],
    event_rows: Sequence[Tuple[str, int]],
    trace_rows: Sequence[Tuple[str, str, str, int]],
    job_rows: Sequence[Tuple[str, str, str, str]] = (),
    registry_rows: Sequence[Tuple[str, int]] = (),
    resolution_rows: Sequence[Tuple[str, int]] = (),
    health: str = "",
    slo_rows: Sequence[Tuple[str, str, str, str, str, int]] = (),
) -> str:
    """``GET /status`` — the operator's dashboard, PowerPlay style.

    The 1996 deployment was "local to one server" and watched through
    httpd logs; this page is the modern equivalent: uptime, the request
    table, circuit-breaker states, model-cache outcomes, and recent
    traces — all rendered from the same registry ``GET /metrics``
    exposes, so the two views can never disagree.
    """
    minutes, seconds = divmod(int(uptime_s), 60)
    hours, minutes = divmod(minutes, 60)
    health_note = f"  Health: {health}." if health else ""
    body: List[H.Content] = [
        H.paragraph(
            H.join(
                f"Server {server_name!r} up {hours}h {minutes:02d}m "
                f"{seconds:02d}s; {known_users} known user(s)."
                f"{health_note}  ",
                H.link("/metrics", "Raw Prometheus metrics"),
                " — ",
                H.link("/registry", "Federated registry"),
                " — ",
                H.link("/fleet", "Fleet dashboard"),
                " — ",
                H.link("/debug/flight", "Flight recorder"),
                ".",
            )
        ),
        H.heading("Requests by route", 2),
        H.table(
            [
                [
                    route,
                    H.tag("span", str(count), class_="num"),
                    mean, p50, p95, p99,
                ]
                for route, count, mean, p50, p95, p99 in request_rows
            ]
            or [["(no requests yet)", "", "", "", "", ""]],
            header=["Route", "Requests", "Mean latency", "p50", "p95", "p99"],
        ),
        H.heading("Service-level objectives", 2),
        H.table(
            [
                [
                    name, state, burn_short, burn_long, budget,
                    H.tag("span", str(events), class_="num"),
                ]
                for name, state, burn_short, burn_long, budget, events
                in slo_rows
            ]
            or [["(SLO tracking disabled)", "", "", "", "", ""]],
            header=[
                "SLO", "State", "Burn (5m)", "Burn (1h)",
                "Budget left", "Events (6h)",
            ],
        ),
        H.heading("Responses by status class", 2),
        H.table(
            [
                [status, H.tag("span", str(count), class_="num")]
                for status, count in status_rows
            ]
            or [["(none)", ""]],
            header=["Status", "Responses"],
        ),
        H.heading("Circuit breakers", 2),
        H.table(
            [[name, state] for name, state in circuit_rows]
            or [["(no remotes contacted)", ""]],
            header=["Remote", "State"],
        ),
        H.heading("Model cache", 2),
        H.table(
            [
                [result, H.tag("span", str(count), class_="num")]
                for result, count in cache_rows
            ]
            or [["(no lookups)", ""]],
            header=["Outcome", "Lookups"],
        ),
        H.heading("Degradation events", 2),
        H.table(
            [
                [what, H.tag("span", str(count), class_="num")]
                for what, count in event_rows
            ],
            header=["Event", "Count"],
        ),
        H.heading("Sweep jobs", 2),
        H.table(
            [
                [job_id, design, state,
                 H.tag("span", progress, class_="num")]
                for job_id, design, state, progress in job_rows
            ]
            or [["(no jobs)", "", "", ""]],
            header=["Job", "Design", "State", "Points"],
        ),
        H.heading("Federated registry", 2),
        H.table(
            [
                [what, H.tag("span", str(count), class_="num")]
                for what, count in registry_rows
            ]
            or [["(registry idle)", ""]],
            header=["Registry", "Count"],
        ),
        H.heading("Resolution outcomes", 2),
        H.table(
            [
                [outcome, H.tag("span", str(count), class_="num")]
                for outcome, count in resolution_rows
            ]
            or [["(no resolutions yet)", ""]],
            header=["Outcome", "Resolutions"],
        ),
    ]
    if trace_rows:
        body.extend(
            [
                H.heading("Recent traces", 2),
                H.table(
                    [
                        [name, span_id, duration, str(spans)]
                        for name, span_id, duration, spans in trace_rows
                    ],
                    header=["Root span", "ID", "Duration", "Spans"],
                ),
            ]
        )
    return H.page(f"PowerPlay status — {server_name}", *body)


def registry_page(
    server_name: str,
    health: Mapping,
    catalog: Sequence[Mapping],
    quarantined: Sequence[Tuple],
    pinned: Mapping[str, int],
    resolutions: Sequence[Mapping] = (),
) -> str:
    """``GET /registry`` — the federation catalog page.

    Publishers, versions, digests, and mirror freshness for every
    artifact this server holds, plus the quarantine ledger and the
    recent resolution-chain outcomes — the operator's one look at
    "can this server survive its providers going away?".
    """

    def freshness(row: Mapping) -> str:
        age = float(row.get("age_s", 0.0))
        if age < 120:
            return f"{age:.0f} s"
        if age < 7200:
            return f"{age / 60:.1f} min"
        return f"{age / 3600:.1f} h"

    catalog_rows: List[List[H.Content]] = []
    for row in catalog:
        if row.get("corrupt"):
            catalog_rows.append(
                [
                    str(row.get("kind", "?")),
                    str(row.get("name", "?")),
                    f"v{row.get('version', '?')}",
                    "",
                    H.tag("b", "CORRUPT"),
                    "",
                    str(row.get("error", ""))[:80],
                ]
            )
            continue
        catalog_rows.append(
            [
                str(row["kind"]),
                str(row["name"]),
                f"v{row['version']}",
                str(row.get("publisher", "")),
                H.tag("code", str(row.get("digest", ""))[:16] + "…"),
                freshness(row),
                "pinned" if row.get("pinned") else "",
            ]
        )
    body: List[H.Content] = [
        H.paragraph(
            H.join(
                f"Server {server_name!r} mirrors {len(catalog_rows)} "
                f"artifact(s); health: {health.get('status', '?')}.  ",
                H.link("/api/registry/catalog.json", "Catalog JSON"),
                " — ",
                H.link("/status", "Status"),
                " — ",
                H.link("/healthz", "Health"),
                ".",
            )
        ),
        H.heading("Mirrored artifacts", 2),
        H.table(
            catalog_rows or [["(mirror is empty)"] + [""] * 6],
            header=[
                "Kind", "Name", "Version", "Publisher", "Digest",
                "Age", "Pinned",
            ],
        ),
        H.heading("Quarantined artifacts", 2),
        H.table(
            [
                [stem, str(target), reason[:100]]
                for stem, target, reason in quarantined
            ]
            or [["(none — every read verified)", "", ""]],
            header=["Artifact", "Moved to", "Reason"],
        ),
        H.heading("Pinned versions", 2),
        H.table(
            [[ref, f"v{version}"] for ref, version in sorted(pinned.items())]
            or [["(no pins)", ""]],
            header=["Artifact", "Version"],
        ),
    ]
    if resolutions:
        body.extend(
            [
                H.heading("Recent resolutions", 2),
                H.table(
                    [
                        [
                            str(report["name"]),
                            str(report["outcome"]),
                            str(report.get("served_from", "")),
                            "; ".join(
                                f"{step['step']}={step['result']}"
                                for step in report.get("steps", ())
                            ),
                        ]
                        for report in resolutions
                    ],
                    header=["Model", "Outcome", "Served from", "Chain"],
                ),
            ]
        )
    return H.page(f"PowerPlay registry — {server_name}", *body)


def trace_page(
    server_name: str,
    tracing_enabled: bool,
    rendered: Sequence[Tuple[str, str, str, int, int, str]],
) -> str:
    """``GET /trace`` — recent traces, newest first, trees and all.

    ``rendered`` rows are ``(root_name, trace_id, duration, spans,
    remote_spans, tree_text)``; the tree text is the fixed-width
    :func:`repro.obs.render_trace` output, remote (grafted) spans
    marked ``~remote``.
    """
    body: List[H.Content] = [
        H.paragraph(
            H.join(
                f"Server {server_name!r}; tracing is "
                f"{'enabled' if tracing_enabled else 'disabled'}.  ",
                H.link("/trace?fmt=json", "JSON"),
                " | ",
                H.link("/profile", "Aggregated profile"),
                " | ",
                H.link("/status", "Status"),
                ".",
            )
        ),
    ]
    if not tracing_enabled:
        body.append(
            H.paragraph(
                "Start the server with --log-level info (or call "
                "repro.obs.enable()) to record traces."
            )
        )
    if not rendered:
        body.append(H.paragraph("No traces recorded yet."))
    for root_name, trace_id, duration, spans, remote_spans, tree in rendered:
        summary = f"{duration}, {spans} span(s)"
        if remote_spans:
            summary += f", {remote_spans} remote"
        body.append(H.heading(f"{root_name} [{trace_id}] — {summary}", 2))
        body.append(H.tag("pre", tree))
    return H.page(f"PowerPlay traces — {server_name}", *body)


def profile_page(
    server_name: str,
    tracing_enabled: bool,
    trace_count: int,
    table_text: str,
    flamegraph_text: str,
) -> str:
    """``GET /profile`` — the call-tree profile over recent traces."""
    body: List[H.Content] = [
        H.paragraph(
            H.join(
                f"Server {server_name!r}; tracing is "
                f"{'enabled' if tracing_enabled else 'disabled'}; "
                f"{trace_count} trace(s) aggregated.  ",
                H.link("/profile?fmt=json", "JSON"),
                " | ",
                H.link("/trace", "Recent traces"),
                " | ",
                H.link("/status", "Status"),
                ".",
            )
        ),
    ]
    if not trace_count:
        body.append(
            H.paragraph(
                "No traces to profile yet — exercise the server (or "
                "enable tracing) and reload."
            )
        )
    else:
        body.append(H.heading("Hot paths (by self time)", 2))
        body.append(H.tag("pre", table_text))
        body.append(H.heading("Flamegraph (by total time)", 2))
        body.append(H.tag("pre", flamegraph_text))
    return H.page(f"PowerPlay profile — {server_name}", *body)


def fleet_page(
    server_name: str,
    fleet_state: str,
    node_rows: Sequence[Tuple[str, str, str, str, str, str, int, str]],
    aggregate_requests: int,
    reachable: int,
    total: int,
    quantiles: Mapping[str, str],
    skipped: Sequence[str] = (),
    duration_ms: float = 0.0,
) -> str:
    """``GET /fleet`` — per-node and aggregate fleet telemetry.

    ``node_rows`` are ``(name, url, up/down, health, slo, breaker,
    requests, error)``; the aggregate numbers come from the
    deterministic cross-node merge.
    """
    body: List[H.Content] = [
        H.paragraph(
            H.join(
                f"Fleet seen from {server_name!r}: {reachable}/{total} "
                f"node(s) reachable, worst SLO state "
                f"{fleet_state!r}, scraped in {duration_ms:.1f} ms.  ",
                H.link("/fleet?fmt=json", "JSON"),
                " | ",
                H.link("/status", "Status"),
                " | ",
                H.link("/debug/flight", "Flight recorder"),
                ".",
            )
        ),
        H.heading("Nodes", 2),
        H.table(
            [
                [
                    name, url, up, health, slo, breaker,
                    H.tag("span", str(requests), class_="num"),
                    error,
                ]
                for name, url, up, health, slo, breaker, requests, error
                in node_rows
            ]
            or [["(no nodes)", "", "", "", "", "", "", ""]],
            header=[
                "Node", "URL", "Scrape", "Health", "SLO", "Breaker",
                "Requests", "Error",
            ],
        ),
        H.heading("Aggregate", 2),
        H.table(
            [
                ["requests (all nodes)", str(aggregate_requests)],
                ["latency p50", quantiles.get("p50", "—")],
                ["latency p95", quantiles.get("p95", "—")],
                ["latency p99", quantiles.get("p99", "—")],
            ],
            header=["Metric", "Value"],
        ),
    ]
    if skipped:
        body.append(
            H.paragraph(
                "Families skipped (unmergeable across nodes): "
                + ", ".join(skipped)
                + "."
            )
        )
    return H.page(f"PowerPlay fleet — {server_name}", *body)


def history_page(
    server_name: str,
    stats: Mapping[str, object],
    series_rows: Sequence[Tuple[str, str, str, str]],
    capacity_rows: Sequence[Tuple[str, str, str, str, str]] = (),
    total_workers: int = 0,
    recording: bool = False,
) -> str:
    """``GET /history`` — the durable telemetry store dashboard.

    ``series_rows`` are ``(series key, latest value, unit hint,
    sparkline)``; ``capacity_rows`` are ``(route, rps, trend/h,
    latency, workers)`` from the capacity fit over the same store.
    """
    segments = stats.get("segments", {})
    quarantined = stats.get("quarantined", [])
    body: List[H.Content] = [
        H.paragraph(
            H.join(
                f"Telemetry history on {server_name!r}: "
                f"{stats.get('active_rounds', 0)} active round(s), "
                f"{segments.get('raw', 0)} raw / "
                f"{segments.get('m1', 0)} 1m / "
                f"{segments.get('m15', 0)} 15m segment(s), "
                f"{int(stats.get('bytes', 0) or 0)} bytes on disk.  "
                f"Recorder {'running' if recording else 'stopped'}.  ",
                H.link("/history?fmt=json", "JSON"),
                " | ",
                H.link("/fleet", "Fleet"),
                " | ",
                H.link("/status", "Status"),
                ".",
            )
        ),
        H.heading("Recorded series", 2),
        H.table(
            [
                [H.tag("code", key), latest, unit,
                 H.tag("code", spark)]
                for key, latest, unit, spark in series_rows
            ]
            or [["(nothing recorded yet)", "", "", ""]],
            header=["Series", "Latest", "Unit", "Trend"],
        ),
        H.heading("Capacity fit", 2),
        H.table(
            [
                [route, rps, trend, latency, workers]
                for route, rps, trend, latency, workers in capacity_rows
            ]
            or [["(not enough history yet)", "", "", "", ""]],
            header=[
                "Route", "Peak req/s", "Trend/h", "Mean latency",
                "Workers",
            ],
        ),
    ]
    if capacity_rows:
        body.append(
            H.paragraph(
                f"Projected provisioning: {total_workers} worker(s) "
                "for the fitted load."
            )
        )
    if quarantined:
        body.append(H.heading("Quarantined files", 2))
        body.append(
            H.table(
                [[str(name), str(reason)]
                 for name, reason, *_ in quarantined],
                header=["File", "Reason"],
            )
        )
    return H.page(f"PowerPlay history — {server_name}", *body)


def flight_page(
    server_name: str,
    capacity: int,
    recorded_total: int,
    record_rows: Sequence[Tuple[int, str, str, int, str, str, str]],
    snapshots: Sequence[str] = (),
) -> str:
    """``GET /debug/flight`` — the flight-recorder ring, newest first.

    ``record_rows`` are ``(seq, route, method, status, duration,
    trace_id, alerts)``.
    """
    body: List[H.Content] = [
        H.paragraph(
            H.join(
                f"Flight recorder on {server_name!r}: "
                f"{recorded_total} request(s) recorded, ring holds the "
                f"last {capacity}.  ",
                H.link("/debug/flight?fmt=json", "JSON"),
                " | ",
                H.link("/fleet", "Fleet"),
                " | ",
                H.link("/status", "Status"),
                ".",
            )
        ),
        H.heading("Recent requests (newest first)", 2),
        H.table(
            [
                [
                    H.tag("span", str(seq), class_="num"),
                    route, method_, str(status), duration, trace_id,
                    alerts,
                ]
                for seq, route, method_, status, duration, trace_id,
                alerts in record_rows
            ]
            or [["(nothing recorded yet)", "", "", "", "", "", ""]],
            header=[
                "Seq", "Route", "Method", "Status", "Duration",
                "Trace", "Alerts",
            ],
        ),
        H.heading("Snapshots on disk", 2),
        H.table(
            [[name] for name in snapshots] or [["(no snapshots)"]],
            header=["File"],
        ),
    ]
    return H.page(f"PowerPlay flight recorder — {server_name}", *body)
