"""A tiny scriptable browser.

"Each user can access the tool with her/his favorite browser" — ours is
20 lines of ``http.client`` plus helpers to find links and submit forms,
enough to script the complete Netscape workflow the paper times at
"less than three minutes".  Tests and the E8 bench drive the server
with it end-to-end.
"""

from __future__ import annotations

import http.client
import re
import urllib.parse
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..errors import RemoteError, TransientRemoteError
from ..obs import propagate
from ..obs.trace import graft_remote

_LINK_RE = re.compile(r'<a href="([^"]+)">(.*?)</a>', re.S)
_TITLE_RE = re.compile(r"<title>(.*?)</title>", re.S)
_ERROR_RE = re.compile(r'<p class="error">(.*?)</p>', re.S)


@dataclass
class Page:
    """A fetched page: status, body, headers, parsed conveniences."""

    url: str
    status: int
    body: str
    headers: Dict[str, str] = field(default_factory=dict)

    def header(self, name: str) -> Optional[str]:
        """Case-insensitive response-header lookup."""
        wanted = name.lower()
        for key, value in self.headers.items():
            if key.lower() == wanted:
                return value
        return None

    @property
    def title(self) -> str:
        match = _TITLE_RE.search(self.body)
        return match.group(1).strip() if match else ""

    @property
    def links(self) -> List[Tuple[str, str]]:
        """(href, text) of every hyperlink on the page."""
        return [
            (href, re.sub(r"<[^>]+>", "", text).strip())
            for href, text in _LINK_RE.findall(self.body)
        ]

    def link_by_text(self, text: str) -> str:
        for href, label in self.links:
            if text.lower() in label.lower():
                return href
        raise RemoteError(f"no link containing {text!r} on {self.url}")

    @property
    def error(self) -> Optional[str]:
        match = _ERROR_RE.search(self.body)
        return match.group(1).strip() if match else None

    def contains(self, text: str) -> bool:
        return text in self.body


class Browser:
    """Minimal HTTP browser bound to one PowerPlay server.

    Connection-level failures raise
    :class:`~repro.errors.TransientRemoteError` (a
    :class:`~repro.errors.RemoteError` subclass), so callers can retry
    the plausibly-temporary ones.  Pass a
    :class:`~repro.web.resilience.RetryPolicy` as ``retry_policy`` to
    have *idempotent* requests (GET) retried in-browser; POSTs are
    never retried automatically — a form submit is not safely
    repeatable.
    """

    #: redirect hop limit — a redirect loop must fail, not hang
    MAX_REDIRECTS = 5

    def __init__(self, base_url: str, timeout: float = 10.0, retry_policy=None):
        parsed = urllib.parse.urlsplit(base_url)
        if parsed.scheme != "http" or not parsed.hostname:
            raise RemoteError(f"unsupported base URL {base_url!r}")
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.timeout = timeout
        self.retry_policy = retry_policy

    def _request_once(
        self,
        method: str,
        path: str,
        body: Optional[str] = None,
        content_type: Optional[str] = None,
    ) -> Tuple[int, str, Optional[str], Dict[str, str]]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            headers = {}
            if content_type:
                headers["Content-Type"] = content_type
            # cross-server trace propagation: when a span is open on
            # this thread, every outbound request carries its context
            headers.update(propagate.outbound_headers())
            connection.request(method, path, body=body, headers=headers)
            raw = connection.getresponse()
            text = raw.read().decode("utf-8", errors="replace")
            response_headers = dict(raw.getheaders())
            return raw.status, text, raw.getheader("Location"), response_headers
        except (OSError, http.client.HTTPException) as exc:
            raise TransientRemoteError(
                f"cannot reach http://{self.host}:{self.port}{path}: {exc}"
            ) from exc
        finally:
            connection.close()

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[str] = None,
        content_type: Optional[str] = None,
        follow_redirects: bool = True,
    ) -> Page:
        hops = 0
        while True:
            status, text, location, headers = self._request_once(
                method, path, body, content_type
            )
            # graft the provider's finished sub-span (if it sent one)
            # under the local span driving this fetch — one federated
            # trace instead of two that stop at the socket
            graft_remote(
                propagate.decode_span_header(
                    headers.get(propagate.SPAN_HEADER)
                )
            )
            if not (follow_redirects and status in (301, 302, 303) and location):
                return Page(path, status, text, headers)
            hops += 1
            if hops > self.MAX_REDIRECTS:
                raise RemoteError(
                    f"redirect loop: more than {self.MAX_REDIRECTS} hops "
                    f"from http://{self.host}:{self.port}, last at {location!r}"
                )
            # redirect targets are fetched with GET (303 semantics)
            method, path, body, content_type = "GET", location, None, None

    def get(self, path: str) -> Page:
        if self.retry_policy is not None:
            return self.retry_policy.call(lambda: self._request("GET", path))
        return self._request("GET", path)

    def post(self, path: str, fields: Mapping[str, object]) -> Page:
        body = urllib.parse.urlencode({k: str(v) for k, v in fields.items()})
        return self._request(
            "POST", path, body=body,
            content_type="application/x-www-form-urlencoded",
        )

    def get_json(self, path: str) -> object:
        import json

        page = self._request("GET", path)
        if page.status != 200:
            raise RemoteError(f"GET {path} returned {page.status}")
        try:
            return json.loads(page.body)
        except json.JSONDecodeError as exc:
            raise RemoteError(f"GET {path}: not JSON ({exc})") from exc

    def get_text(self, path: str) -> str:
        """GET a plain-text resource (``/metrics``); non-200 raises.

        A failed scrape must be an *error* the caller's retry/breaker
        machinery sees, never an error page merged into a dataset.
        """
        page = self._request("GET", path)
        if page.status != 200:
            raise TransientRemoteError(f"GET {path} returned {page.status}")
        return page.body

    # -- the canonical workflow ------------------------------------------

    def login(self, user: str) -> Page:
        return self.post("/login", {"user": user})

    def open_cell(self, user: str, name: str) -> Page:
        return self.get(f"/cell?user={user}&name={name}")

    def compute_cell(
        self, user: str, name: str, parameters: Mapping[str, object]
    ) -> Page:
        fields: Dict[str, object] = {"user": user, "name": name}
        for key, value in parameters.items():
            fields[f"p:{key}"] = value
        return self.post("/cell", fields)

    def save_cell_to_design(
        self,
        user: str,
        name: str,
        design: str,
        row: str,
        parameters: Mapping[str, object],
    ) -> Page:
        fields: Dict[str, object] = {
            "user": user,
            "name": name,
            "design": design,
            "row": row,
        }
        for key, value in parameters.items():
            fields[f"p:{key}"] = value
        return self.post("/cell/save", fields)

    def new_design(self, user: str, name: str) -> Page:
        return self.post("/design/new", {"user": user, "name": name})

    def open_design(self, user: str, name: str, path: str = "") -> Page:
        suffix = f"&path={path}" if path else ""
        return self.get(f"/design?user={user}&name={name}{suffix}")

    def play(
        self,
        user: str,
        name: str,
        globals_: Optional[Mapping[str, object]] = None,
        row_params: Optional[Mapping[Tuple[str, str], object]] = None,
        path: str = "",
    ) -> Page:
        """Press PLAY with optional parameter edits."""
        fields: Dict[str, object] = {"user": user, "name": name, "path": path}
        for key, value in (globals_ or {}).items():
            fields[f"g:{key}"] = value
        for (row, parameter), value in (row_params or {}).items():
            fields[f"p:{row}:{parameter}"] = value
        return self.post("/design", fields)
