"""The Silva SMTP-hub baseline and the Figure 7 protocol comparison.

Figure 7, top: "Silva's method ... uses the mail protocol SMTP and
relies on hubs on each machine to interpret requests for information."
Figure 7, bottom: PowerPlay's modification — a direct HTTP GET against
a URL-addressed script.

To make the comparison runnable we model both over a common simulated
transport with per-message latency:

* **SMTP-hub**: the requester mails its *local* hub, which forwards to
  the *remote* hub, which interprets the request, mails the reply to
  the requester's hub, which delivers it.  Store-and-forward adds a
  queue delay at every hub, and each mail leg is one message.
* **HTTP-direct**: one request + one response between the two ends.

The E5 bench (``bench_fig7_model_access.py``) counts messages, hops and
latency per fetched model for each protocol — the quantitative version
of the figure's visual argument.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..errors import RemoteError
from ..library.catalog import Library, LibraryEntry
from ..obs import propagate, span

#: Simulated transport constants (seconds).  Mail legs pay a hub queue
#: delay on top of the wire; HTTP pays connection setup once.
WIRE_LATENCY = 0.040          # one network traversal
HUB_QUEUE_DELAY = 0.500       # store-and-forward dwell per hub hop
HTTP_SETUP = 0.060            # TCP connect + request parse


@dataclass
class TransferStats:
    """Accounting for one model fetch."""

    protocol: str
    messages: int = 0
    hub_hops: int = 0
    latency: float = 0.0

    def merged(self, other: "TransferStats") -> "TransferStats":
        if other.protocol != self.protocol:
            raise RemoteError("cannot merge stats across protocols")
        return TransferStats(
            self.protocol,
            self.messages + other.messages,
            self.hub_hops + other.hub_hops,
            self.latency + other.latency,
        )


class MailHub:
    """One site's store-and-forward hub (the Silva architecture).

    A hub knows its site's shared library and the other hubs it can
    forward to.  Requests are JSON envelopes; the hub "interprets
    requests for information" by looking the model up and mailing the
    payload back along the reverse route.
    """

    def __init__(self, site: str, library: Library):
        self.site = site
        self.library = library
        self.peers: Dict[str, "MailHub"] = {}
        self.messages_seen = 0

    def connect(self, other: "MailHub") -> None:
        self.peers[other.site] = other
        other.peers[self.site] = self

    def _deliver(self, stats: TransferStats) -> None:
        """One mail leg into this hub: wire + queue dwell."""
        self.messages_seen += 1
        stats.messages += 1
        stats.hub_hops += 1
        stats.latency += WIRE_LATENCY + HUB_QUEUE_DELAY

    def interpret(self, request: Mapping, stats: TransferStats) -> dict:
        """Serve a model request addressed to this site.

        The envelope's ``trace`` field carries the requester's
        ``X-PowerPlay-Trace`` context across the (simulated) mail hops,
        exactly like the HTTP header does on the direct protocol; a
        malformed or absent field is ignored, never an error.
        """
        name = request.get("model", "")
        context = propagate.parse_trace_header(request.get("trace", ""))
        with span(
            "hub_interpret", site=self.site, model=name
        ) as sp:
            if context is not None:
                sp.set(trace_id=context.trace_id, caller=context.span_id)
            if name not in self.library:
                raise RemoteError(f"site {self.site!r} has no model {name!r}")
            entry = self.library.get(name)
            if entry.proprietary:
                raise RemoteError(
                    f"model {name!r} at {self.site!r} is proprietary"
                )
            return entry.to_payload()

    def request_model(self, remote_site: str, name: str) -> Tuple[LibraryEntry, TransferStats]:
        """Full Silva round trip: requester -> local hub -> remote hub ->
        interpret -> remote hub -> local hub -> requester."""
        with span(
            "hub_request", site=self.site, remote=remote_site, model=name
        ):
            stats = TransferStats("smtp_hub")
            # requester mails the local hub
            self._deliver(stats)
            remote = self.peers.get(remote_site)
            if remote is None:
                raise RemoteError(
                    f"hub {self.site!r} has no route to {remote_site!r}"
                )
            # local hub forwards to the remote hub; the envelope carries
            # the trace context like the HTTP header would
            remote._deliver(stats)
            envelope = {"model": name}
            outbound = propagate.outbound_headers()
            if outbound:
                envelope["trace"] = outbound[propagate.TRACE_HEADER]
            payload = remote.interpret(envelope, stats)
            # reply mailed back to the local hub, then delivered to the user
            self._deliver(stats)
            stats.messages += 1            # final local delivery leg
            stats.latency += WIRE_LATENCY
            entry = LibraryEntry.from_payload(
                payload, origin=f"smtp://{remote_site}"
            )
            return entry, stats


class HTTPDirect:
    """The PowerPlay modification: a direct GET on a model URL."""

    def __init__(self, site: str, library: Library):
        self.site = site
        self.library = library
        self.requests_seen = 0

    def request_model(self, name: str) -> Tuple[LibraryEntry, TransferStats]:
        with span("http_direct", site=self.site, model=name):
            stats = TransferStats("http_direct")
            self.requests_seen += 1
            # request leg + response leg, one connection setup
            stats.messages = 2
            stats.hub_hops = 0
            stats.latency = HTTP_SETUP + 2 * WIRE_LATENCY
            if name not in self.library:
                raise RemoteError(f"site {self.site!r} has no model {name!r}")
            entry = self.library.get(name)
            if entry.proprietary:
                raise RemoteError(
                    f"model {name!r} at {self.site!r} is proprietary"
                )
            payload = entry.to_payload()
            decoded = LibraryEntry.from_payload(
                json.loads(json.dumps(payload)), origin=f"http://{self.site}"
            )
            return decoded, stats


def compare_protocols(
    library: Library,
    model_names: List[str],
    requester_site: str = "mit",
    provider_site: str = "berkeley",
) -> Dict[str, TransferStats]:
    """Fetch the same models both ways; return aggregate stats.

    The expected shape (and the reason the paper switched): HTTP-direct
    needs 2 messages and no hub dwell per model, the SMTP route 4+
    messages with two store-and-forward delays.
    """
    empty = Library(requester_site, "requesting site (no local models)")
    local_hub = MailHub(requester_site, empty)
    remote_hub = MailHub(provider_site, library)
    local_hub.connect(remote_hub)
    http_endpoint = HTTPDirect(provider_site, library)

    totals: Dict[str, TransferStats] = {
        "smtp_hub": TransferStats("smtp_hub"),
        "http_direct": TransferStats("http_direct"),
    }
    for name in model_names:
        _entry, mail_stats = local_hub.request_model(provider_site, name)
        totals["smtp_hub"] = totals["smtp_hub"].merged(mail_stats)
        _entry, http_stats = http_endpoint.request_model(name)
        totals["http_direct"] = totals["http_direct"].merged(http_stats)
    return totals
