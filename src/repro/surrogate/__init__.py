"""Surrogate-accelerated exploration: fit, predict, verify.

The exact explore engine walks every point of a parameter space; this
package gives it a second backend that walks a sampled fraction, learns
the objectives, and touches the rest only as vectorized prediction —
the HL-Pow/Lorecast recipe applied to PowerPlay's early-exploration
premise.  The flow and its guarantees:

* :mod:`~repro.surrogate.sampling` — seeded, deterministic training
  selection (corners + stratified interior);
* :mod:`~repro.surrogate.fit` — rank-checked least-squares regressors
  per objective with an honest holdout error bound;
* :mod:`~repro.surrogate.predict` — streaming vectorized prediction of
  the full space, running Pareto front, leverage-scored uncertainty
  band;
* :mod:`~repro.surrogate.verify` — exact re-evaluation of the rows
  that matter, and the report separating ``exact`` from ``predicted``;
* :mod:`~repro.surrogate.runner` — the crash-safe phase orchestration
  behind ``repro sweep --surrogate`` and the ``/sweep`` UI toggle.
"""

from .fit import BASIS_NAMES, SurrogateFit, fit_objective, fit_surrogates
from .predict import PredictionScan, axis_matrix, pareto_mask, scan_space
from .runner import (
    run_surrogate_job,
    surrogate_pending,
    surrogate_report,
    surrogate_result_rows,
)
from .sampling import (
    MIN_TRAINING_POINTS,
    chunk_indices,
    corner_indices,
    training_indices,
)
from .verify import (
    SurrogateReport,
    assemble_rows,
    observed_errors,
    select_verification,
)

__all__ = [
    "BASIS_NAMES",
    "MIN_TRAINING_POINTS",
    "PredictionScan",
    "SurrogateFit",
    "SurrogateReport",
    "assemble_rows",
    "axis_matrix",
    "chunk_indices",
    "corner_indices",
    "fit_objective",
    "fit_surrogates",
    "observed_errors",
    "pareto_mask",
    "run_surrogate_job",
    "scan_space",
    "select_verification",
    "surrogate_pending",
    "surrogate_report",
    "surrogate_result_rows",
    "training_indices",
]
