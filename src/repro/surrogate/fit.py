"""Per-objective least-squares surrogate regressors.

One :class:`SurrogateFit` per objective: a polynomial basis over the
axis values (optionally over their logs, which captures the power-law
forms the PowerPlay models are built from), coefficients solved by the
same rank-checked ``lstsq`` the Landman characterization flow uses
(:func:`repro.library.characterize._lstsq`), and an **honest** error
bound: the training rows are split deterministically, the fit sees only
the train split, and the reported max/p95 relative errors come from the
held-out rows the fit never saw.

``basis="auto"`` races the candidate forms and keeps the one with the
lowest holdout p95 relative error — a rank-deficient candidate (say a
single-value axis making the quadratic column degenerate) is simply
skipped, not fatal, as long as *some* form survives.

Everything serializes: a fitted surrogate round-trips through JSON so a
checkpointed job can resume prediction in a process that never saw the
training rows.
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import CharacterizationError, SurrogateError
from ..library.characterize import _lstsq

#: candidate bases, in the order ``auto`` prefers on a p95 tie
BASIS_NAMES = ("quadratic", "cubic", "linear", "log")

#: degree per named polynomial basis (log uses degree 2 over logs)
_DEGREES = {"linear": 1, "quadratic": 2, "cubic": 3, "log": 2}

#: relative-error denominators are floored here so an exactly-zero
#: objective (InfoPad's unmodeled delay) reads as zero error, not inf
_TINY = 1e-30


def _power_terms(n_axes: int, degree: int) -> List[Tuple[int, ...]]:
    """All monomial exponent tuples up to ``degree`` over ``n_axes``
    features, intercept first — deterministic column order."""
    terms: List[Tuple[int, ...]] = [()]
    for d in range(1, degree + 1):
        terms.extend(
            itertools.combinations_with_replacement(range(n_axes), d)
        )
    return terms


def _features(matrix: np.ndarray, log_features: bool) -> np.ndarray:
    if not log_features:
        return matrix
    if np.any(matrix <= 0):
        raise SurrogateError(
            "log basis needs strictly positive axis values"
        )
    return np.log(matrix)


def _design_matrix(
    features: np.ndarray, terms: Sequence[Tuple[int, ...]]
) -> np.ndarray:
    columns = []
    for term in terms:
        column = np.ones(features.shape[0])
        for axis in term:
            column = column * features[:, axis]
        columns.append(column)
    return np.column_stack(columns)


def _relative_errors(
    predicted: np.ndarray, actual: np.ndarray
) -> np.ndarray:
    return np.abs(predicted - actual) / np.maximum(np.abs(actual), _TINY)


def _p95(errors: np.ndarray) -> float:
    if errors.size == 0:
        return 0.0
    ordered = np.sort(errors)
    position = min(
        ordered.size - 1, max(0, math.ceil(0.95 * ordered.size) - 1)
    )
    return float(ordered[position])


@dataclass
class SurrogateFit:
    """One objective's fitted surrogate + its holdout error bound."""

    objective: str
    basis: str
    terms: List[Tuple[int, ...]]
    log_features: bool
    coefficients: List[float]
    gram_inv: List[List[float]]
    residual_rms: float
    holdout_max_rel: float
    holdout_p95_rel: float
    train_points: int
    holdout_points: int

    def design_matrix(self, matrix: np.ndarray) -> np.ndarray:
        return _design_matrix(
            _features(np.asarray(matrix, dtype=float), self.log_features),
            self.terms,
        )

    def predict(self, matrix: np.ndarray) -> np.ndarray:
        """Predicted objective values for an ``(n, n_axes)`` matrix."""
        return self.design_matrix(matrix) @ np.asarray(self.coefficients)

    def leverage(self, matrix: np.ndarray) -> np.ndarray:
        """Statistical leverage ``h = x (XᵀX)⁻¹ xᵀ`` per row — how far
        outside the training cloud a prediction sits; feeds the
        uncertainty score that picks the verification band."""
        basis = self.design_matrix(matrix)
        gram_inv = np.asarray(self.gram_inv)
        return np.einsum("ij,jk,ik->i", basis, gram_inv, basis)

    def to_payload(self) -> dict:
        return {
            "objective": self.objective,
            "basis": self.basis,
            "terms": [list(term) for term in self.terms],
            "log_features": self.log_features,
            "coefficients": list(self.coefficients),
            "gram_inv": [list(row) for row in self.gram_inv],
            "residual_rms": self.residual_rms,
            "holdout_max_rel": self.holdout_max_rel,
            "holdout_p95_rel": self.holdout_p95_rel,
            "train_points": self.train_points,
            "holdout_points": self.holdout_points,
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "SurrogateFit":
        try:
            return cls(
                objective=str(payload["objective"]),
                basis=str(payload["basis"]),
                terms=[tuple(int(i) for i in t) for t in payload["terms"]],
                log_features=bool(payload["log_features"]),
                coefficients=[float(c) for c in payload["coefficients"]],
                gram_inv=[
                    [float(v) for v in row] for row in payload["gram_inv"]
                ],
                residual_rms=float(payload["residual_rms"]),
                holdout_max_rel=float(payload["holdout_max_rel"]),
                holdout_p95_rel=float(payload["holdout_p95_rel"]),
                train_points=int(payload["train_points"]),
                holdout_points=int(payload["holdout_points"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SurrogateError(
                f"corrupt surrogate fit payload: {exc}"
            ) from exc


def _split(
    count: int, seed: int
) -> Tuple[List[int], List[int]]:
    """Deterministic train/holdout row split: ~20% held out, at least
    4 rows, never more than half."""
    order = list(range(count))
    random.Random(int(seed)).shuffle(order)
    holdout = min(max(4, count // 5), count // 2)
    return sorted(order[holdout:]), sorted(order[:holdout])


def _fit_one_basis(
    matrix: np.ndarray,
    measured: np.ndarray,
    objective: str,
    basis: str,
    train_rows: Sequence[int],
    holdout_rows: Sequence[int],
) -> SurrogateFit:
    log_features = basis == "log"
    terms = _power_terms(matrix.shape[1], _DEGREES[basis])
    features = _features(matrix, log_features)
    full = _design_matrix(features, terms)
    train_basis = full[list(train_rows)]
    solution = _lstsq(train_basis, measured[list(train_rows)])
    holdout_basis = full[list(holdout_rows)]
    holdout_actual = measured[list(holdout_rows)]
    holdout_predicted = holdout_basis @ solution
    errors = _relative_errors(holdout_predicted, holdout_actual)
    rms = float(
        np.sqrt(np.mean((holdout_predicted - holdout_actual) ** 2))
    )
    # pinv, not inv: a nearly-collinear basis that squeaked past the
    # rank check must degrade leverage gracefully, not blow up
    gram_inv = np.linalg.pinv(train_basis.T @ train_basis)
    return SurrogateFit(
        objective=objective,
        basis=basis,
        terms=terms,
        log_features=log_features,
        coefficients=[float(c) for c in solution],
        gram_inv=[[float(v) for v in row] for row in gram_inv],
        residual_rms=rms,
        holdout_max_rel=float(np.max(errors)) if errors.size else 0.0,
        holdout_p95_rel=_p95(errors),
        train_points=len(train_rows),
        holdout_points=len(holdout_rows),
    )


def fit_objective(
    matrix: np.ndarray,
    measured: np.ndarray,
    objective: str,
    basis: str = "auto",
    seed: int = 1996,
) -> SurrogateFit:
    """Fit one objective over an ``(n, n_axes)`` value matrix.

    ``basis="auto"`` tries every candidate in :data:`BASIS_NAMES` and
    keeps the lowest holdout-p95 survivor; a named basis must fit or
    the whole call fails.
    """
    matrix = np.asarray(matrix, dtype=float)
    measured = np.asarray(measured, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != measured.shape[0]:
        raise SurrogateError(
            f"objective {objective!r}: matrix/measured shape mismatch "
            f"{matrix.shape} vs {measured.shape}"
        )
    if not np.all(np.isfinite(matrix)):
        raise SurrogateError(
            f"objective {objective!r}: non-finite axis value in "
            "training matrix"
        )
    if not np.all(np.isfinite(measured)):
        raise SurrogateError(
            f"objective {objective!r}: non-finite measured value in "
            "training rows (failed rows must be filtered first)"
        )
    train_rows, holdout_rows = _split(matrix.shape[0], seed)
    if basis != "auto":
        if basis not in _DEGREES:
            raise SurrogateError(
                f"unknown surrogate basis {basis!r}; choose auto or one "
                f"of {BASIS_NAMES}"
            )
        try:
            return _fit_one_basis(
                matrix, measured, objective, basis, train_rows,
                holdout_rows,
            )
        except CharacterizationError as exc:
            raise SurrogateError(
                f"objective {objective!r}: basis {basis!r} failed: {exc}"
            ) from exc
    best: Optional[SurrogateFit] = None
    failures: List[str] = []
    for candidate in BASIS_NAMES:
        try:
            fit = _fit_one_basis(
                matrix, measured, objective, candidate, train_rows,
                holdout_rows,
            )
        except (CharacterizationError, SurrogateError) as exc:
            failures.append(f"{candidate}: {exc}")
            continue
        if best is None or fit.holdout_p95_rel < best.holdout_p95_rel:
            best = fit
    if best is None:
        raise SurrogateError(
            f"objective {objective!r}: no surrogate basis fits "
            f"({'; '.join(failures)})"
        )
    return best


def fit_surrogates(
    rows: Sequence[Mapping],
    axis_names: Sequence[str],
    objectives: Sequence[str],
    basis: str = "auto",
    seed: int = 1996,
    max_error: float = 0.0,
) -> Dict[str, SurrogateFit]:
    """Fit every built-in objective from exact training rows.

    Failed training rows (non-empty ``error``) are dropped.  With
    ``max_error > 0`` the fitted holdout **max** relative error of every
    objective must stay within it, or the run aborts here — before a
    single point is predicted from a model known to be bad.
    """
    usable = [row for row in rows if not row.get("error")]
    if len(usable) < 8:
        raise SurrogateError(
            f"only {len(usable)} of {len(rows)} training rows are usable;"
            " need at least 8 to fit and hold out"
        )
    matrix = np.array(
        [[float(row["values"][name]) for name in axis_names]
         for row in usable]
    )
    fits: Dict[str, SurrogateFit] = {}
    for objective in objectives:
        measured = np.array(
            [float(row["objectives"][objective]) for row in usable]
        )
        fit = fit_objective(
            matrix, measured, objective, basis=basis, seed=seed
        )
        if max_error > 0 and fit.holdout_max_rel > max_error:
            raise SurrogateError(
                f"objective {objective!r}: holdout max relative error "
                f"{fit.holdout_max_rel:.4%} exceeds the --max-error "
                f"budget {max_error:.4%} (basis {fit.basis!r}; add "
                "training points or raise the budget)"
            )
        fits[objective] = fit
    return fits


def error_bound(fits: Mapping[str, SurrogateFit]) -> float:
    """The run's reported bound: worst holdout max-rel across fits."""
    return max(
        (fit.holdout_max_rel for fit in fits.values()), default=0.0
    )
