"""Vectorized lazy prediction over a full enumeration.

A million-point space is never materialized: point indices stream
through in fixed-size windows, each window's axis values are built by
vectorized row-major arithmetic (``values[(index // stride) % len]``),
every fitted objective is predicted as one matrix product, and only two
small running structures survive the pass:

* the **predicted Pareto front** — merged chunk by chunk, ties on the
  full objective vector surviving exactly as
  :func:`repro.explore.results.pareto_rows` keeps them;
* the **uncertainty band** — the top-K points by leverage-scaled
  relative error score ``rms · sqrt(1 + h) / |prediction|``, the rows
  where the model is least trustworthy and exact verification buys the
  most.

Rows predicting non-finite values (an extrapolating basis, a derived
expression dividing by zero at a corner) are dropped and counted —
NaN never reaches a dominance comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..errors import PowerPlayError, SurrogateError
from ..explore.space import DerivedObjective, ParameterSpace
from .fit import SurrogateFit, _TINY
from .sampling import axis_strides

#: default streaming window; ~an (n, terms) matrix product per window
DEFAULT_CHUNK = 65536

#: dominance comparisons are sub-chunked at this many rows to bound the
#: broadcast to a few MB no matter how large a window's local front is
_DOMINANCE_BLOCK = 2048


def axis_matrix(
    space: ParameterSpace, start: int, stop: int
) -> np.ndarray:
    """Axis values for points ``[start, stop)`` as an ``(n, n_axes)``
    matrix, bit-identical to ``space.axis_values(i)`` per row."""
    if not 0 <= start <= stop <= len(space):
        raise SurrogateError(
            f"window [{start}, {stop}) out of range 0..{len(space)}"
        )
    indices = np.arange(start, stop, dtype=np.int64)
    strides = axis_strides(space)
    columns = [
        np.asarray(axis.values, dtype=float)[
            (indices // stride) % len(axis)
        ]
        for axis, stride in zip(space.axes, strides)
    ]
    return np.column_stack(columns) if columns else np.empty((0, 0))


def _pareto_mask_2d(unique: np.ndarray) -> np.ndarray:
    """Sort-free front mask over lexicographically-sorted unique rows
    with two columns: a row survives iff its second objective strictly
    undercuts everything that sorts before it."""
    second = unique[:, 1]
    running = np.minimum.accumulate(second)
    previous = np.concatenate(([np.inf], running[:-1]))
    return second < previous


def _pareto_mask_nd(unique: np.ndarray) -> np.ndarray:
    """Blockwise front mask over lex-sorted unique rows, any number of
    objectives.  Dominators always sort before their victims, so each
    block only checks the survivors accumulated so far (plus earlier
    rows of its own block); broadcasts stay bounded by the block size.
    """
    count = unique.shape[0]
    keep = np.ones(count, dtype=bool)
    kept = np.empty((0, unique.shape[1]))
    for begin in range(0, count, _DOMINANCE_BLOCK):
        block = unique[begin:begin + _DOMINANCE_BLOCK]
        if kept.shape[0]:
            # unique rows are distinct, so <= on every axis from a
            # different row already implies strict-on-one
            dominated = np.any(
                np.all(kept[None, :, :] <= block[:, None, :], axis=2),
                axis=1,
            )
        else:
            dominated = np.zeros(block.shape[0], dtype=bool)
        local = ~dominated
        for i in np.flatnonzero(local):
            later = np.flatnonzero(local[i + 1:]) + i + 1
            if later.size:
                local[later] &= ~np.all(
                    block[i] <= block[later], axis=1
                )
        keep[begin:begin + block.shape[0]] = local
        if np.any(local):
            kept = np.vstack([kept, block[local]])
    return keep


def pareto_mask(vectors: np.ndarray) -> np.ndarray:
    """Boolean mask of non-dominated rows (all objectives minimized).

    Ties on the full vector all survive, matching ``pareto_rows``.
    Two objectives get an O(n log n) sort-and-scan; more fall back to
    blockwise dominance in lexicographic order.
    """
    vectors = np.asarray(vectors, dtype=float)
    if vectors.shape[0] == 0:
        return np.zeros(0, dtype=bool)
    unique, inverse = np.unique(vectors, axis=0, return_inverse=True)
    if vectors.shape[1] == 2:
        keep_unique = _pareto_mask_2d(unique)
    else:
        keep_unique = _pareto_mask_nd(unique)
    return keep_unique[inverse]


@dataclass
class PredictionScan:
    """What one streaming pass found (indices only, plus the predicted
    objective values for the rows worth keeping)."""

    total_points: int = 0
    scanned_points: int = 0
    dropped_non_finite: int = 0
    #: predicted-front point indices, ascending
    front_indices: List[int] = field(default_factory=list)
    #: most-uncertain non-front indices, by (score desc, index asc)
    uncertain_indices: List[int] = field(default_factory=list)
    #: point index -> {objective: predicted value} for every index in
    #: ``front_indices`` / ``uncertain_indices``
    predicted: Dict[int, Dict[str, float]] = field(default_factory=dict)
    #: point index -> uncertainty score for band candidates
    scores: Dict[int, float] = field(default_factory=dict)


def _scalar_column(
    value_fn, matrix: np.ndarray, axis_names: Sequence[str],
    extra_cols: Mapping[str, np.ndarray],
) -> np.ndarray:
    """Evaluate a scalar expression row by row over a window (compiled
    expressions are scalar-typed); failures become NaN and are dropped
    downstream with the non-finite count."""
    out = np.empty(matrix.shape[0])
    names = list(axis_names)
    for i in range(matrix.shape[0]):
        env = {name: matrix[i, k] for k, name in enumerate(names)}
        for name, column in extra_cols.items():
            env[name] = column[i]
        try:
            out[i] = value_fn(env)
        except PowerPlayError:
            out[i] = np.nan
    return out


def scan_space(
    space: ParameterSpace,
    fits: Mapping[str, SurrogateFit],
    objectives: Sequence[str],
    derived: Sequence[DerivedObjective] = (),
    chunk_size: int = DEFAULT_CHUNK,
    keep_uncertain: int = 64,
    progress: Optional[Callable[[int, int], None]] = None,
) -> PredictionScan:
    """Stream the whole space through the fitted surrogates.

    ``objectives`` are the built-in objective names (each must have a
    fit); derived objectives are evaluated on top of the predictions.
    ``progress(scanned, total)`` fires after each window.
    """
    for name in objectives:
        if name not in fits:
            raise SurrogateError(f"no surrogate fit for objective {name!r}")
    chunk_size = max(1, int(chunk_size))
    keep_uncertain = max(0, int(keep_uncertain))
    total = len(space)
    objective_names = list(objectives) + [d.name for d in derived]
    scan = PredictionScan(total_points=total)

    front_vectors = np.empty((0, len(objective_names)))
    front_indices = np.empty(0, dtype=np.int64)
    band_scores = np.empty(0)
    band_indices = np.empty(0, dtype=np.int64)
    kept_predictions: Dict[int, Dict[str, float]] = {}

    for start in range(0, total, chunk_size):
        stop = min(start + chunk_size, total)
        indices = np.arange(start, stop, dtype=np.int64)
        matrix = axis_matrix(space, start, stop)

        extra_cols: Dict[str, np.ndarray] = {}
        for couple in space.coupled:
            extra_cols[couple.target] = _scalar_column(
                couple.value, matrix, space.axis_names, extra_cols
            )

        score = np.zeros(matrix.shape[0])
        for name in objectives:
            fit = fits[name]
            basis = fit.design_matrix(matrix)
            predicted = basis @ np.asarray(fit.coefficients)
            extra_cols[name] = predicted
            if keep_uncertain:
                leverage = np.einsum(
                    "ij,jk,ik->i", basis, np.asarray(fit.gram_inv), basis
                )
                with np.errstate(invalid="ignore"):
                    contribution = (
                        fit.residual_rms
                        * np.sqrt(np.maximum(1.0 + leverage, 0.0))
                        / np.maximum(np.abs(predicted), _TINY)
                    )
                score = np.maximum(score, contribution)
        for obj in derived:
            extra_cols[obj.name] = _scalar_column(
                obj.value, matrix, space.axis_names, extra_cols
            )

        vectors = np.column_stack(
            [extra_cols[name] for name in objective_names]
        )
        finite = np.all(np.isfinite(vectors), axis=1)
        scan.dropped_non_finite += int(np.sum(~finite))
        vectors = vectors[finite]
        window_indices = indices[finite]
        score = score[finite]

        if vectors.shape[0]:
            local = pareto_mask(vectors)
            merged_vectors = np.vstack([front_vectors, vectors[local]])
            merged_indices = np.concatenate(
                [front_indices, window_indices[local]]
            )
            keep = pareto_mask(merged_vectors)
            front_vectors = merged_vectors[keep]
            front_indices = merged_indices[keep]

            if keep_uncertain and score.size:
                merged_scores = np.concatenate([band_scores, score])
                merged_band = np.concatenate(
                    [band_indices, window_indices]
                )
                if merged_scores.size > keep_uncertain:
                    # top-K by (score desc, index asc), deterministic
                    order = np.lexsort((merged_band, -merged_scores))
                    order = order[:keep_uncertain]
                    merged_scores = merged_scores[order]
                    merged_band = merged_band[order]
                band_scores = merged_scores
                band_indices = merged_band

            # record predictions for this window's rows that currently
            # matter (front survivors or band members); rows evicted by
            # later windows are filtered out at the end
            wanted_now = set(front_indices.tolist())
            wanted_now.update(band_indices.tolist())
            for position in np.flatnonzero(
                np.isin(window_indices, np.fromiter(
                    wanted_now, dtype=np.int64, count=len(wanted_now)
                ))
            ):
                idx = int(window_indices[position])
                kept_predictions[idx] = {
                    name: float(vectors[position, column])
                    for column, name in enumerate(objective_names)
                }

        scan.scanned_points = stop
        if progress is not None:
            progress(stop, total)

    if band_indices.size:
        order = np.lexsort((band_indices, -band_scores))
        band_indices = band_indices[order]
        band_scores = band_scores[order]
    front_set = set(int(i) for i in front_indices)
    scan.front_indices = sorted(front_set)
    scan.uncertain_indices = [
        int(i) for i in band_indices if int(i) not in front_set
    ]
    scan.scores = {
        int(i): float(s) for i, s in zip(band_indices, band_scores)
    }
    wanted = front_set | set(scan.uncertain_indices)
    scan.predicted = {
        idx: values
        for idx, values in kept_predictions.items()
        if idx in wanted
    }
    missing = wanted - set(scan.predicted)
    if missing:  # pragma: no cover - structural invariant
        raise SurrogateError(
            f"scan lost predictions for {len(missing)} kept row(s)"
        )
    return scan
