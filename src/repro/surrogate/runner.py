"""Orchestration: run a surrogate sweep job through its phases.

A surrogate job moves through three checkpointed phases, all riding the
same crash-safe :class:`~repro.explore.jobs.JobStore` discipline as
exhaustive sweeps — kill the process at any instant and a resume picks
up from the last complete checkpoint, producing a **byte-identical**
export:

1. **train** — exact evaluation of the seeded training sample, chunked
   through :func:`repro.explore.engine.run_index_chunks` (serial,
   thread, or process mode) and checkpointed chunk by chunk;
2. **plan** — fit the per-objective surrogates from the training rows,
   stream-predict the full space, select the predicted Pareto front and
   the uncertainty band, and checkpoint the whole plan (fit payloads,
   front/band indices, *and the predicted values for those rows*) in
   one atomic write — a resumed job never re-predicts, so numerical
   drift can't leak into the export;
3. **verify** — exact re-evaluation of the selected rows, chunked and
   checkpointed like the training phase.

The phases are pure functions of their checkpointed inputs: training
rows are deterministic (bit-identical to ``evaluate_power``), the plan
is a deterministic function of the training rows, and verification rows
are deterministic again — which is what makes kill → resume → export
byte-equality a *testable* contract rather than a hope.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

from ..errors import PowerPlayError
from ..explore.engine import run_index_chunks
from ..explore.jobs import SweepJob
from ..obs import annotate, get_logger, get_registry, span
from .fit import SurrogateFit, error_bound, fit_surrogates
from .predict import DEFAULT_CHUNK, scan_space
from .sampling import chunk_indices, training_indices
from .verify import (
    SurrogateReport,
    assemble_rows,
    observed_errors,
    select_verification,
)

_LOG = get_logger("surrogate")

#: phase checkpoints batch at least this many points per chunk — a
#: 64-point chunk size tuned for interactive exhaustive sweeps would
#: mean hundreds of full-job checkpoint writes on a 10k training set
MIN_PHASE_CHUNK = 256


def _metric_train():
    return get_registry().counter(
        "powerplay_surrogate_train_total",
        "Exact training points evaluated for surrogate fits.",
    )


def _metric_predict():
    return get_registry().counter(
        "powerplay_surrogate_predict_total",
        "Points predicted by fitted surrogates (never exact-evaluated).",
    )


def _metric_verify():
    return get_registry().counter(
        "powerplay_surrogate_verify_total",
        "Predicted rows re-verified with the exact estimator.",
    )


def _metric_error_bound():
    return get_registry().gauge(
        "powerplay_surrogate_error_bound",
        "Holdout max relative error bound of the latest surrogate fit.",
    )


def _phase_chunk_size(job: SweepJob) -> int:
    return max(int(job.chunk_size), MIN_PHASE_CHUNK)


def train_plan(job: SweepJob) -> List[List[int]]:
    """The training phase's chunked index lists (pure function of the
    job's space + surrogate config, so resume re-derives it exactly)."""
    indices = training_indices(
        job.space,
        fraction=job.surrogate["train_frac"],
        seed=job.surrogate["train_seed"],
    )
    return chunk_indices(indices, _phase_chunk_size(job))


def verify_plan(job: SweepJob) -> List[List[int]]:
    """The verify phase's chunked index lists (from the checkpointed
    plan; empty until the plan phase lands)."""
    plan = job.phase_data("plan")
    if plan is None:
        return []
    return chunk_indices(
        [int(i) for i in plan["verify"]], _phase_chunk_size(job)
    )


def surrogate_pending(job: SweepJob) -> bool:
    """Is there phase work left?  Mirrors ``pending_chunks`` for the
    exhaustive engine: the resume loop runs while this is true."""
    done_train = set(job.phase_chunks("train"))
    if any(
        ordinal not in done_train
        for ordinal in range(len(train_plan(job)))
    ):
        return True
    if job.phase_data("plan") is None:
        return True
    done_verify = set(job.phase_chunks("verify"))
    return any(
        ordinal not in done_verify
        for ordinal in range(len(verify_plan(job)))
    )


def _run_phase_chunks(
    job: SweepJob,
    phase: str,
    chunks: List[List[int]],
    should_stop: Callable[[], bool],
) -> bool:
    """Run one phase's missing chunks; False when stopped early."""
    done = set(job.phase_chunks(phase))
    pending = [
        (ordinal, indices)
        for ordinal, indices in enumerate(chunks)
        if ordinal not in done
    ]
    if not pending:
        return True
    design = job.design()
    run_index_chunks(
        design, job.space, pending,
        objectives=job.objectives, derived=job.derived,
        workers=job.workers, mode=job.mode,
        should_stop=should_stop,
        on_chunk=lambda ordinal, indices, rows, seconds:
            job.record_phase_chunk(phase, ordinal, indices, rows, seconds),
    )
    return len(job.phase_chunks(phase)) == len(chunks)


def _build_plan(job: SweepJob) -> None:
    """Fit, predict, select — one atomic checkpoint."""
    config = job.surrogate
    train_rows = [
        row
        for index, row in sorted(job.phase_rows("train").items())
    ]
    fit_began = time.perf_counter()
    with span("surrogate.fit"):
        fits = fit_surrogates(
            train_rows,
            job.space.axis_names,
            job.objectives,
            basis=config["basis"],
            seed=config["train_seed"],
            max_error=config["max_error"],
        )
        bound = error_bound(fits)
        _metric_error_bound().set(bound)
        annotate(
            "fit",
            objectives=",".join(fits),
            bound=round(bound, 6),
            bases=",".join(fit.basis for fit in fits.values()),
        )
    fit_seconds = time.perf_counter() - fit_began
    predict_began = time.perf_counter()
    with span("surrogate.predict"):
        scan = scan_space(
            job.space, fits, job.objectives, job.derived,
            chunk_size=DEFAULT_CHUNK,
            keep_uncertain=config["verify_top"],
        )
        _metric_predict().inc(scan.scanned_points)
    predict_seconds = time.perf_counter() - predict_began
    train_indices = sorted(job.phase_rows("train"))
    verify = select_verification(
        scan.front_indices, scan.uncertain_indices, train_indices,
        config["verify_top"],
    )
    job.set_phase_data(
        "plan",
        {
            "fits": {
                name: fit.to_payload() for name, fit in fits.items()
            },
            "error_bound": bound,
            "front": scan.front_indices,
            "uncertain": scan.uncertain_indices,
            "scores": {
                str(index): score
                for index, score in sorted(scan.scores.items())
            },
            "predicted": {
                str(index): values
                for index, values in sorted(scan.predicted.items())
            },
            "verify": verify,
            "scanned_points": scan.scanned_points,
            "dropped_non_finite": scan.dropped_non_finite,
            "seconds": {
                "fit": fit_seconds,
                "predict": predict_seconds,
            },
        },
    )
    _LOG.info(
        "plan", job=job.job_id, bound=round(bound, 6),
        front=len(scan.front_indices), verify=len(verify),
        scanned=scan.scanned_points,
        dropped=scan.dropped_non_finite,
    )


def run_surrogate_job(
    job: SweepJob,
    should_stop: Optional[Callable[[], bool]] = None,
) -> SweepJob:
    """Execute (or resume) a surrogate job to a terminal state."""
    job.set_state("running")

    def _stop() -> bool:
        return job.cancel_requested or bool(
            should_stop is not None and should_stop()
        )

    try:
        with span("surrogate.job"):
            annotate(
                "surrogate", job=job.job_id, points=job.total_points
            )
            with span("surrogate.train"):
                before = len(job.phase_rows("train"))
                trained = _run_phase_chunks(
                    job, "train", train_plan(job), _stop
                )
                _metric_train().inc(
                    len(job.phase_rows("train")) - before
                )
            if trained and not _stop():
                if job.phase_data("plan") is None:
                    _build_plan(job)
                with span("surrogate.verify"):
                    before = len(job.phase_rows("verify"))
                    _run_phase_chunks(
                        job, "verify", verify_plan(job), _stop
                    )
                    _metric_verify().inc(
                        len(job.phase_rows("verify")) - before
                    )
    except PowerPlayError as exc:
        job.set_state("failed", str(exc))
        raise
    except BaseException as exc:
        job.set_state("failed", f"engine failure: {exc}")
        raise
    if surrogate_pending(job):
        job.set_state("cancelled")
    else:
        job.set_state("done")
    return job


def surrogate_result_rows(job: SweepJob) -> List[dict]:
    """Assemble the final exact + predicted row set (raises while any
    phase is incomplete)."""
    from ..errors import JobError

    if surrogate_pending(job):
        raise JobError(
            f"job {job.job_id!r} is incomplete: surrogate phases "
            f"pending ({job.done_points} exact points so far)"
        )
    plan = job.phase_data("plan")
    exact_rows: Dict[int, dict] = {}
    exact_rows.update(job.phase_rows("train"))
    exact_rows.update(job.phase_rows("verify"))
    predicted = {
        int(index): {str(k): float(v) for k, v in values.items()}
        for index, values in plan["predicted"].items()
    }
    return assemble_rows(
        job.space,
        exact_rows,
        predicted,
        [int(i) for i in plan["front"]],
        [int(i) for i in plan["uncertain"]],
    )


def surrogate_report(job: SweepJob) -> SurrogateReport:
    """Build the run's report from the checkpointed phases."""
    plan = job.phase_data("plan") or {}
    config = dict(job.surrogate or {})
    report = SurrogateReport(config=config)
    report.total_points = job.total_points
    train_rows = job.phase_rows("train")
    report.train_points = len(train_rows)
    report.usable_train_points = sum(
        1 for row in train_rows.values() if not row.get("error")
    )
    report.predicted_points = int(plan.get("scanned_points", 0))
    report.dropped_non_finite = int(plan.get("dropped_non_finite", 0))
    report.error_bound = float(plan.get("error_bound", 0.0))
    if plan.get("fits"):
        report.fit_summary(
            {
                name: SurrogateFit.from_payload(payload)
                for name, payload in plan["fits"].items()
            }
        )
    front = [int(i) for i in plan.get("front", [])]
    report.front_size = len(front)
    report.band_size = len(plan.get("uncertain", []))
    verify_rows = job.phase_rows("verify")
    report.verified_points = len(verify_rows)
    report.verify_failures = sum(
        1 for row in verify_rows.values() if row.get("error")
    )
    exact = set(train_rows) | set(verify_rows)
    report.unverified_front = sum(
        1 for index in front if index not in exact
    )
    objective_names = job.objective_names
    predicted = {
        int(index): values
        for index, values in plan.get("predicted", {}).items()
    }
    report.observed_rel = observed_errors(
        verify_rows, predicted, objective_names
    )
    report.observed_max_rel = max(
        report.observed_rel.values(), default=0.0
    )
    seconds = dict(plan.get("seconds", {}))
    seconds["train"] = sum(
        chunk["seconds"] for chunk in job.phase_chunks("train").values()
    )
    seconds["verify"] = sum(
        chunk["seconds"] for chunk in job.phase_chunks("verify").values()
    )
    report.seconds = {k: float(v) for k, v in sorted(seconds.items())}
    return report
