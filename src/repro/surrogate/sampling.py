"""Deterministic training-set selection over a parameter space.

The surrogate flow (HL-Pow / Lorecast style: learn a fast predictor
from a sampled subset of the slow reference flow) stands or falls on
*which* points get exact-evaluated.  Two requirements drive the design:

* **Coverage** — a least-squares polynomial fit extrapolates badly, so
  the training set must pin down the whole hull: every corner of the
  grid (all first/last combinations per axis) is always included, and
  the interior is covered by stratified picks — the index range is cut
  into equal strata and one point drawn per stratum, so no region of
  the row-major enumeration goes unsampled.

* **Determinism** — resume must be byte-identical, so the selection is
  a pure function of ``(space shape, fraction, seed)``: one
  ``random.Random(seed)`` drives every draw, output is sorted and
  deduplicated, and nothing depends on wall clock, hashing order, or
  numpy RNG state.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from ..errors import SurrogateError
from ..explore.space import ParameterSpace

#: never train on fewer points than this (a quadratic basis over a few
#: axes needs tens of rows before the holdout split means anything)
MIN_TRAINING_POINTS = 32


def axis_strides(space: ParameterSpace) -> List[int]:
    """Row-major stride per axis: ``index // stride % len`` is the
    axis's value position for a flat point index."""
    strides: List[int] = []
    stride = 1
    for axis in reversed(space.axes):
        strides.append(stride)
        stride *= len(axis)
    strides.reverse()
    return strides


def corner_indices(space: ParameterSpace) -> List[int]:
    """Flat indices of every grid corner (first/last value per axis)."""
    strides = axis_strides(space)
    corners = [0]
    for axis, stride in zip(space.axes, strides):
        last = (len(axis) - 1) * stride
        if last == 0:
            continue
        corners = [base for base in corners] + [
            base + last for base in corners
        ]
    return sorted(set(corners))


def training_indices(
    space: ParameterSpace,
    fraction: float = 0.01,
    seed: int = 1996,
    minimum: int = MIN_TRAINING_POINTS,
) -> List[int]:
    """The sorted, deduplicated training set for one surrogate run.

    ``fraction`` of the space (at least ``minimum`` points, never more
    than the whole space): grid corners first, then one seeded pick per
    equal-width stratum of the flat index range.  Byte-identical for
    identical ``(space shape, fraction, seed, minimum)``.
    """
    total = len(space)
    if not 0.0 < fraction <= 1.0:
        raise SurrogateError(
            f"training fraction must be in (0, 1], got {fraction!r}"
        )
    target = max(int(minimum), int(round(fraction * total)))
    target = min(target, total)
    if target < 2:
        raise SurrogateError(
            f"cannot fit a surrogate on {target} training point(s); "
            "the space is too small to split"
        )
    chosen = set(corner_indices(space))
    strata = target - len(chosen)
    if strata > 0:
        rng = random.Random(int(seed))
        # one draw per stratum; collisions with corners simply redraw
        # into the next stratum's budget — the loop below tops up from
        # the same stream until the target is met, so the sequence of
        # draws (and therefore the set) is fully determined by the seed
        edges = [
            (stratum * total) // strata for stratum in range(strata + 1)
        ]
        for lo, hi in zip(edges, edges[1:]):
            if hi > lo:
                chosen.add(rng.randrange(lo, hi))
        while len(chosen) < target:
            chosen.add(rng.randrange(total))
    return sorted(chosen)


def chunk_indices(
    indices: Sequence[int], chunk_size: int
) -> List[List[int]]:
    """Shard an index list for the engine: chunk ``ordinal`` holds
    ``indices[ordinal * chunk_size : (ordinal + 1) * chunk_size]``."""
    if chunk_size < 1:
        raise SurrogateError(
            f"chunk size must be >= 1, got {chunk_size}"
        )
    return [
        list(indices[start:start + chunk_size])
        for start in range(0, len(indices), chunk_size)
    ]
