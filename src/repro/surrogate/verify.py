"""Exact verification of predicted rows and the surrogate report.

The fit-predict-verify contract (see DESIGN.md): a surrogate sweep's
export never passes a model prediction off as a measurement.  Every row
is marked ``source: exact`` (the row's objectives came from the real
estimator — training rows and re-verified rows) or ``source: predicted``
(the row's objectives are surrogate output, kept only when the
verification budget ran out before reaching it).  Re-verified rows keep
their predicted values alongside the exact ones, which is where the
observed model error in the :class:`SurrogateReport` comes from — the
report separates the *promised* bound (holdout) from the *observed*
error on the rows that matter (the predicted front and the uncertainty
band).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

from ..errors import SurrogateError
from ..explore.space import ParameterSpace
from .fit import _TINY, SurrogateFit


@dataclass
class SurrogateReport:
    """Everything a caller needs to judge one surrogate run."""

    total_points: int = 0
    train_points: int = 0
    usable_train_points: int = 0
    predicted_points: int = 0
    dropped_non_finite: int = 0
    front_size: int = 0
    band_size: int = 0
    verified_points: int = 0
    unverified_front: int = 0
    verify_failures: int = 0
    #: promised bound: worst holdout max-rel across objective fits
    error_bound: float = 0.0
    #: observed on re-verified rows: objective -> max relative error
    observed_rel: Dict[str, float] = field(default_factory=dict)
    observed_max_rel: float = 0.0
    #: objective -> {basis, holdout_max_rel, holdout_p95_rel, ...}
    fits: Dict[str, dict] = field(default_factory=dict)
    config: Dict[str, object] = field(default_factory=dict)
    #: phase -> wall-clock seconds (informational only — never part of
    #: the byte-compared export)
    seconds: Dict[str, float] = field(default_factory=dict)

    def to_payload(self) -> dict:
        return {
            "total_points": self.total_points,
            "train_points": self.train_points,
            "usable_train_points": self.usable_train_points,
            "predicted_points": self.predicted_points,
            "dropped_non_finite": self.dropped_non_finite,
            "front_size": self.front_size,
            "band_size": self.band_size,
            "verified_points": self.verified_points,
            "unverified_front": self.unverified_front,
            "verify_failures": self.verify_failures,
            "error_bound": self.error_bound,
            "observed_rel": dict(self.observed_rel),
            "observed_max_rel": self.observed_max_rel,
            "fits": {k: dict(v) for k, v in self.fits.items()},
            "config": dict(self.config),
            "seconds": dict(self.seconds),
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "SurrogateReport":
        try:
            report = cls()
            for name in (
                "total_points", "train_points", "usable_train_points",
                "predicted_points", "dropped_non_finite", "front_size",
                "band_size", "verified_points", "unverified_front",
                "verify_failures",
            ):
                setattr(report, name, int(payload.get(name, 0)))
            report.error_bound = float(payload.get("error_bound", 0.0))
            report.observed_max_rel = float(
                payload.get("observed_max_rel", 0.0)
            )
            report.observed_rel = {
                str(k): float(v)
                for k, v in payload.get("observed_rel", {}).items()
            }
            report.fits = {
                str(k): dict(v)
                for k, v in payload.get("fits", {}).items()
            }
            report.config = dict(payload.get("config", {}))
            report.seconds = {
                str(k): float(v)
                for k, v in payload.get("seconds", {}).items()
            }
            return report
        except (TypeError, ValueError) as exc:
            raise SurrogateError(
                f"corrupt surrogate report payload: {exc}"
            ) from exc

    def fit_summary(self, fits: Mapping[str, SurrogateFit]) -> None:
        self.fits = {
            name: {
                "basis": fit.basis,
                "holdout_max_rel": fit.holdout_max_rel,
                "holdout_p95_rel": fit.holdout_p95_rel,
                "train_points": fit.train_points,
                "holdout_points": fit.holdout_points,
            }
            for name, fit in fits.items()
        }


def select_verification(
    front_indices: Sequence[int],
    uncertain_indices: Sequence[int],
    train_indices: Sequence[int],
    budget: int,
) -> List[int]:
    """Which points get exact re-evaluation, deterministically.

    Training rows are already exact, so they never consume budget.
    The predicted front comes first (ascending index); leftover budget
    fills from the uncertainty band in score order.  A front larger
    than the budget is allowed — its tail stays ``predicted`` in the
    export and is counted as ``unverified_front`` in the report.
    """
    budget = max(0, int(budget))
    train = set(int(i) for i in train_indices)
    chosen: List[int] = []
    for index in front_indices:
        if len(chosen) >= budget:
            break
        if int(index) not in train:
            chosen.append(int(index))
    for index in uncertain_indices:
        if len(chosen) >= budget:
            break
        index = int(index)
        if index not in train and index not in chosen:
            chosen.append(index)
    return chosen


def observed_errors(
    exact_rows: Mapping[int, Mapping],
    predicted: Mapping[int, Mapping[str, float]],
    objective_names: Sequence[str],
) -> Dict[str, float]:
    """Objective -> max relative |predicted - exact| over the verified
    rows (failed exact rows are skipped; they're counted separately)."""
    worst = {name: 0.0 for name in objective_names}
    for index, row in exact_rows.items():
        guess = predicted.get(int(index))
        if guess is None or row.get("error"):
            continue
        for name in objective_names:
            exact = float(row["objectives"][name])
            relative = abs(float(guess[name]) - exact) / max(
                abs(exact), _TINY
            )
            if relative > worst[name]:
                worst[name] = relative
    return worst


def assemble_rows(
    space: ParameterSpace,
    exact_rows: Mapping[int, Mapping],
    predicted: Mapping[int, Mapping[str, float]],
    front_indices: Sequence[int],
    uncertain_indices: Sequence[int],
) -> List[dict]:
    """The surrogate sweep's result rows, in point order.

    Exact rows (training + verified) come out marked ``exact``; any
    predicted-front or band row the verification budget did not reach
    comes out marked ``predicted`` with the surrogate's values as its
    objectives.  Verified rows that were also predicted carry their
    ``predicted`` values for side-by-side display.
    """
    indices = set(int(i) for i in exact_rows)
    indices.update(int(i) for i in front_indices)
    indices.update(int(i) for i in uncertain_indices)
    rows: List[dict] = []
    for index in sorted(indices):
        exact = exact_rows.get(index)
        if exact is not None:
            row = dict(exact)
            row["source"] = "exact"
            guess = predicted.get(index)
            if guess is not None:
                row["predicted"] = {
                    name: float(value) for name, value in guess.items()
                }
            rows.append(row)
            continue
        guess = predicted.get(index)
        if guess is None:  # pragma: no cover - structural invariant
            raise SurrogateError(
                f"point {index} is neither exact nor predicted"
            )
        point = space.point(index)
        rows.append(
            {
                "index": index,
                "values": point["values"],
                "overrides": point["overrides"],
                "objectives": {
                    name: float(value) for name, value in guess.items()
                },
                "error": "",
                "source": "predicted",
            }
        )
    return rows
