"""Row-level memoized batch evaluation — many points, few recomputes.

:func:`repro.core.estimator.evaluate_power` rebuilds the full report
tree on every call: every model expression re-walked, every scope name
re-resolved, every breakdown re-summed.  Fine for one PLAY; wasteful
for a 10k-point sweep where most rows' inputs did not change between
neighbouring points (a ``VDD2`` step leaves every ``VDD1`` row's
environment bit-identical).

:class:`BatchEvaluator` compiles a design once and then evaluates
points by **read-set memoization**: the first evaluation of a row
records exactly which environment names the row's models read (gets,
containment probes, and misses); later points re-resolve just those
names and reuse the row's objective values when every recorded read
matches.  A model that inspects its environment in any non-replayable
way (iteration, length) permanently opts its row out — correctness
never depends on guessing.

The contract, relied on by the engine and enforced by the equivalence
tests: for any design and override sequence, the objective values are
**bit-identical** to serial :func:`evaluate_power` /
:func:`evaluate_area` / :func:`evaluate_timing` calls under
:func:`~repro.core.estimator.scope_overrides`.  Sums are performed in
the same order over the same floats; memo hits return the exact float
computed earlier, which a replay would recompute identically.

Sweep targets may be dotted paths (``custom.luminance_chip.lut.bits``)
resolved by :func:`resolve_target` into the owning row scope, so sweeps
reach row-local parameters that top-page overrides cannot shadow.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from ..core.design import Design, Instance, SubDesign
from ..core.parameters import ParameterScope
from ..errors import DesignError, ExploreError, ModelError, PowerPlayError

#: read kinds recorded by the recorder / validated by the probe
_GET, _HAS, _MISS = 0, 1, 2

BUILTIN_OBJECTIVES = ("power", "area", "delay")


def resolve_target(design: Design, target: str) -> Tuple[ParameterScope, str]:
    """Resolve a sweep target into ``(scope, parameter name)``.

    A plain name addresses the design's global scope (like a top-page
    edit; the name may be new there, matching ``grid_search``).  A
    dotted path descends through sub-design rows to an instance row's
    local scope — there the final name must already be visible in the
    scope chain, catching typos before a 10k-point job starts.
    """
    parts = [part for part in target.split(".") if part]
    if not parts:
        raise ExploreError(f"empty sweep target {target!r}")
    if len(parts) == 1:
        return design.scope, parts[0]
    node: Design = design
    for depth, segment in enumerate(parts[:-1]):
        try:
            row = node.row(segment)
        except PowerPlayError:
            raise ExploreError(
                f"sweep target {target!r}: {'.'.join(parts[: depth + 1])!r}"
                f" names no row of design {node.name!r}"
            ) from None
        if isinstance(row, SubDesign):
            node = row.design
            continue
        if depth != len(parts) - 2:
            raise ExploreError(
                f"sweep target {target!r}: row {segment!r} is an instance;"
                " only one parameter segment may follow it"
            )
        name = parts[-1]
        if name not in row.scope:
            raise ExploreError(
                f"sweep target {target!r}: row {segment!r} resolves no "
                f"parameter {name!r}"
            )
        return row.scope, name
    name = parts[-1]
    if name not in node.scope:
        raise ExploreError(
            f"sweep target {target!r}: design {node.name!r} resolves no "
            f"parameter {name!r}"
        )
    return node.scope, name


class _Env(Mapping[str, float]):
    """Instance scope + inter-model extras — semantics of the
    estimator's ``_RowEnv``, reconstructed cheaply per point."""

    __slots__ = ("_scope", "_extras")

    def __init__(self, scope: ParameterScope, extras: Mapping[str, float]):
        self._scope = scope
        self._extras = extras

    def __getitem__(self, name: str) -> float:
        if name in self._extras:
            return self._extras[name]
        return self._scope[name]

    def __contains__(self, name: object) -> bool:
        return name in self._extras or name in self._scope

    def __iter__(self) -> Iterator[str]:
        yield from self._extras
        for name in self._scope.names():
            if name not in self._extras:
                yield name

    def __len__(self) -> int:
        return len(set(self._extras) | set(self._scope.names()))

    def __bool__(self) -> bool:
        # truth-testing must not fall back to __len__: expression
        # evaluation does ``env = env or {}`` on every call, and a
        # __len__ fallback would (a) walk the whole scope chain and
        # (b) look like non-replayable iteration to the recorder
        return True


class _Recorder(Mapping[str, float]):
    """Wraps an environment and records every read for later replay."""

    __slots__ = ("_env", "reads", "_seen", "unstable")

    def __init__(self, env: Mapping[str, float]):
        self._env = env
        self.reads: List[Tuple[str, int, Optional[float]]] = []
        self._seen: Dict[Tuple[str, int], bool] = {}
        self.unstable = False

    def _note(self, name: str, kind: int, value: Optional[float]) -> None:
        key = (name, kind)
        if key not in self._seen:
            self._seen[key] = True
            self.reads.append((name, kind, value))

    def __getitem__(self, name: str) -> float:
        try:
            value = self._env[name]
        except Exception:
            self._note(name, _MISS, None)
            raise
        self._note(name, _GET, value)
        return value

    def __contains__(self, name: object) -> bool:
        present = name in self._env
        if isinstance(name, str):
            self._note(name, _HAS, bool(present))
        return present

    def __iter__(self) -> Iterator[str]:
        self.unstable = True
        return iter(self._env)

    def __len__(self) -> int:
        self.unstable = True
        return len(self._env)

    def __bool__(self) -> bool:
        # replay-safe: every env wraps a design scope and is never
        # empty, and even for an empty one ``env or {}`` picks an
        # equivalently-behaving mapping either way
        return True


class _Memo:
    """One row's cached result for one objective kind."""

    __slots__ = ("reads", "result", "unstable")

    def __init__(self):
        self.reads: Optional[List[Tuple[str, int, Optional[float]]]] = None
        self.result: Optional[Tuple[float, ...]] = None
        self.unstable = False

    def matches(self, env: Mapping[str, float]) -> bool:
        if self.unstable or self.reads is None:
            return False
        for name, kind, expect in self.reads:
            if kind == _GET:
                try:
                    value = env[name]
                except Exception:
                    return False
                if value != expect:
                    return False
            elif kind == _HAS:
                if (name in env) != expect:
                    return False
            else:  # _MISS: the read raised last time; it must still raise
                try:
                    env[name]
                except Exception:
                    continue
                return False
        return True


class _CompiledRow:
    __slots__ = ("row", "power_memo", "area_memo", "timing_memo",
                 "needs_area_param")

    def __init__(self, row: Instance):
        self.row = row
        self.power_memo = _Memo()
        self.area_memo = _Memo()
        self.timing_memo = _Memo()
        #: does some sibling area-feed on this row? (computed at compile)
        self.needs_area_param = False


class _CompiledDesign:
    __slots__ = ("design", "order", "rows", "row_order")

    def __init__(self, design: Design):
        self.design = design
        #: evaluation order (feeds before consumers)
        self.order: List[str] = list(design.evaluation_order())
        #: row name -> _CompiledRow | _CompiledDesign
        self.rows: Dict[str, object] = {}
        #: summation order (presentation order, as the estimator sums)
        self.row_order: List[str] = list(design.row_names())
        fed_areas = set()
        for row in design:
            if isinstance(row, SubDesign):
                self.rows[row.name] = _CompiledDesign(row.design)
            else:
                self.rows[row.name] = _CompiledRow(row)
                fed_areas.update(row.area_feeds)
        for name in fed_areas:
            compiled = self.rows.get(name)
            if isinstance(compiled, _CompiledRow):
                compiled.needs_area_param = True


class BatchEvaluator:
    """Compile once, evaluate many points bit-identically to the
    estimator (see module docstring for the memoization contract)."""

    def __init__(self, design: Design, objectives: Tuple[str, ...] = ("power",)):
        for objective in objectives:
            if objective not in BUILTIN_OBJECTIVES:
                raise ExploreError(
                    f"unknown objective {objective!r}; built-ins are "
                    f"{BUILTIN_OBJECTIVES}"
                )
        if not objectives:
            raise ExploreError("need at least one objective")
        self.design = design
        self.objectives = tuple(objectives)
        self._compiled = _CompiledDesign(design)
        #: target string -> (scope, name), resolved lazily on first use
        self._targets: Dict[str, Tuple[ParameterScope, str]] = {}
        self.hits = 0
        self.misses = 0

    # -- overrides ---------------------------------------------------------

    def _bind(self, target: str) -> Tuple[ParameterScope, str]:
        bound = self._targets.get(target)
        if bound is None:
            bound = resolve_target(self.design, target)
            self._targets[target] = bound
        return bound

    def evaluate(self, overrides: Mapping[str, float]) -> Dict[str, float]:
        """Objective values at one point; design state restored after."""
        saved: List[Tuple[ParameterScope, str, bool, object]] = []
        try:
            for target, value in overrides.items():
                scope, name = self._bind(target)
                had = name in scope.local_names()
                saved.append(
                    (scope, name, had, scope.raw(name) if had else None)
                )
                scope.set(name, float(value))
            result: Dict[str, float] = {}
            for objective in self.objectives:
                if objective == "power":
                    result["power"] = self._power(self._compiled)[0]
                elif objective == "area":
                    result["area"] = self._area(self._compiled)
                else:
                    result["delay"] = self._timing(self._compiled)[0]
            return result
        finally:
            for scope, name, had, old in reversed(saved):
                if had:
                    scope._values[name] = old
                else:
                    scope.unset(name)

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}

    # -- the three passes --------------------------------------------------

    def _power(self, node: _CompiledDesign) -> Tuple[float, float]:
        """(total watts, the report's ``_area`` stand-in: 0.0) for a
        design node, mirroring ``_evaluate_design`` float-for-float."""
        computed: Dict[str, Tuple[float, float]] = {}
        for name in node.order:
            compiled = node.rows[name]
            if isinstance(compiled, _CompiledDesign):
                computed[name] = (self._power(compiled)[0], 0.0)
            else:
                computed[name] = self._power_row(compiled, computed)
        total = sum(computed[name][0] for name in node.row_order)
        return total, 0.0

    def _power_row(
        self,
        compiled: _CompiledRow,
        computed: Mapping[str, Tuple[float, float]],
    ) -> Tuple[float, float]:
        row = compiled.row
        extras: Dict[str, float] = {}
        if row.power_feeds:
            load = 0.0
            for feed in row.power_feeds:
                try:
                    feed_power = computed[feed][0]
                except KeyError:
                    raise DesignError(
                        f"row {row.name!r} feeds on unevaluated row {feed!r}"
                    ) from None
                extras[f"P.{feed}"] = feed_power
                load += feed_power
            extras["P_load"] = load
        if row.area_feeds:
            total_area = 0.0
            for feed in row.area_feeds:
                try:
                    feed_area = computed[feed][1]
                except KeyError:
                    raise DesignError(
                        f"row {row.name!r} area-feeds on unevaluated "
                        f"row {feed!r}"
                    ) from None
                extras[f"A.{feed}"] = feed_area
                total_area += feed_area
            extras["active_area"] = total_area
        env = _Env(row.scope, extras)
        memo = compiled.power_memo
        if memo.matches(env):
            self.hits += 1
            unit_power, area_param = memo.result
        else:
            self.misses += 1
            recorder = _Recorder(env)
            if row.measured_power is not None:
                unit_power = row.measured_power
            else:
                try:
                    unit_power = row.models.power.power(recorder)
                except ModelError as exc:
                    raise ModelError(f"row {row.name!r}: {exc}") from exc
            area_param = 0.0
            if compiled.needs_area_param and row.models.area is not None:
                try:
                    area_param = row.models.area.area(recorder) * row.quantity
                except ModelError:
                    area_param = 0.0
            if recorder.unstable:
                memo.unstable = True
                memo.reads = None
                memo.result = None
            else:
                memo.reads = recorder.reads
                memo.result = (unit_power, area_param)
        return unit_power * row.quantity, area_param

    def _area(self, node: _CompiledDesign) -> float:
        """Total active area, mirroring ``_evaluate_area``."""
        children: List[float] = []
        for name in node.row_order:
            compiled = node.rows[name]
            if isinstance(compiled, _CompiledDesign):
                children.append(self._area(compiled))
                continue
            row = compiled.row
            if row.models.area is None:
                children.append(0.0)
                continue
            env = _Env(row.scope, {})
            memo = compiled.area_memo
            if memo.matches(env):
                self.hits += 1
                children.append(memo.result[0])
                continue
            self.misses += 1
            recorder = _Recorder(env)
            value = row.models.area.area(recorder) * row.quantity
            if recorder.unstable:
                memo.unstable = True
            else:
                memo.reads = recorder.reads
                memo.result = (value,)
            children.append(value)
        return sum(children)

    def _timing(self, node: _CompiledDesign) -> Tuple[float, bool]:
        """(critical delay, modeled), mirroring ``_evaluate_timing``."""
        children: List[Tuple[float, bool]] = []
        for name in node.row_order:
            compiled = node.rows[name]
            if isinstance(compiled, _CompiledDesign):
                children.append(self._timing(compiled))
                continue
            row = compiled.row
            model = row.models.timing
            if model is None:
                children.append((0.0, False))
                continue
            env = _Env(row.scope, {})
            memo = compiled.timing_memo
            if memo.matches(env):
                self.hits += 1
                children.append((memo.result[0], True))
                continue
            self.misses += 1
            recorder = _Recorder(env)
            value = model.delay(recorder)
            if recorder.unstable:
                memo.unstable = True
            else:
                memo.reads = recorder.reads
                memo.result = (value,)
            children.append((value, True))
        modeled = [delay for delay, is_modeled in children if is_modeled]
        critical = max(modeled) if modeled else 0.0
        return critical, bool(modeled)
