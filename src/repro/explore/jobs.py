"""Crash-safe sweep jobs: submit, checkpoint, kill, resume.

A :class:`SweepJob` is the durable record of one exploration run —
the design (as a library payload, so a process that never saw the
original request can rebuild it), the parameter space, the requested
objectives, the engine settings, and every finished chunk's result
rows.  :class:`JobStore` persists each job as one JSON file using the
same mkstemp + fsync + atomic-rename discipline as the web session
store, so a ``kill -9`` at any instant leaves either the previous
complete checkpoint or the new complete checkpoint — never a torn one.

Resume is therefore trivial and *verifiable*: the engine replays only
the chunks missing from :attr:`SweepJob.chunks`, and because every
chunk's rows are a pure function of (design payload, space payload,
chunk range), the resumed job's exported results are byte-identical to
an uninterrupted run's.
"""

from __future__ import annotations

import json
import re
import threading
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.design import Design
from ..errors import JobError, PowerPlayError
from ..library.designio import design_from_payload, design_to_payload
from ..obs import get_logger, get_registry
from ..state import FileBackend, open_backend
from .space import DerivedObjective, ParameterSpace

_LOG = get_logger("jobs")

#: the sweep-job lifecycle; ``pending`` -> ``running`` -> one of the
#: three terminal states (``cancelled`` jobs keep their finished chunks
#: and may be resumed, which puts them back to ``running``)
JOB_STATES = ("pending", "running", "done", "failed", "cancelled")

_TERMINAL = frozenset({"done", "failed"})

# job ids become file names and URL query values — strictly boring,
# and \Z (not $) so "job-0001\n" cannot smuggle a newline through
_JOB_ID_RE = re.compile(r"^job-[0-9]{4,12}\Z")

_ENGINE_MODES = ("serial", "thread", "process")


def _metric_jobs():
    return get_registry().counter(
        "powerplay_explore_jobs_total",
        "Sweep-job store operations (create, save, load, quarantine).",
        ("op",),
    )


#: defaults for the surrogate engine's config dict
SURROGATE_DEFAULTS = {
    "train_frac": 0.01,
    "train_seed": 1996,
    "verify_top": 64,
    "max_error": 0.0,
    "basis": "auto",
}


def coerce_surrogate(config: Mapping) -> dict:
    """Normalize a surrogate config dict (unknown keys rejected, known
    keys type-coerced) so checkpoints round-trip canonically."""
    out = dict(SURROGATE_DEFAULTS)
    for key, value in dict(config).items():
        if key not in SURROGATE_DEFAULTS:
            raise JobError(f"unknown surrogate config key {key!r}")
        out[key] = value
    try:
        out["train_frac"] = float(out["train_frac"])
        out["train_seed"] = int(out["train_seed"])
        out["verify_top"] = int(out["verify_top"])
        out["max_error"] = float(out["max_error"])
        out["basis"] = str(out["basis"])
    except (TypeError, ValueError) as exc:
        raise JobError(f"bad surrogate config: {exc}") from exc
    if not 0.0 < out["train_frac"] <= 1.0:
        raise JobError(
            f"surrogate train fraction must be in (0, 1], got "
            f"{out['train_frac']!r}"
        )
    if out["verify_top"] < 0:
        raise JobError(
            f"surrogate verify budget must be >= 0, got "
            f"{out['verify_top']}"
        )
    return out


def validate_job_id(job_id: str) -> str:
    """Job ids become file names — reject anything surprising."""
    if not isinstance(job_id, str) or not _JOB_ID_RE.match(job_id):
        raise JobError(
            f"invalid job id {job_id!r}: expected job-NNNN"
        )
    return job_id


class SweepJob:
    """One exploration run and everything needed to (re)execute it."""

    def __init__(
        self,
        job_id: str,
        owner: str,
        design: Design,
        space: ParameterSpace,
        objectives: Sequence[str] = ("power",),
        derived: Sequence[DerivedObjective] = (),
        workers: int = 1,
        mode: str = "serial",
        chunk_size: int = 64,
        prune: bool = False,
        surrogate: Optional[Mapping] = None,
    ):
        self.job_id = validate_job_id(job_id)
        self.owner = str(owner)
        self.design_name = design.name
        self.design_payload = design_to_payload(design)
        self.space = space
        self.objectives: Tuple[str, ...] = tuple(objectives)
        self.derived: Tuple[DerivedObjective, ...] = tuple(derived)
        self.workers = max(1, int(workers))
        if mode not in _ENGINE_MODES:
            raise JobError(
                f"unknown engine mode {mode!r}; choose from {_ENGINE_MODES}"
            )
        self.mode = mode
        self.chunk_size = max(1, int(chunk_size))
        self.prune = bool(prune)
        #: ``None`` = exhaustive exact sweep; a config dict switches the
        #: job to the fit-predict-verify surrogate engine
        self.surrogate = (
            None if surrogate is None else coerce_surrogate(surrogate)
        )
        #: surrogate phase checkpoints — ``train``/``verify`` hold
        #: ``{"chunks": {ordinal: {...}}}``, ``plan`` holds the fitted
        #: surrogates + predicted front (see repro.surrogate.runner)
        self.phases: Dict[str, dict] = {}
        self.state = "pending"
        self.error = ""
        self.cancel_requested = False
        #: chunk start index -> {"start", "stop", "rows", "seconds"}
        self.chunks: Dict[int, dict] = {}
        #: serializes state transitions and checkpoint writes for this
        #: job across the web runner thread and CLI resume
        self.lock = threading.RLock()
        self._store: Optional["JobStore"] = None

    # -- derived views -----------------------------------------------------

    def design(self) -> Design:
        """Rebuild the swept design from its stored payload.

        A fresh instance every call: evaluator workers mutate design
        scopes while running, so sharing one instance across workers
        (or with the owner's live session copy) would race.
        """
        return design_from_payload(self.design_payload)

    @property
    def total_points(self) -> int:
        return len(self.space)

    @property
    def done_points(self) -> int:
        """Exactly-evaluated points so far (phase rows included)."""
        done = sum(len(chunk["rows"]) for chunk in self.chunks.values())
        for phase in self.phases.values():
            for chunk in phase.get("chunks", {}).values():
                done += len(chunk["rows"])
        return done

    @property
    def objective_names(self) -> List[str]:
        """Built-in objectives then derived ones, in declaration order."""
        return list(self.objectives) + [d.name for d in self.derived]

    def pending_chunks(self) -> List[Tuple[int, int]]:
        """The ``[start, stop)`` ranges not yet checkpointed."""
        return [
            (start, stop)
            for start, stop in self.space.chunks(self.chunk_size)
            if start not in self.chunks
        ]

    def result_rows(self) -> List[dict]:
        """All checkpointed rows in point order (raises if incomplete).

        For surrogate jobs this assembles the exact + predicted row set
        from the phase checkpoints instead of the chunk walk.
        """
        if self.surrogate is not None:
            from ..surrogate.runner import surrogate_result_rows

            return surrogate_result_rows(self)
        if self.pending_chunks():
            raise JobError(
                f"job {self.job_id!r} is incomplete: "
                f"{self.done_points}/{self.total_points} points"
            )
        rows: List[dict] = []
        for start in sorted(self.chunks):
            rows.extend(self.chunks[start]["rows"])
        return rows

    # -- surrogate phases --------------------------------------------------

    def phase_chunks(self, phase: str) -> Dict[int, dict]:
        """Checkpointed chunks of one surrogate phase, by ordinal."""
        return {
            int(ordinal): chunk
            for ordinal, chunk in self.phases.get(phase, {}).get(
                "chunks", {}
            ).items()
        }

    def phase_rows(self, phase: str) -> Dict[int, dict]:
        """Point index -> exact result row for one surrogate phase."""
        rows: Dict[int, dict] = {}
        chunks = self.phase_chunks(phase)
        for ordinal in sorted(chunks):
            for row in chunks[ordinal]["rows"]:
                rows[int(row["index"])] = row
        return rows

    def record_phase_chunk(
        self, phase: str, ordinal: int, indices: Sequence[int],
        rows: List[dict], seconds: float,
    ) -> None:
        with self.lock:
            slot = self.phases.setdefault(phase, {})
            slot.setdefault("chunks", {})[int(ordinal)] = {
                "ordinal": int(ordinal),
                "indices": [int(i) for i in indices],
                "rows": rows,
                "seconds": float(seconds),
            }
            self.save()

    def phase_data(self, phase: str) -> Optional[dict]:
        """The non-chunk payload of one phase (the ``plan``)."""
        return self.phases.get(phase, {}).get("data")

    def set_phase_data(self, phase: str, data: Mapping) -> None:
        with self.lock:
            self.phases.setdefault(phase, {})["data"] = dict(data)
            self.save()

    # -- state transitions -------------------------------------------------

    def record_chunk(self, start: int, stop: int, rows: List[dict],
                     seconds: float) -> None:
        with self.lock:
            self.chunks[int(start)] = {
                "start": int(start),
                "stop": int(stop),
                "rows": rows,
                "seconds": float(seconds),
            }
            self.save()

    def set_state(self, state: str, error: str = "") -> None:
        if state not in JOB_STATES:
            raise JobError(f"unknown job state {state!r}")
        with self.lock:
            if self.state in _TERMINAL and state == "running":
                raise JobError(
                    f"job {self.job_id!r} is {self.state}; only a "
                    "cancelled or interrupted job can be resumed"
                )
            self.state = state
            self.error = str(error)
            if state == "running":
                self.cancel_requested = False
            self.save()

    def request_cancel(self) -> None:
        with self.lock:
            if self.state in _TERMINAL:
                raise JobError(
                    f"job {self.job_id!r} already finished ({self.state})"
                )
            self.cancel_requested = True
            self.save()

    def save(self) -> None:
        if self._store is not None:
            with self.lock:
                self._store.save_job(self)

    # -- persistence -------------------------------------------------------

    def to_payload(self) -> dict:
        payload: Dict[str, object] = {
            "format": "powerplay-job/1",
            "job_id": self.job_id,
            "owner": self.owner,
            "design_name": self.design_name,
            "design": self.design_payload,
            "space": self.space.to_payload(),
            "objectives": list(self.objectives),
            "derived": [d.to_payload() for d in self.derived],
            "workers": self.workers,
            "mode": self.mode,
            "chunk_size": self.chunk_size,
            "prune": self.prune,
            "state": self.state,
            "error": self.error,
            "cancel_requested": self.cancel_requested,
            "chunks": {
                str(start): chunk
                for start, chunk in sorted(self.chunks.items())
            },
        }
        if self.surrogate is not None:
            payload["surrogate"] = dict(self.surrogate)
            payload["phases"] = {
                phase: {
                    key: (
                        {str(o): c for o, c in sorted(value.items())}
                        if key == "chunks" else value
                    )
                    for key, value in slot.items()
                }
                for phase, slot in sorted(self.phases.items())
            }
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping) -> "SweepJob":
        if payload.get("format") != "powerplay-job/1":
            raise JobError(
                f"corrupt job payload: format {payload.get('format')!r}"
            )
        try:
            job = cls.__new__(cls)
            job.job_id = validate_job_id(str(payload["job_id"]))
            job.owner = str(payload.get("owner", ""))
            job.design_name = str(payload["design_name"])
            job.design_payload = dict(payload["design"])
            job.space = ParameterSpace.from_payload(payload["space"])
            job.objectives = tuple(
                str(o) for o in payload.get("objectives", ("power",))
            )
            job.derived = tuple(
                DerivedObjective.from_payload(d)
                for d in payload.get("derived", [])
            )
            job.workers = max(1, int(payload.get("workers", 1)))
            mode = str(payload.get("mode", "serial"))
            if mode not in _ENGINE_MODES:
                raise JobError(f"corrupt job payload: mode {mode!r}")
            job.mode = mode
            job.chunk_size = max(1, int(payload.get("chunk_size", 64)))
            job.prune = bool(payload.get("prune", False))
            surrogate = payload.get("surrogate")
            job.surrogate = (
                None if surrogate is None else coerce_surrogate(surrogate)
            )
            job.phases = {}
            for phase, slot in payload.get("phases", {}).items():
                restored: dict = {}
                for key, value in slot.items():
                    if key == "chunks":
                        restored["chunks"] = {
                            int(ordinal): {
                                "ordinal": int(chunk["ordinal"]),
                                "indices": [
                                    int(i) for i in chunk["indices"]
                                ],
                                "rows": list(chunk["rows"]),
                                "seconds": float(
                                    chunk.get("seconds", 0.0)
                                ),
                            }
                            for ordinal, chunk in value.items()
                        }
                    else:
                        restored[key] = value
                job.phases[str(phase)] = restored
            state = str(payload.get("state", "pending"))
            if state not in JOB_STATES:
                raise JobError(f"corrupt job payload: state {state!r}")
            job.state = state
            job.error = str(payload.get("error", ""))
            job.cancel_requested = bool(payload.get("cancel_requested", False))
            job.chunks = {}
            for key, chunk in payload.get("chunks", {}).items():
                start = int(key)
                job.chunks[start] = {
                    "start": int(chunk["start"]),
                    "stop": int(chunk["stop"]),
                    "rows": list(chunk["rows"]),
                    "seconds": float(chunk.get("seconds", 0.0)),
                }
            job.lock = threading.RLock()
            job._store = None
            return job
        except JobError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise JobError(f"corrupt job payload: {exc}") from exc

    def summary(self) -> dict:
        """One row for job listings (CLI ``repro jobs``, ``/status``)."""
        return {
            "job_id": self.job_id,
            "owner": self.owner,
            "design": self.design_name,
            "state": self.state,
            "points": self.total_points,
            "done": self.done_points,
            "objectives": ",".join(self.objective_names),
            "surrogate": self.surrogate is not None,
            "error": self.error,
        }


class JobStore:
    """Backend-backed job registry: one JSON checkpoint per job.

    Mirrors :class:`repro.web.session.UserStore`'s durability story,
    now delegated to a :class:`~repro.state.backend.StateBackend`
    (namespace ``"jobs"``): atomic fsynced saves, and quarantine
    (file: ``.json.corrupt[-N]``; SQLite: a quarantine table) for
    checkpoints that are unreadable anyway — the server keeps running
    and the damaged bytes stay preserved for inspection.

    ``worker_index``/``worker_count`` stride id allocation so the
    pre-fork front's workers, sharing one backend, can never both mint
    ``job-NNNN``: worker *i* of *W* only allocates ids with
    ``NNNN % W == i``.
    """

    NAMESPACE = "jobs"

    def __init__(
        self,
        root: Path,
        backend=None,
        worker_index: Optional[int] = None,
        worker_count: int = 1,
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        if backend is None:
            # standalone store: the historical layout rooted itself at
            # the jobs directory, not a parent state directory
            backend = FileBackend(self.root, layout={self.NAMESPACE: "."})
        self.backend = open_backend(backend, self.root)
        self.worker_index = worker_index
        self.worker_count = max(1, int(worker_count))
        self._jobs: Dict[str, SweepJob] = {}
        self._lock = threading.Lock()
        #: ``[(job_id, quarantine location, reason), ...]``
        self.quarantined: List[tuple] = []

    def job_ids(self) -> List[str]:
        """Every job id present on disk or in memory, sorted."""
        ids = {
            key
            for key in self.backend.keys(self.NAMESPACE)
            if _JOB_ID_RE.match(key)
        }
        ids.update(self._jobs)
        return sorted(ids)

    def _next_id(self) -> str:
        highest = 0
        for job_id in self.job_ids():
            highest = max(highest, int(job_id.split("-", 1)[1]))
        number = highest + 1
        if self.worker_index is not None and self.worker_count > 1:
            # stride onto this worker's residue class so concurrent
            # workers sharing the backend never mint the same id
            number += (self.worker_index - number) % self.worker_count
        return f"job-{number:04d}"

    def create(
        self,
        design: Design,
        space: ParameterSpace,
        objectives: Sequence[str] = ("power",),
        derived: Sequence[DerivedObjective] = (),
        owner: str = "",
        workers: int = 1,
        mode: str = "serial",
        chunk_size: int = 64,
        prune: bool = False,
        surrogate: Optional[Mapping] = None,
    ) -> SweepJob:
        """Allocate an id, build the job, persist it as ``pending``."""
        with self._lock:
            job = SweepJob(
                self._next_id(),
                owner,
                design,
                space,
                objectives=objectives,
                derived=derived,
                workers=workers,
                mode=mode,
                chunk_size=chunk_size,
                prune=prune,
                surrogate=surrogate,
            )
            job._store = self
            self._jobs[job.job_id] = job
        job.save()
        _metric_jobs().inc(op="create")
        _LOG.info(
            "create", job=job.job_id, design=job.design_name,
            points=job.total_points, owner=job.owner,
        )
        return job

    def _quarantine(self, job_id: str, reason: str) -> Path:
        target = Path(self.backend.quarantine(self.NAMESPACE, job_id, reason))
        self.quarantined.append((job_id, target, reason))
        _metric_jobs().inc(op="quarantine")
        _LOG.warning(
            "quarantine", job=job_id, moved_to=str(target), reason=reason
        )
        return target

    def job(self, job_id: str) -> SweepJob:
        """Fetch a job, loading its checkpoint from disk if needed."""
        job_id = validate_job_id(job_id)
        with self._lock:
            job = self._jobs.get(job_id)
            if job is not None:
                return job
            text = self.backend.load(self.NAMESPACE, job_id)
            if text is None:
                raise JobError(f"no job {job_id!r}")
            try:
                payload = json.loads(text)
                job = SweepJob.from_payload(payload)
            except (json.JSONDecodeError, PowerPlayError, ValueError,
                    TypeError, KeyError, AttributeError) as exc:
                target = self._quarantine(job_id, str(exc))
                raise JobError(
                    f"job {job_id!r} checkpoint is corrupt "
                    f"(quarantined to {target.name}): {exc}"
                ) from exc
            job._store = self
            self._jobs[job_id] = job
            _metric_jobs().inc(op="load")
            return job

    def list_jobs(self) -> List[SweepJob]:
        """All readable jobs, sorted by id (corrupt ones quarantined)."""
        jobs: List[SweepJob] = []
        for job_id in self.job_ids():
            try:
                jobs.append(self.job(job_id))
            except JobError:
                continue
        return jobs

    def save_job(self, job: SweepJob) -> None:
        """Atomically persist one job's checkpoint (crash-safe)."""
        payload = json.dumps(job.to_payload(), indent=1, sort_keys=True)
        with self.backend.lock(self.NAMESPACE, job.job_id):
            self.backend.save(self.NAMESPACE, job.job_id, payload)
        _metric_jobs().inc(op="save")

    def forget(self, job_id: str) -> None:
        """Drop the in-memory copy (checkpoint file remains)."""
        with self._lock:
            self._jobs.pop(job_id, None)
