"""Declarative parameter spaces: what a sweep job sweeps.

A :class:`ParameterSpace` is a list of :class:`Axis` objects (grid of
explicit values, linear range, or logarithmic range), optional
**coupled parameters** (targets driven by an expression over the axis
values — e.g. one ``bw`` axis feeding the read *and* write bank bit
widths), and optional **derived objectives** (expressions over axis
values and built-in objectives, e.g. an alpha-power-law access-time for
the power/speed Pareto trade-off).

Enumeration is deterministic: axes vary row-major in declaration order
(last axis fastest), ``point(i)`` is pure, and the whole space
serializes to a JSON payload so a checkpointed job can be resumed by a
process that never saw the original request.

An axis ``target`` may be a dotted path into the design hierarchy
(``custom_hardware.luminance_chip.read_bank.bits``) so sweeps reach
row-local parameters, not just top-page globals; resolution happens in
:func:`repro.explore.batcheval.resolve_target`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..core.expressions import Expression, compile_expression
from ..errors import ExploreError

#: hard ceiling a caller-supplied cap cannot exceed — a sweep bigger
#: than this belongs on more than one job
ABSOLUTE_POINT_CAP = 1_000_000

#: the ceiling for **lazy** spaces (``lazy=True``): enumeration that is
#: never materialized row-by-row — the surrogate engine predicts most
#: points from a fitted model and only ever exact-evaluates a sampled
#: subset, so it may enumerate far past the exact-sweep cap
LAZY_POINT_CAP = 16_777_216

DEFAULT_POINT_CAP = 100_000


def _finite(value: float, what: str) -> float:
    value = float(value)
    if not math.isfinite(value):
        raise ExploreError(f"{what} must be finite, got {value!r}")
    return value


@dataclass(frozen=True)
class Axis:
    """One swept dimension: a name and its ordered value list.

    ``target`` is the design parameter the values are written to; it
    defaults to the axis name.  Values are stored explicitly (ranges
    are expanded at construction) so enumeration is trivially
    deterministic and the payload round-trips exactly.
    """

    name: str
    values: Tuple[float, ...]
    target: str = ""

    def __post_init__(self):
        if not self.name or not self.name.replace("_", "a").replace(
            ".", "a"
        ).isalnum():
            raise ExploreError(f"bad axis name {self.name!r}")
        if not self.values:
            raise ExploreError(f"axis {self.name!r} has no values")
        object.__setattr__(
            self, "values", tuple(_finite(v, f"axis {self.name!r} value")
                                  for v in self.values)
        )
        if not self.target:
            object.__setattr__(self, "target", self.name)

    def __len__(self) -> int:
        return len(self.values)

    @classmethod
    def linear(cls, name: str, start: float, stop: float, step: float,
               target: str = "") -> "Axis":
        """``start:stop:step`` inclusive of ``stop`` (within tolerance)."""
        start = _finite(start, f"axis {name!r} start")
        stop = _finite(stop, f"axis {name!r} stop")
        step = _finite(step, f"axis {name!r} step")
        if step == 0:
            raise ExploreError(f"axis {name!r}: step must be non-zero")
        if (stop - start) * step < 0:
            raise ExploreError(
                f"axis {name!r}: step {step:g} walks away from "
                f"stop {stop:g}"
            )
        count = int(math.floor((stop - start) / step + 1e-9)) + 1
        if count > ABSOLUTE_POINT_CAP:
            raise ExploreError(
                f"axis {name!r}: {count} values from {start:g}:{stop:g}:"
                f"{step:g} is over the absolute cap {ABSOLUTE_POINT_CAP}"
            )
        return cls(name, tuple(start + i * step for i in range(count)),
                   target=target)

    @classmethod
    def logarithmic(cls, name: str, start: float, stop: float, count: int,
                    target: str = "") -> "Axis":
        """``count`` log-spaced values from ``start`` to ``stop``."""
        start = _finite(start, f"axis {name!r} start")
        stop = _finite(stop, f"axis {name!r} stop")
        if start <= 0 or stop <= 0:
            raise ExploreError(
                f"axis {name!r}: log range needs positive endpoints"
            )
        count = int(count)
        if count < 2:
            raise ExploreError(f"axis {name!r}: log range needs count >= 2")
        ratio = math.log(stop / start) / (count - 1)
        return cls(
            name,
            tuple(start * math.exp(i * ratio) for i in range(count)),
            target=target,
        )

    def to_payload(self) -> dict:
        return {
            "name": self.name,
            "target": self.target,
            "values": list(self.values),
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "Axis":
        try:
            return cls(
                str(payload["name"]),
                tuple(float(v) for v in payload["values"]),
                target=str(payload.get("target", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ExploreError(f"corrupt axis payload: {exc}") from exc


def parse_axis_spec(spec: str) -> Axis:
    """Parse the CLI/web axis syntax into an :class:`Axis`.

    Accepted forms (``target=`` is optional everywhere; it defaults to
    the axis name)::

        VDD2=1.1:3.3:0.1            linear range, inclusive stop
        bw=8,12,16                  explicit values
        f=log:1e6:1e9:7             7 log-spaced points
        bw@a.b.bits=8,12,16         axis 'bw' writing target 'a.b.bits'
    """
    if "=" not in spec:
        raise ExploreError(
            f"axis spec {spec!r} must look like name=start:stop:step, "
            "name=v1,v2,... or name=log:start:stop:count"
        )
    head, _, body = spec.partition("=")
    head = head.strip()
    body = body.strip()
    name, _, target = head.partition("@")
    name = name.strip()
    target = target.strip()
    if not body:
        raise ExploreError(f"axis {name!r}: empty value spec")

    def _num(text: str, what: str) -> float:
        try:
            return float(text)
        except ValueError:
            raise ExploreError(
                f"axis {name!r}: {what} {text!r} is not a number"
            ) from None

    if body.startswith("log:"):
        parts = body.split(":")
        if len(parts) != 4:
            raise ExploreError(
                f"axis {name!r}: log spec needs log:start:stop:count"
            )
        count_text = parts[3]
        try:
            count = int(count_text)
        except ValueError:
            raise ExploreError(
                f"axis {name!r}: log count {count_text!r} is not an integer"
            ) from None
        return Axis.logarithmic(
            name, _num(parts[1], "start"), _num(parts[2], "stop"),
            count, target=target,
        )
    if "," in body:
        values = tuple(
            _num(part.strip(), "value")
            for part in body.split(",")
            if part.strip()
        )
        return Axis(name, values, target=target)
    if ":" in body:
        parts = body.split(":")
        if len(parts) != 3:
            raise ExploreError(
                f"axis {name!r}: range spec needs start:stop:step"
            )
        return Axis.linear(
            name, _num(parts[0], "start"), _num(parts[1], "stop"),
            _num(parts[2], "step"), target=target,
        )
    return Axis(name, (_num(body, "value"),), target=target)


@dataclass(frozen=True)
class CoupledParam:
    """A design parameter driven by an expression over the axis values.

    ``write_bits = "bw"`` makes one declared ``bw`` axis feed several
    physical parameters; any expression over axis names is allowed
    (``"bw / 2"``, ``"if(bw > 12, 2, 1)"``).
    """

    target: str
    source: str
    expression: Expression = field(compare=False, repr=False, default=None)

    def __post_init__(self):
        if not self.target:
            raise ExploreError("coupled parameter needs a target")
        try:
            object.__setattr__(
                self, "expression", compile_expression(self.source)
            )
        except Exception as exc:
            raise ExploreError(
                f"coupled parameter {self.target!r}: bad expression "
                f"{self.source!r}: {exc}"
            ) from exc

    def value(self, axis_values: Mapping[str, float]) -> float:
        try:
            return float(self.expression.evaluate(dict(axis_values)))
        except Exception as exc:
            raise ExploreError(
                f"coupled parameter {self.target!r} = {self.source!r} "
                f"failed: {exc}"
            ) from exc

    def to_payload(self) -> dict:
        return {"target": self.target, "source": self.source}

    @classmethod
    def from_payload(cls, payload: Mapping) -> "CoupledParam":
        try:
            return cls(str(payload["target"]), str(payload["source"]))
        except (KeyError, TypeError) as exc:
            raise ExploreError(f"corrupt coupled payload: {exc}") from exc


def coupled_from_spec(spec: str) -> CoupledParam:
    """Parse ``target=expression`` into a :class:`CoupledParam`."""
    if "=" not in spec:
        raise ExploreError(
            f"coupled spec {spec!r} must look like target=expression"
        )
    target, _, source = spec.partition("=")
    return CoupledParam(target.strip(), source.strip())


@dataclass(frozen=True)
class DerivedObjective:
    """An objective computed from axis values and built-in objectives.

    The expression sees every axis (by name), every coupled value (by
    target), and the built-in objectives already computed for the point
    (``power``, and ``area`` / ``delay`` when requested) — e.g.
    ``access_time = "t0 * (VDD2 / 1.5) / ((VDD2 - 0.7) ^ 1.3)"``.
    """

    name: str
    source: str
    expression: Expression = field(compare=False, repr=False, default=None)

    def __post_init__(self):
        if not self.name or not self.name.replace("_", "a").isalnum():
            raise ExploreError(f"bad objective name {self.name!r}")
        try:
            object.__setattr__(
                self, "expression", compile_expression(self.source)
            )
        except Exception as exc:
            raise ExploreError(
                f"objective {self.name!r}: bad expression "
                f"{self.source!r}: {exc}"
            ) from exc

    def value(self, env: Mapping[str, float]) -> float:
        try:
            return float(self.expression.evaluate(dict(env)))
        except Exception as exc:
            raise ExploreError(
                f"objective {self.name!r} = {self.source!r} failed: {exc}"
            ) from exc

    def to_payload(self) -> dict:
        return {"name": self.name, "source": self.source}

    @classmethod
    def from_payload(cls, payload: Mapping) -> "DerivedObjective":
        try:
            return cls(str(payload["name"]), str(payload["source"]))
        except (KeyError, TypeError) as exc:
            raise ExploreError(f"corrupt objective payload: {exc}") from exc


class ParameterSpace:
    """The full sweep specification: axes x coupling, capped.

    >>> space = ParameterSpace([Axis("VDD", (1.1, 1.5)), Axis("bw", (8, 16))])
    >>> len(space)
    4
    >>> space.point(1)["values"]
    {'VDD': 1.1, 'bw': 16.0}
    """

    def __init__(
        self,
        axes: Sequence[Axis],
        coupled: Sequence[CoupledParam] = (),
        point_cap: int = DEFAULT_POINT_CAP,
        lazy: bool = False,
    ):
        if not axes:
            raise ExploreError("a parameter space needs at least one axis")
        names = [axis.name for axis in axes]
        if len(set(names)) != len(names):
            raise ExploreError(f"duplicate axis names in {names}")
        targets = [axis.target for axis in axes] + [
            c.target for c in coupled
        ]
        if len(set(targets)) != len(targets):
            raise ExploreError(f"duplicate sweep targets in {targets}")
        if point_cap < 1:
            raise ExploreError(f"point cap must be >= 1, got {point_cap}")
        # surrogate runs enumerate lazily (predicted, never materialized
        # row-by-row), so they may raise the ceiling — exact sweeps stay
        # bounded by ABSOLUTE_POINT_CAP
        ceiling = LAZY_POINT_CAP if lazy else ABSOLUTE_POINT_CAP
        point_cap = min(int(point_cap), ceiling)
        self.axes: Tuple[Axis, ...] = tuple(axes)
        self.coupled: Tuple[CoupledParam, ...] = tuple(coupled)
        self.point_cap = point_cap
        self.lazy = bool(lazy)
        total = 1
        for axis in self.axes:
            total *= len(axis)
            if total > point_cap:
                raise ExploreError(
                    f"space has at least {total} points, over the cap of "
                    f"{point_cap}; shrink an axis or raise --max-points "
                    "(surrogate sweeps may enumerate lazily past the "
                    "exact-sweep ceiling)"
                )
        self._total = total

    def __len__(self) -> int:
        return self._total

    @property
    def axis_names(self) -> List[str]:
        return [axis.name for axis in self.axes]

    def axis_values(self, index: int) -> Dict[str, float]:
        """Axis name -> value for point ``index`` (row-major order)."""
        if not 0 <= index < self._total:
            raise ExploreError(
                f"point index {index} out of range 0..{self._total - 1}"
            )
        values: Dict[str, float] = {}
        remainder = index
        for axis in reversed(self.axes):
            remainder, position = divmod(remainder, len(axis))
            values[axis.name] = axis.values[position]
        return {axis.name: values[axis.name] for axis in self.axes}

    def point(self, index: int) -> Dict[str, object]:
        """Everything about point ``index``: axis values and the full
        target -> value override map (coupling applied)."""
        values = self.axis_values(index)
        overrides: Dict[str, float] = {}
        for axis in self.axes:
            overrides[axis.target] = values[axis.name]
        for couple in self.coupled:
            overrides[couple.target] = couple.value(values)
        return {"index": index, "values": values, "overrides": overrides}

    def iter_points(self) -> Iterator[Dict[str, object]]:
        for index in range(self._total):
            yield self.point(index)

    def chunks(self, chunk_size: int) -> List[Tuple[int, int]]:
        """Shard the space into ``[start, stop)`` index ranges."""
        if chunk_size < 1:
            raise ExploreError(f"chunk size must be >= 1, got {chunk_size}")
        return [
            (start, min(start + chunk_size, self._total))
            for start in range(0, self._total, chunk_size)
        ]

    # -- persistence -------------------------------------------------------

    def to_payload(self) -> dict:
        payload = {
            "format": "powerplay-space/1",
            "axes": [axis.to_payload() for axis in self.axes],
            "coupled": [couple.to_payload() for couple in self.coupled],
            "point_cap": self.point_cap,
        }
        if self.lazy:
            payload["lazy"] = True
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping) -> "ParameterSpace":
        if payload.get("format") != "powerplay-space/1":
            raise ExploreError(
                f"corrupt space payload: format {payload.get('format')!r}"
            )
        return cls(
            [Axis.from_payload(a) for a in payload.get("axes", [])],
            [CoupledParam.from_payload(c) for c in payload.get("coupled", [])],
            point_cap=int(payload.get("point_cap", DEFAULT_POINT_CAP)),
            lazy=bool(payload.get("lazy", False)),
        )

    def __repr__(self) -> str:
        shape = "x".join(str(len(axis)) for axis in self.axes)
        return (
            f"ParameterSpace({', '.join(self.axis_names)}: {shape} = "
            f"{self._total} points)"
        )
