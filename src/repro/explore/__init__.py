"""Design-space exploration as a managed subsystem.

The paper's methodology *is* exploration — "parameters such as
bit-widths and supply voltages can be varied dynamically" — but a
spreadsheet only varies one hand-edited cell at a time.  This package
turns the one-shot what-if into **sweep jobs**: declarative parameter
spaces (:mod:`repro.explore.space`), a worker-pool batch evaluator with
row-level memoization (:mod:`repro.explore.engine`), crash-safe
checkpointed job persistence (:mod:`repro.explore.jobs`), and Pareto /
sensitivity analysis over the results (:mod:`repro.explore.results`).

The whole pipeline is deterministic: the same design and space yield
bit-identical objective values and byte-identical exports, whether the
sweep ran serially, on eight workers, or was killed half-way and
resumed from its checkpoint.
"""

from .batcheval import BatchEvaluator, resolve_target
from .engine import (
    EngineReport,
    SweepOutcome,
    run_chunks,
    run_sweep,
)
from .jobs import (
    JOB_STATES,
    SURROGATE_DEFAULTS,
    JobStore,
    SweepJob,
    coerce_surrogate,
    validate_job_id,
)
from .results import (
    export_csv,
    export_json,
    pareto_rows,
    sensitivity_ranking,
)
from .space import (
    Axis,
    DerivedObjective,
    ParameterSpace,
    coupled_from_spec,
    parse_axis_spec,
)

__all__ = [
    "Axis",
    "BatchEvaluator",
    "DerivedObjective",
    "EngineReport",
    "JOB_STATES",
    "JobStore",
    "ParameterSpace",
    "SURROGATE_DEFAULTS",
    "SweepJob",
    "SweepOutcome",
    "coerce_surrogate",
    "coupled_from_spec",
    "export_csv",
    "export_json",
    "pareto_rows",
    "parse_axis_spec",
    "resolve_target",
    "run_chunks",
    "run_sweep",
    "sensitivity_ranking",
    "validate_job_id",
]
