"""Analysis and export of sweep results.

Everything here is a pure, deterministic function of the result rows —
the contract that makes checkpoint/resume verifiable: a resumed job and
an uninterrupted job hand the same rows to these functions and export
**byte-identical** CSV/JSON.

A result *row* is the engine's serializable point record::

    {"index": 3, "values": {"VDD2": 1.2, "bw": 12.0},
     "overrides": {...}, "objectives": {"power": ..., "delay": ...},
     "error": ""}
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ExploreError


def _objective_vector(
    row: Mapping, objectives: Sequence[str]
) -> Optional[Tuple[float, ...]]:
    """The row's objective tuple, or ``None`` for failed rows and rows
    carrying a non-finite objective.

    Surrogate-predicted rows can legitimately hold NaN/inf (an
    extrapolating basis, a log of a non-positive value); a NaN must
    never reach dominance comparison — NaN compares false against
    everything and would silently survive onto the frontier — so
    such rows are dropped, and callers can count them via the
    ``stats`` out-param on :func:`pareto_rows`.
    """
    if row.get("error"):
        return None
    values = row.get("objectives", {})
    try:
        vector = tuple(float(values[name]) for name in objectives)
    except KeyError as exc:
        raise ExploreError(
            f"row {row.get('index')} is missing objective {exc}"
        ) from None
    for value in vector:
        if not math.isfinite(value):
            return None
    return vector


def _dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when ``a`` is no worse on every axis and better on one
    (all objectives minimized)."""
    no_worse = all(x <= y for x, y in zip(a, b))
    return no_worse and any(x < y for x, y in zip(a, b))


def pareto_rows(
    rows: Sequence[Mapping],
    objectives: Sequence[str],
    stats: Optional[Dict[str, int]] = None,
) -> List[Mapping]:
    """Non-dominated rows over N minimized objectives.

    Failed rows (non-empty ``error``) and rows with any non-finite
    objective never make the front; pass a dict as ``stats`` to get
    ``{"dropped_failed": n, "dropped_non_finite": m}`` back.  Ties on
    the full objective vector all survive (they dominate nobody and
    nobody dominates them), matching the designer's expectation that
    equivalent configurations stay visible.  Output preserves point
    order.
    """
    if not objectives:
        raise ExploreError("pareto_rows needs at least one objective")
    dropped_failed = 0
    dropped_non_finite = 0
    scored = []
    for row in rows:
        vector = _objective_vector(row, objectives)
        if vector is None:
            if row.get("error"):
                dropped_failed += 1
            else:
                dropped_non_finite += 1
            continue
        scored.append((row, vector))
    if stats is not None:
        stats["dropped_failed"] = dropped_failed
        stats["dropped_non_finite"] = dropped_non_finite
    # sort by objective vector: a dominator always sorts before its
    # victims lexicographically, so one pass against the running front
    # suffices
    scored.sort(key=lambda item: item[1])
    front: List[Tuple[Mapping, Tuple[float, ...]]] = []
    for row, vector in scored:
        if any(_dominates(kept, vector) for _, kept in front):
            continue
        front.append((row, vector))
    kept_indexes = {id(row) for row, _ in front}
    return [row for row in rows if id(row) in kept_indexes]


def sensitivity_ranking(
    rows: Sequence[Mapping],
    axis_names: Sequence[str],
    objective: str = "power",
) -> List[Dict[str, float]]:
    """Per-axis impact on one objective, largest first.

    For each axis: group the successful rows by the values of every
    *other* axis, measure the objective's spread (max - min) within
    each group as that axis varies alone, and average the spreads.
    The relative figure divides by the mean objective so axes are
    comparable across magnitudes.  Deterministic: ties rank by name.
    """
    usable = [
        row
        for row in rows
        if not row.get("error")
        and math.isfinite(float(row["objectives"].get(objective, math.nan)))
    ]
    if not usable:
        return []
    mean = sum(
        float(row["objectives"][objective]) for row in usable
    ) / len(usable)
    ranking: List[Dict[str, float]] = []
    for axis in axis_names:
        groups: Dict[Tuple, List[float]] = {}
        for row in usable:
            values = row["values"]
            key = tuple(
                (name, values[name]) for name in axis_names if name != axis
            )
            groups.setdefault(key, []).append(
                float(row["objectives"][objective])
            )
        spreads = [
            max(group) - min(group)
            for group in groups.values()
            if len(group) > 1
        ]
        spread = sum(spreads) / len(spreads) if spreads else 0.0
        ranking.append(
            {
                "axis": axis,
                "spread": spread,
                "relative": spread / abs(mean) if mean else 0.0,
            }
        )
    ranking.sort(key=lambda item: (-item["spread"], item["axis"]))
    return ranking


def export_csv(
    rows: Sequence[Mapping],
    axis_names: Sequence[str],
    objectives: Sequence[str],
) -> str:
    """Result rows as CSV, byte-stable: ``repr`` floats round-trip
    exactly, row order is point order.

    When any row carries a ``source`` key (surrogate sweeps mark rows
    ``exact`` or ``predicted``) a ``source`` column is emitted; exports
    of plain exact sweeps stay byte-identical to before.
    """
    with_source = any("source" in row for row in rows)
    header = ["index", *axis_names, *objectives]
    if with_source:
        header.append("source")
    header.append("error")
    lines = [",".join(header)]
    for row in rows:
        cells: List[str] = [str(int(row["index"]))]
        for name in axis_names:
            cells.append(repr(float(row["values"][name])))
        for name in objectives:
            value = row.get("objectives", {}).get(name)
            cells.append("" if value is None else repr(float(value)))
        if with_source:
            cells.append(str(row.get("source", "exact")))
        error = str(row.get("error", ""))
        cells.append('"%s"' % error.replace('"', "'") if error else "")
        lines.append(",".join(cells))
    return "\n".join(lines) + "\n"


def export_json(
    rows: Sequence[Mapping],
    axis_names: Sequence[str],
    objectives: Sequence[str],
    meta: Optional[Mapping[str, object]] = None,
) -> str:
    """Full results as canonical JSON (sorted keys, indent 1) — the
    payload the resume-equivalence gate compares byte for byte."""
    out_rows: List[Dict[str, object]] = []
    for row in rows:
        out: Dict[str, object] = {
            "index": int(row["index"]),
            "values": {k: float(v) for k, v in row["values"].items()},
            "objectives": {
                k: float(v) for k, v in row.get("objectives", {}).items()
            },
            "error": str(row.get("error", "")),
        }
        if "source" in row:
            out["source"] = str(row["source"])
        out_rows.append(out)
    payload: Dict[str, object] = {
        "format": "powerplay-sweep-results/1",
        "axes": list(axis_names),
        "objectives": list(objectives),
        "rows": out_rows,
    }
    if meta:
        payload["meta"] = dict(meta)
    return json.dumps(payload, indent=1, sort_keys=True)
