"""The exploration engine: chunked, parallel, resumable sweeps.

Execution model
---------------
A sweep is the parameter space sharded into ``[start, stop)`` chunks
(:meth:`ParameterSpace.chunks`).  Chunks are independent: each is a
pure function of (design payload, space payload, chunk range), so they
can run serially, on a thread pool, or on forked worker processes and
the assembled result is identical — rows are keyed by point index, not
by completion order, and every worker evaluates with its **own** design
replica (scope mutation during evaluation is not shareable).

Determinism is the load-bearing property: objective values are
bit-identical to serial :func:`repro.core.estimator.evaluate_power`
calls (see :mod:`repro.explore.batcheval`), so serial, 8-worker, and
killed-then-resumed runs all export byte-identical results.

``mode``:

* ``serial`` — one evaluator, in-process; the memoization baseline.
* ``thread`` — a thread pool; each thread lazily builds its own
  design replica + evaluator.  Best on one core too: the evaluator's
  memo hit rate does the work, threads just overlap checkpoint I/O.
* ``process`` — forked workers for true multi-core scaling.

Cancellation (``should_stop``) is polled between chunks: finished
chunks are already checkpointed via ``on_chunk``, in-flight chunks
drain, unstarted chunks are never submitted — exactly the state a
resume picks up from.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.design import Design
from ..errors import ExploreError, PowerPlayError
from ..library.designio import design_from_payload, design_to_payload
from ..obs import annotate, get_logger, get_registry, span
from .batcheval import BatchEvaluator
from .jobs import SweepJob
from .results import pareto_rows
from .space import DerivedObjective, ParameterSpace

_LOG = get_logger("explore")

#: per-chunk evaluation latency buckets — sweeps chunk at tens of
#: points, each point sub-millisecond to a few ms
_CHUNK_BUCKETS = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0
)


def _metric_points():
    return get_registry().counter(
        "powerplay_explore_points_total",
        "Design points evaluated by the exploration engine.",
        ("status",),
    )


def _metric_memo():
    return get_registry().counter(
        "powerplay_explore_memo_total",
        "Batch-evaluator row memoization outcomes.",
        ("kind",),
    )


def _metric_chunk_seconds():
    return get_registry().histogram(
        "powerplay_explore_chunk_seconds",
        "Wall-clock seconds spent evaluating one sweep chunk.",
        buckets=_CHUNK_BUCKETS,
    )


@dataclass
class EngineReport:
    """What one engine run did (counts only, no rows)."""

    points: int = 0
    errors: int = 0
    chunks: int = 0
    hits: int = 0
    misses: int = 0
    seconds: float = 0.0
    mode: str = "serial"
    workers: int = 1

    def to_payload(self) -> dict:
        return {
            "points": self.points,
            "errors": self.errors,
            "chunks": self.chunks,
            "hits": self.hits,
            "misses": self.misses,
            "seconds": self.seconds,
            "mode": self.mode,
            "workers": self.workers,
        }


@dataclass
class SweepOutcome:
    """A finished (or pruned) sweep: rows in point order + the report."""

    rows: List[dict]
    report: EngineReport
    axis_names: List[str] = field(default_factory=list)
    objective_names: List[str] = field(default_factory=list)

    def pareto(self, objectives: Optional[Sequence[str]] = None) -> List[dict]:
        return pareto_rows(self.rows, objectives or self.objective_names)


def _point_row(
    evaluator: BatchEvaluator,
    space: ParameterSpace,
    derived: Sequence[DerivedObjective],
    index: int,
) -> dict:
    """Evaluate one point into its serializable result row.

    A :class:`PowerPlayError` (bad model input at this corner of the
    space, say a zero divisor) marks the row failed and the sweep goes
    on; anything else is an engine bug and propagates.
    """
    point = space.point(index)
    row = {
        "index": index,
        "values": point["values"],
        "overrides": point["overrides"],
    }
    try:
        objectives = evaluator.evaluate(point["overrides"])
        env: Dict[str, float] = dict(point["values"])
        env.update(point["overrides"])
        env.update(objectives)
        for obj in derived:
            value = obj.value(env)
            objectives[obj.name] = value
            env[obj.name] = value
        row["objectives"] = objectives
        row["error"] = ""
    except PowerPlayError as exc:
        row["objectives"] = {}
        row["error"] = str(exc)
    return row


def _evaluate_range(
    evaluator: BatchEvaluator,
    space: ParameterSpace,
    derived: Sequence[DerivedObjective],
    start: int,
    stop: int,
) -> List[dict]:
    return [
        _point_row(evaluator, space, derived, index)
        for index in range(start, stop)
    ]


def _evaluate_indices(
    evaluator: BatchEvaluator,
    space: ParameterSpace,
    derived: Sequence[DerivedObjective],
    indices: Sequence[int],
) -> List[dict]:
    return [
        _point_row(evaluator, space, derived, index) for index in indices
    ]


# -- process-mode workers ---------------------------------------------------

# one evaluator per worker process, built once by the pool initializer
_PROC_STATE: Optional[Tuple[BatchEvaluator, ParameterSpace,
                            Tuple[DerivedObjective, ...]]] = None


def _proc_init(design_payload, space_payload, objectives, derived_payloads):
    global _PROC_STATE
    design = design_from_payload(design_payload)
    space = ParameterSpace.from_payload(space_payload)
    derived = tuple(
        DerivedObjective.from_payload(d) for d in derived_payloads
    )
    _PROC_STATE = (BatchEvaluator(design, tuple(objectives)), space, derived)


def _proc_chunk(start: int, stop: int):
    evaluator, space, derived = _PROC_STATE
    hits0, misses0 = evaluator.hits, evaluator.misses
    began = time.perf_counter()
    rows = _evaluate_range(evaluator, space, derived, start, stop)
    seconds = time.perf_counter() - began
    return (start, stop, rows, seconds,
            evaluator.hits - hits0, evaluator.misses - misses0)


def _proc_index_chunk(ordinal: int, indices: Sequence[int]):
    evaluator, space, derived = _PROC_STATE
    hits0, misses0 = evaluator.hits, evaluator.misses
    began = time.perf_counter()
    rows = _evaluate_indices(evaluator, space, derived, indices)
    seconds = time.perf_counter() - began
    return (ordinal, indices, rows, seconds,
            evaluator.hits - hits0, evaluator.misses - misses0)


# -- the engine -------------------------------------------------------------

class _ThreadWorkers:
    """Lazily builds one design replica + evaluator per pool thread."""

    def __init__(self, design: Design, objectives: Tuple[str, ...]):
        self._payload = design_to_payload(design)
        self._objectives = objectives
        self._local = threading.local()
        self._all: List[BatchEvaluator] = []
        self._lock = threading.Lock()

    def evaluator(self) -> BatchEvaluator:
        evaluator = getattr(self._local, "evaluator", None)
        if evaluator is None:
            evaluator = BatchEvaluator(
                design_from_payload(self._payload), self._objectives
            )
            self._local.evaluator = evaluator
            with self._lock:
                self._all.append(evaluator)
        return evaluator

    def stats(self) -> Tuple[int, int]:
        with self._lock:
            return (
                sum(e.hits for e in self._all),
                sum(e.misses for e in self._all),
            )


def _observe_chunk(record: Mapping) -> None:
    rows = record["rows"]
    failed = sum(1 for row in rows if row["error"])
    if len(rows) - failed:
        _metric_points().inc(len(rows) - failed, status="ok")
    if failed:
        _metric_points().inc(failed, status="error")
    _metric_chunk_seconds().observe(record["seconds"])
    annotate(
        "chunk",
        range=f"{record['start']}:{record['stop']}",
        points=len(rows),
        errors=failed,
        seconds=round(record["seconds"], 6),
    )


def run_chunks(
    design: Design,
    space: ParameterSpace,
    chunks: Sequence[Tuple[int, int]],
    objectives: Sequence[str] = ("power",),
    derived: Sequence[DerivedObjective] = (),
    workers: int = 1,
    mode: str = "serial",
    should_stop: Optional[Callable[[], bool]] = None,
    on_chunk: Optional[Callable[[int, int, List[dict], float], None]] = None,
) -> Tuple[Dict[int, dict], EngineReport]:
    """Evaluate ``chunks`` of ``space``, calling ``on_chunk`` as each
    finishes (that's the checkpoint hook).

    Returns ``(records, report)`` where ``records`` maps chunk start ->
    ``{"start", "stop", "rows", "seconds"}``.  ``should_stop`` is polled
    between chunks; unstarted chunks stay unevaluated, which is exactly
    the state :meth:`SweepJob.pending_chunks` resumes from.
    """
    objectives = tuple(objectives)
    derived = tuple(derived)
    workers = max(1, int(workers))
    records: Dict[int, dict] = {}
    report = EngineReport(mode=mode, workers=workers)
    began = time.perf_counter()

    def _record(start, stop, rows, seconds, hits, misses):
        record = {
            "start": start, "stop": stop, "rows": rows, "seconds": seconds,
        }
        records[start] = record
        report.points += len(rows)
        report.errors += sum(1 for row in rows if row["error"])
        report.chunks += 1
        report.hits += hits
        report.misses += misses
        _observe_chunk(record)
        if on_chunk is not None:
            on_chunk(start, stop, rows, seconds)

    if mode == "serial" or (workers == 1 and mode == "thread"):
        evaluator = BatchEvaluator(design, objectives)
        for start, stop in chunks:
            if should_stop is not None and should_stop():
                break
            with span("explore.chunk"):
                hits0, misses0 = evaluator.hits, evaluator.misses
                chunk_began = time.perf_counter()
                rows = _evaluate_range(evaluator, space, derived, start, stop)
                _record(
                    start, stop, rows, time.perf_counter() - chunk_began,
                    evaluator.hits - hits0, evaluator.misses - misses0,
                )
    elif mode == "thread":
        pool_workers = _ThreadWorkers(design, objectives)

        def _thread_chunk(start: int, stop: int):
            evaluator = pool_workers.evaluator()
            hits0, misses0 = evaluator.hits, evaluator.misses
            chunk_began = time.perf_counter()
            rows = _evaluate_range(evaluator, space, derived, start, stop)
            return (start, stop, rows, time.perf_counter() - chunk_began,
                    evaluator.hits - hits0, evaluator.misses - misses0)

        with concurrent.futures.ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="explore"
        ) as pool:
            _pump(pool, _thread_chunk, chunks, workers, should_stop,
                  _record, ())
    elif mode == "process":
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - platforms without fork
            context = multiprocessing.get_context()
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=_proc_init,
            initargs=(
                design_to_payload(design),
                space.to_payload(),
                objectives,
                [d.to_payload() for d in derived],
            ),
        ) as pool:
            _pump(pool, _proc_chunk, chunks, workers, should_stop,
                  _record, ())
    else:
        raise ExploreError(
            f"unknown engine mode {mode!r}; choose serial, thread or process"
        )

    report.seconds = time.perf_counter() - began
    _metric_memo().inc(report.hits, kind="hit")
    _metric_memo().inc(report.misses, kind="miss")
    _LOG.info(
        "run", mode=mode, workers=workers, chunks=report.chunks,
        points=report.points, errors=report.errors,
        hits=report.hits, misses=report.misses,
        seconds=round(report.seconds, 4),
    )
    return records, report


def run_index_chunks(
    design: Design,
    space: ParameterSpace,
    index_chunks: Sequence[Tuple[int, Sequence[int]]],
    objectives: Sequence[str] = ("power",),
    derived: Sequence[DerivedObjective] = (),
    workers: int = 1,
    mode: str = "serial",
    should_stop: Optional[Callable[[], bool]] = None,
    on_chunk: Optional[Callable[[int, Sequence[int], List[dict], float],
                                None]] = None,
) -> Tuple[Dict[int, dict], EngineReport]:
    """Evaluate explicit point-index lists — the surrogate engine's
    exact phases (scattered training samples, the predicted front).

    ``index_chunks`` is ``[(ordinal, [indices...]), ...]``; each chunk
    checkpoints through ``on_chunk(ordinal, indices, rows, seconds)``
    exactly like :func:`run_chunks` does for contiguous ranges, with
    the same serial/thread/process modes and cancellation contract.
    """
    objectives = tuple(objectives)
    derived = tuple(derived)
    workers = max(1, int(workers))
    records: Dict[int, dict] = {}
    report = EngineReport(mode=mode, workers=workers)
    began = time.perf_counter()

    def _record(ordinal, indices, rows, seconds, hits, misses):
        record = {
            "ordinal": int(ordinal), "indices": list(indices),
            "rows": rows, "seconds": seconds,
        }
        records[int(ordinal)] = record
        report.points += len(rows)
        report.errors += sum(1 for row in rows if row["error"])
        report.chunks += 1
        report.hits += hits
        report.misses += misses
        failed = sum(1 for row in rows if row["error"])
        if len(rows) - failed:
            _metric_points().inc(len(rows) - failed, status="ok")
        if failed:
            _metric_points().inc(failed, status="error")
        _metric_chunk_seconds().observe(seconds)
        if on_chunk is not None:
            on_chunk(ordinal, indices, rows, seconds)

    if mode == "serial" or (workers == 1 and mode == "thread"):
        evaluator = BatchEvaluator(design, objectives)
        for ordinal, indices in index_chunks:
            if should_stop is not None and should_stop():
                break
            with span("explore.chunk"):
                hits0, misses0 = evaluator.hits, evaluator.misses
                chunk_began = time.perf_counter()
                rows = _evaluate_indices(evaluator, space, derived, indices)
                _record(
                    ordinal, indices, rows,
                    time.perf_counter() - chunk_began,
                    evaluator.hits - hits0, evaluator.misses - misses0,
                )
    elif mode == "thread":
        pool_workers = _ThreadWorkers(design, objectives)

        def _thread_chunk(ordinal, indices):
            evaluator = pool_workers.evaluator()
            hits0, misses0 = evaluator.hits, evaluator.misses
            chunk_began = time.perf_counter()
            rows = _evaluate_indices(evaluator, space, derived, indices)
            return (ordinal, indices, rows,
                    time.perf_counter() - chunk_began,
                    evaluator.hits - hits0, evaluator.misses - misses0)

        with concurrent.futures.ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="explore"
        ) as pool:
            _pump(pool, _thread_chunk, index_chunks, workers, should_stop,
                  _record, ())
    elif mode == "process":
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - platforms without fork
            context = multiprocessing.get_context()
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=_proc_init,
            initargs=(
                design_to_payload(design),
                space.to_payload(),
                objectives,
                [d.to_payload() for d in derived],
            ),
        ) as pool:
            _pump(pool, _proc_index_chunk, index_chunks, workers,
                  should_stop, _record, ())
    else:
        raise ExploreError(
            f"unknown engine mode {mode!r}; choose serial, thread or process"
        )

    report.seconds = time.perf_counter() - began
    _metric_memo().inc(report.hits, kind="hit")
    _metric_memo().inc(report.misses, kind="miss")
    return records, report


def _pump(pool, chunk_fn, chunks, workers, should_stop, record, extra_args):
    """Feed chunks to a pool keeping at most ``workers`` in flight.

    Bounded submission keeps memory flat on huge sweeps and makes
    ``should_stop`` prompt: in-flight chunks drain (and checkpoint),
    nothing new starts.
    """
    pending = {}
    queue = list(chunks)
    position = 0
    while position < len(queue) or pending:
        while (position < len(queue) and len(pending) < workers
               and not (should_stop is not None and should_stop())):
            start, stop = queue[position]
            position += 1
            pending[pool.submit(chunk_fn, start, stop, *extra_args)] = start
        if should_stop is not None and should_stop():
            position = len(queue)
        if not pending:
            break
        done, _ = concurrent.futures.wait(
            pending, return_when=concurrent.futures.FIRST_COMPLETED
        )
        for future in done:
            pending.pop(future)
            with span("explore.chunk"):
                record(*future.result())


def run_sweep(
    design: Design,
    space: ParameterSpace,
    objectives: Sequence[str] = ("power",),
    derived: Sequence[DerivedObjective] = (),
    workers: int = 1,
    mode: str = "serial",
    chunk_size: int = 64,
    prune: bool = False,
    should_stop: Optional[Callable[[], bool]] = None,
    on_chunk: Optional[Callable[[int, int, List[dict], float], None]] = None,
) -> SweepOutcome:
    """Evaluate the whole space and assemble rows in point order.

    ``prune=True`` keeps only the Pareto-optimal rows (dominated
    region dropped) — the report still counts every evaluated point.
    """
    with span("explore.sweep"):
        annotate(
            "sweep", design=design.name, points=len(space), mode=mode
        )
        records, report = run_chunks(
            design, space, space.chunks(chunk_size),
            objectives=objectives, derived=derived,
            workers=workers, mode=mode,
            should_stop=should_stop, on_chunk=on_chunk,
        )
    rows: List[dict] = []
    for start in sorted(records):
        rows.extend(records[start]["rows"])
    objective_names = list(objectives) + [d.name for d in derived]
    if prune:
        rows = pareto_rows(rows, objective_names)
    return SweepOutcome(
        rows=rows,
        report=report,
        axis_names=space.axis_names,
        objective_names=objective_names,
    )


def run_job(
    job: SweepJob,
    should_stop: Optional[Callable[[], bool]] = None,
) -> SweepJob:
    """Execute (or resume) a persisted sweep job to a terminal state.

    Only the chunks missing from the job's checkpoint run; each
    finished chunk checkpoints immediately, so killing this process at
    any instant loses at most one in-flight chunk.  Honors both the
    job's own :meth:`~SweepJob.request_cancel` flag and an external
    ``should_stop``.

    Surrogate jobs (``job.surrogate`` set) run the fit-predict-verify
    phases instead of the exhaustive chunk walk.
    """
    if getattr(job, "surrogate", None) is not None:
        from ..surrogate.runner import run_surrogate_job

        return run_surrogate_job(job, should_stop)
    job.set_state("running")
    design = job.design()

    def _stop() -> bool:
        return job.cancel_requested or bool(
            should_stop is not None and should_stop()
        )

    try:
        run_chunks(
            design, job.space, job.pending_chunks(),
            objectives=job.objectives, derived=job.derived,
            workers=job.workers, mode=job.mode,
            should_stop=_stop, on_chunk=job.record_chunk,
        )
    except PowerPlayError as exc:
        job.set_state("failed", str(exc))
        raise
    except BaseException as exc:
        job.set_state("failed", f"engine failure: {exc}")
        raise
    if job.pending_chunks():
        job.set_state("cancelled")
    else:
        job.set_state("done")
    return job
