"""Deterministic load/soak harness for the PowerPlay server.

The paper's premise is a *shared* WWW tool — many designers against one
server's libraries and spreadsheet at once.  This package makes that
claim testable:

* :mod:`repro.loadgen.workload` — a seeded generator that synthesizes
  multi-user sessions (login -> library browse -> cell compute -> design
  edit -> analysis) as replayable operation scripts.  Same seed, same
  bytes.
* :mod:`repro.loadgen.driver` — a closed-loop multi-threaded driver
  executing a script against an in-process
  :class:`~repro.web.app.Application` or a live
  :class:`~repro.web.server.PowerPlayServer` over HTTP, with per-op
  latency capture.
* :mod:`repro.loadgen.oracle` — replays the same script serially and
  asserts end-state equivalence (no lost updates, no torn session
  files, identical library contents).
* :mod:`repro.loadgen.stats` — p50/p95/p99 summaries from raw samples
  and from the observability registry's latency histograms.

Surfaced as ``repro loadgen`` in the CLI and exercised by
``benchmarks/bench_loadgen.py`` and ``tests/integration``.
"""

from .driver import HttpTarget, InProcessTarget, OpResult, RunResult, run_script
from .oracle import OracleReport, capture_state, replay_serial, verify
from .stats import histogram_quantile, percentile, summarize_latencies
from .workload import Operation, WorkloadScript, generate_workload

__all__ = [
    "HttpTarget",
    "InProcessTarget",
    "Operation",
    "OpResult",
    "OracleReport",
    "RunResult",
    "WorkloadScript",
    "capture_state",
    "generate_workload",
    "histogram_quantile",
    "percentile",
    "replay_serial",
    "run_script",
    "summarize_latencies",
    "verify",
]
