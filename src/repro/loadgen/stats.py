"""Latency/throughput summaries: raw-sample and histogram percentiles.

Two complementary sources:

* the driver's own per-operation wall clock — exact, computed by
  :func:`percentile` over the raw samples;
* the server's ``powerplay_http_request_seconds`` histogram from the
  observability registry — what a production scrape would see, read by
  :func:`histogram_quantile` with the standard Prometheus
  linear-interpolation-within-bucket estimate.

Reporting both catches disagreement between what the client felt and
what the server measured (queueing in the transport, for example).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..obs.metrics import Histogram

PERCENTILES = (0.50, 0.95, 0.99)


def percentile(samples: Sequence[float], q: float) -> float:
    """Exact sample percentile (linear interpolation between ranks)."""
    if not samples:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = q * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


def summarize_latencies(samples: Sequence[float]) -> Dict[str, float]:
    """p50/p95/p99 plus mean and max, in seconds."""
    if not samples:
        return {"count": 0, "p50": 0.0, "p95": 0.0, "p99": 0.0,
                "mean": 0.0, "max": 0.0}
    return {
        "count": len(samples),
        "p50": percentile(samples, 0.50),
        "p95": percentile(samples, 0.95),
        "p99": percentile(samples, 0.99),
        "mean": sum(samples) / len(samples),
        "max": max(samples),
    }


def _aggregate_buckets(
    histogram: Histogram, route: Optional[str] = None
) -> Tuple[List[int], int]:
    """Summed per-bucket counts (+Inf last) across label sets.

    ``route`` filters to one label value when the histogram is labelled
    by route (the first declared label); ``None`` aggregates everything.
    """
    slots = [0] * (len(histogram.bounds) + 1)
    total = 0
    with histogram._lock:
        for key, counts in histogram._buckets.items():
            if route is not None and key and key[0] != route:
                continue
            for index, count in enumerate(counts):
                slots[index] += count
                total += count
    return slots, total


def histogram_quantile(
    histogram: Histogram, q: float, route: Optional[str] = None
) -> float:
    """Prometheus-style quantile estimate from cumulative buckets.

    Linear interpolation inside the bucket containing the target rank;
    observations in the ``+Inf`` bucket clamp to the highest finite
    bound (exactly what ``histogram_quantile()`` does in PromQL).
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    slots, total = _aggregate_buckets(histogram, route)
    if total == 0:
        return 0.0
    rank = q * total
    seen = 0.0
    lower = 0.0
    for index, bound in enumerate(histogram.bounds):
        in_bucket = slots[index]
        if seen + in_bucket >= rank and in_bucket > 0:
            fraction = (rank - seen) / in_bucket
            return lower + (bound - lower) * fraction
        seen += in_bucket
        lower = bound
    return histogram.bounds[-1]


def histogram_summary(
    histogram: Histogram, route: Optional[str] = None
) -> Dict[str, float]:
    """The standard percentile triple from a registry histogram."""
    return {
        f"p{int(q * 100)}": histogram_quantile(histogram, q, route)
        for q in PERCENTILES
    }
