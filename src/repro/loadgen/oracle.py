"""Serial-replay oracle: did concurrency change the answer?

The workload generator guarantees that distinct users touch disjoint
server state (their own session, designs, defaults and user library),
and the driver guarantees every user's operations execute in script
order regardless of thread count.  Under those two invariants a correct
server is *linearizable per user*: executing the script with 8 threads
must leave exactly the end state that executing it serially does.

So the oracle is brutally simple — replay the identical script on a
fresh single-threaded server, then compare, per user:

* the in-memory session payload (designs, defaults, models, password
  state) between the concurrent run and the serial run — any mismatch
  is a lost or phantom update;
* the on-disk state file against the in-memory payload within each run
  — any mismatch is a torn or stale save;
* the store's quarantine log — a quarantined file means a reader saw
  corrupt bytes.

No tolerance, no fuzz: equality is byte-level on canonicalized JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..web.app import Application
from .driver import InProcessTarget, RunResult, run_script
from .workload import WorkloadScript


def replay_serial(
    script: WorkloadScript, state_dir: Path
) -> Tuple[Application, RunResult]:
    """Execute ``script`` serially on a fresh server rooted at ``state_dir``.

    One thread ⇒ total script order ⇒ the reference end state.
    """
    application = Application(Path(state_dir), server_name="oracle")
    result = run_script(script, InProcessTarget(application), threads=1)
    return application, result


def _canonical(payload: object) -> str:
    return json.dumps(payload, sort_keys=True)


def capture_state(
    application: Application, script: WorkloadScript
) -> Dict[str, dict]:
    """Snapshot everything the oracle compares, per user.

    ``session`` is the user's in-memory payload; ``disk`` is the parsed
    state file (or an ``error`` marker when missing/unreadable — which
    the verifier reports as a torn-file finding).
    """
    state: Dict[str, dict] = {}
    for user in script.users:
        session = application.users.session(user)
        with session.lock:
            payload = session.to_payload()
        text = application.users.read_disk(user)
        disk: object
        if text is None:
            disk = {"error": "state file missing"}
        else:
            try:
                disk = json.loads(text)
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                disk = {"error": f"unreadable state file: {exc}"}
        state[user] = {"session": payload, "disk": disk}
    return state


def _diff(prefix: str, left: object, right: object, out: List[str]) -> None:
    """Recursive structural diff; appends human-readable findings."""
    if type(left) is not type(right):
        out.append(
            f"{prefix}: type {type(left).__name__} != {type(right).__name__}"
        )
        return
    if isinstance(left, dict):
        for key in sorted(set(left) - set(right)):
            out.append(f"{prefix}.{key}: only in concurrent run")
        for key in sorted(set(right) - set(left)):
            out.append(f"{prefix}.{key}: only in serial run")
        for key in sorted(set(left) & set(right)):
            _diff(f"{prefix}.{key}", left[key], right[key], out)
        return
    if isinstance(left, list):
        if len(left) != len(right):
            out.append(
                f"{prefix}: length {len(left)} != {len(right)}"
            )
            return
        for index, (a, b) in enumerate(zip(left, right)):
            _diff(f"{prefix}[{index}]", a, b, out)
        return
    if left != right:
        out.append(f"{prefix}: {left!r} != {right!r}")


@dataclass
class OracleReport:
    """Verdict of one concurrent-vs-serial comparison."""

    matches: bool
    differences: List[str] = field(default_factory=list)
    users: List[str] = field(default_factory=list)
    designs_checked: int = 0
    models_checked: int = 0

    def summary(self) -> str:
        verdict = "EQUIVALENT" if self.matches else "DIVERGED"
        return (
            f"oracle: {verdict} — {len(self.users)} users, "
            f"{self.designs_checked} designs, {self.models_checked} models"
            + ("" if self.matches else f", {len(self.differences)} differences")
        )


def verify(
    script: WorkloadScript,
    concurrent_app: Application,
    serial_app: Application,
    max_reported: int = 20,
) -> OracleReport:
    """Compare a concurrent run's end state against the serial replay."""
    concurrent_state = capture_state(concurrent_app, script)
    serial_state = capture_state(serial_app, script)
    differences: List[str] = []
    designs = 0
    models = 0

    for application, run_name in (
        (concurrent_app, "concurrent"),
        (serial_app, "serial"),
    ):
        for user, target, reason in application.users.quarantined:
            differences.append(
                f"{run_name} run quarantined {user!r} "
                f"({target.name}): {reason}"
            )

    for user in script.users:
        concurrent_user = concurrent_state[user]
        serial_user = serial_state[user]
        designs += len(concurrent_user["session"].get("designs", {}))
        models += len(concurrent_user["session"].get("models", []))

        # lost/phantom updates: concurrent end state vs serial end state
        if _canonical(concurrent_user["session"]) != _canonical(
            serial_user["session"]
        ):
            _diff(
                f"user[{user}]",
                concurrent_user["session"],
                serial_user["session"],
                differences,
            )

        # torn/stale saves: disk vs memory *within* each run
        for run_name, snapshot in (
            ("concurrent", concurrent_user),
            ("serial", serial_user),
        ):
            if _canonical(snapshot["disk"]) != _canonical(
                snapshot["session"]
            ):
                local: List[str] = []
                _diff(
                    f"{run_name} disk[{user}]",
                    snapshot["disk"],
                    snapshot["session"],
                    local,
                )
                differences.extend(
                    local or [f"{run_name} disk[{user}]: differs from memory"]
                )

    if len(differences) > max_reported:
        overflow = len(differences) - max_reported
        differences = differences[:max_reported] + [
            f"... and {overflow} more differences"
        ]
    return OracleReport(
        matches=not differences,
        differences=differences,
        users=list(script.users),
        designs_checked=designs,
        models_checked=models,
    )
