"""Closed-loop workload execution against in-process or live servers.

The driver maps each scripted :class:`~repro.loadgen.workload.Operation`
to the HTTP request a browser would issue, executes it, and records the
observed status and latency.  Two interchangeable targets:

* :class:`InProcessTarget` calls :meth:`Application.handle` directly —
  no sockets, so the harness measures (and races) the application layer
  itself.  This is what the serial oracle replays against.
* :class:`HttpTarget` drives a live :class:`PowerPlayServer` through
  :class:`~repro.web.client.Browser`, covering the transport too.

Concurrency model: *closed-loop per user*.  Users are partitioned
round-robin over ``threads`` worker threads; each worker executes its
users' operations in script order (interleaved across its users exactly
as the script interleaves them), issuing the next request only after
the previous one returned.  Per-user program order is therefore
preserved no matter the thread count — the property the serial-replay
oracle depends on — while operations of *different* users overlap
freely.
"""

from __future__ import annotations

import threading
import time
import urllib.parse
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import PowerPlayError
from ..web.app import Application
from ..web.client import Browser
from .workload import Operation, WorkloadScript


def op_request(op: Operation) -> Tuple[str, str, Dict[str, str]]:
    """Translate an operation into ``(method, path, form)``."""
    p = op.params
    user = op.user
    if op.kind == "login":
        return "POST", "/login", {"user": user}
    if op.kind == "design_new":
        return "POST", "/design/new", {"user": user, "name": p["name"]}
    if op.kind == "menu":
        return "GET", f"/menu?user={user}", {}
    if op.kind == "library":
        return "GET", f"/library?user={user}&library={p['library']}", {}
    if op.kind == "cell_form":
        return "GET", f"/cell?user={user}&name={p['name']}", {}
    if op.kind == "cell_compute":
        form = {"user": user, "name": p["name"]}
        if "bitwidth" in p:
            form["p:bitwidth"] = p["bitwidth"]
        if "VDD" in p:
            form["p:VDD"] = p["VDD"]
        return "POST", "/cell", form
    if op.kind == "cell_save":
        form = {
            "user": user,
            "name": p["name"],
            "design": p["design"],
            "row": p["row"],
        }
        if "bitwidth" in p:
            form["p:bitwidth"] = p["bitwidth"]
        return "POST", "/cell/save", form
    if op.kind == "design_sheet":
        return "GET", f"/design?user={user}&name={p['name']}", {}
    if op.kind == "design_play":
        return "POST", "/design", {
            "user": user,
            "name": p["name"],
            "g:VDD": p["VDD"],
        }
    if op.kind == "design_analysis":
        return "GET", f"/design/analysis?user={user}&name={p['name']}", {}
    if op.kind == "load_example":
        return "POST", "/design/load_example", {
            "user": user,
            "example": p["example"],
        }
    if op.kind == "define_model":
        return "POST", "/define", {
            "user": user,
            "name": p["name"],
            "equation": p["equation"],
            "parameters": p.get("parameters", ""),
            "doc": p.get("doc", ""),
            "category": p.get("category", "other"),
        }
    raise PowerPlayError(f"unknown workload operation kind {op.kind!r}")


class InProcessTarget:
    """Execute operations directly against an :class:`Application`."""

    def __init__(self, application: Application):
        self.application = application

    def request(self, method: str, path: str, form: Mapping[str, str]) -> int:
        response = self.application.handle(method, path, form or None)
        return response.status


class HttpTarget:
    """Execute operations over real HTTP against a live server.

    One :class:`Browser` per driver thread (``http.client`` connections
    are not thread-safe); redirects are followed, so a successful
    POST-redirect-GET chain reports the final page's status.
    """

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url
        self.timeout = timeout
        self._local = threading.local()

    def _browser(self) -> Browser:
        browser = getattr(self._local, "browser", None)
        if browser is None:
            browser = Browser(self.base_url, timeout=self.timeout)
            self._local.browser = browser
        return browser

    def request(self, method: str, path: str, form: Mapping[str, str]) -> int:
        browser = self._browser()
        if method == "GET":
            return browser.get(path).status
        return browser.post(path, form).status


@dataclass
class OpResult:
    """Outcome of one executed operation."""

    index: int
    user: str
    kind: str
    status: int
    duration: float
    error: str = ""

    @property
    def ok(self) -> bool:
        return not self.error and self.status < 400


@dataclass
class RunResult:
    """Everything one driver run observed."""

    results: List[OpResult]
    wall_seconds: float
    threads: int

    @property
    def latencies(self) -> List[float]:
        return [r.duration for r in self.results]

    @property
    def throughput(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return len(self.results) / self.wall_seconds

    def status_classes(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for result in self.results:
            key = f"{result.status // 100}xx" if not result.error else "err"
            counts[key] = counts.get(key, 0) + 1
        return counts

    @property
    def failures(self) -> List[OpResult]:
        return [r for r in self.results if not r.ok]

    @property
    def server_errors(self) -> List[OpResult]:
        return [r for r in self.results if r.status >= 500 or r.error]


def _partition_users(users: Sequence[str], threads: int) -> List[List[str]]:
    buckets: List[List[str]] = [[] for _ in range(threads)]
    for position, user in enumerate(users):
        buckets[position % threads].append(user)
    return [bucket for bucket in buckets if bucket]


def run_script(
    script: WorkloadScript,
    target,
    threads: int = 4,
    on_result: Optional[Callable[[OpResult], None]] = None,
) -> RunResult:
    """Execute ``script`` against ``target`` with ``threads`` workers.

    Exceptions from the target are captured per-operation (status 599)
    rather than aborting the run — a soak should finish and report.
    """
    if threads < 1:
        raise PowerPlayError("driver needs at least one thread")
    partitions = _partition_users(script.users, threads)
    collected: List[List[OpResult]] = [[] for _ in partitions]
    barrier = threading.Barrier(len(partitions) + 1)

    def worker(slot: int, mine: List[str]) -> None:
        wanted = set(mine)
        sink = collected[slot]
        ops = [op for op in script.operations if op.user in wanted]
        barrier.wait()
        for op in ops:
            method, path, form = op_request(op)
            started = time.perf_counter()
            try:
                status = target.request(method, path, form)
                error = ""
            except Exception as exc:  # noqa: BLE001 - soak must finish
                status = 599
                error = f"{type(exc).__name__}: {exc}"
            duration = time.perf_counter() - started
            result = OpResult(
                op.index, op.user, op.kind, status, duration, error
            )
            sink.append(result)
            if on_result is not None:
                on_result(result)

    workers = [
        threading.Thread(
            target=worker,
            args=(slot, mine),
            name=f"loadgen-{slot}",
            daemon=True,
        )
        for slot, mine in enumerate(partitions)
    ]
    for thread in workers:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in workers:
        thread.join()
    wall = time.perf_counter() - started
    merged = sorted(
        (result for sink in collected for result in sink),
        key=lambda result: result.index,
    )
    return RunResult(results=merged, wall_seconds=wall, threads=len(partitions))
