"""Seeded, replayable multi-user workload scripts.

A *workload script* is a flat, ordered list of operations, each naming
its user, the page it exercises and the (already stringified) form
values — exactly what a browser would submit.  Generation is driven by
one ``random.Random(seed)``: the same ``(seed, users, ops)`` triple
yields a byte-identical JSON script, so a run can be re-executed, its
failures bisected, and its concurrent end state compared against a
serial replay of the very same bytes.

Per-user operation order is the invariant the oracle relies on: the
driver may interleave *different* users arbitrarily across threads, but
every user's own operations execute in script order, and users touch
disjoint server state (their session, their designs, their library).
A correct server therefore ends in the same state no matter the
interleaving; divergence is a concurrency bug by construction.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..errors import PowerPlayError

FORMAT = "powerplay-workload/1"

#: operation kinds and their sampling weights after the per-user
#: prologue (login + design create); weights sum to 100 for legibility
OP_WEIGHTS: Sequence[Tuple[str, int]] = (
    ("menu", 6),
    ("library", 10),
    ("cell_form", 10),
    ("cell_compute", 20),
    ("cell_save", 14),
    ("design_sheet", 16),
    ("design_play", 12),
    ("design_analysis", 4),
    ("load_example", 4),
    ("define_model", 4),
)

#: library cells the generator parameterizes — stock entries with a
#: numeric ``bitwidth``/``VDD`` surface (present in every deployment)
CELLS: Sequence[str] = (
    "ripple_adder",
    "cla_adder",
    "multiplier",
    "register",
    "sram",
    "log_shifter",
    "comparator",
)

LIBRARIES: Sequence[str] = ("ucb_lowpower", "system_components", "macro_cells")
EXAMPLES: Sequence[str] = ("luminance_fig1", "luminance_fig3", "infopad")
BITWIDTHS: Sequence[int] = (4, 8, 16, 24, 32)
VDDS: Sequence[str] = ("1.1", "1.3", "1.5", "2.5", "3.3")


@dataclass(frozen=True)
class Operation:
    """One scripted request: ``kind`` selects the route, ``params`` the
    form/query values (strings, as a browser would send them)."""

    index: int
    user: str
    kind: str
    params: Mapping[str, str] = field(default_factory=dict)

    def to_payload(self) -> dict:
        return {
            "index": self.index,
            "user": self.user,
            "kind": self.kind,
            "params": dict(self.params),
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "Operation":
        return cls(
            index=int(payload["index"]),
            user=str(payload["user"]),
            kind=str(payload["kind"]),
            params={str(k): str(v) for k, v in payload.get("params", {}).items()},
        )


@dataclass
class WorkloadScript:
    """An ordered operation list plus the recipe that produced it."""

    seed: int
    users: List[str]
    operations: List[Operation]

    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.operations)

    def for_user(self, user: str) -> List[Operation]:
        """This user's operations, in script order."""
        return [op for op in self.operations if op.user == user]

    def to_json(self) -> str:
        """Canonical serialization — byte-identical for the same seed."""
        payload = {
            "format": FORMAT,
            "seed": self.seed,
            "users": self.users,
            "operations": [op.to_payload() for op in self.operations],
        }
        return json.dumps(payload, indent=1, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "WorkloadScript":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise PowerPlayError(f"malformed workload JSON: {exc}") from exc
        if payload.get("format") != FORMAT:
            raise PowerPlayError(
                f"unsupported workload format {payload.get('format')!r}"
            )
        return cls(
            seed=int(payload["seed"]),
            users=[str(u) for u in payload["users"]],
            operations=[
                Operation.from_payload(op) for op in payload.get("operations", [])
            ],
        )


class _UserState:
    """What the generator knows a user has done so far — used to emit
    only operations that are valid at that point in the session."""

    def __init__(self, name: str):
        self.name = name
        self.design = f"{name}_main"
        self.rows = 0
        self.examples = 0
        self.models = 0


def generate_workload(
    seed: int, users: int = 4, ops: int = 100
) -> WorkloadScript:
    """Synthesize a deterministic multi-user session script.

    Every user gets a prologue (login, create their working design);
    the remaining budget is spent on a seeded mix of browsing, cell
    computation, design edits and analyses.  All randomness flows from
    one ``random.Random(seed)``.
    """
    if users < 1:
        raise PowerPlayError("workload needs at least one user")
    if ops < users * 2:
        raise PowerPlayError(
            f"ops={ops} cannot cover the 2-op prologue for {users} users"
        )
    rng = random.Random(seed)
    names = [f"load_user{i}" for i in range(users)]
    states = {name: _UserState(name) for name in names}
    operations: List[Operation] = []

    def emit(user: str, kind: str, **params: str) -> None:
        operations.append(
            Operation(len(operations), user, kind, dict(params))
        )

    for name in names:
        emit(name, "login")
        emit(name, "design_new", name=states[name].design)

    kinds = [kind for kind, _weight in OP_WEIGHTS]
    weights = [weight for _kind, weight in OP_WEIGHTS]
    while len(operations) < ops:
        user = rng.choice(names)
        state = states[user]
        kind = rng.choices(kinds, weights=weights, k=1)[0]
        if kind == "menu":
            emit(user, "menu")
        elif kind == "library":
            emit(user, "library", library=rng.choice(LIBRARIES))
        elif kind == "cell_form":
            emit(user, "cell_form", name=rng.choice(CELLS))
        elif kind == "cell_compute":
            emit(
                user,
                "cell_compute",
                name=rng.choice(CELLS),
                bitwidth=str(rng.choice(BITWIDTHS)),
                VDD=rng.choice(VDDS),
            )
        elif kind == "cell_save":
            state.rows += 1
            emit(
                user,
                "cell_save",
                name=rng.choice(CELLS),
                design=state.design,
                row=f"row{state.rows}",
                bitwidth=str(rng.choice(BITWIDTHS)),
            )
        elif kind == "design_sheet":
            emit(user, "design_sheet", name=state.design)
        elif kind == "design_play":
            emit(
                user,
                "design_play",
                name=state.design,
                VDD=rng.choice(VDDS),
            )
        elif kind == "design_analysis":
            emit(user, "design_analysis", name=state.design)
        elif kind == "load_example":
            state.examples += 1
            emit(user, "load_example", example=rng.choice(EXAMPLES))
        elif kind == "define_model":
            state.models += 1
            emit(
                user,
                "define_model",
                name=f"{user}_m{state.models}",
                equation=f"C * VDD^2 * f * {rng.choice(BITWIDTHS)}",
                parameters="C=1p",
                doc=f"loadgen model {state.models} of {user}",
            )
    return WorkloadScript(seed=seed, users=names, operations=operations)
