"""Pluggable durable-state backends for the serving tier.

Public surface:

* :class:`~repro.state.backend.StateBackend` — the document-store
  contract every backend implements (and ``tests/state``'s conformance
  suite enforces);
* :func:`~repro.state.backend.open_backend` /
  :data:`~repro.state.backend.BACKEND_KINDS` — the factory behind
  ``serve --backend file|sqlite``;
* :class:`~repro.state.filestate.FileBackend` — the historical
  one-JSON-file-per-document layout, extracted behavior-preserving;
* :class:`~repro.state.sqlitestate.SQLiteBackend` — WAL-mode SQLite
  with per-key row transactions instead of a global store lock;
* :mod:`~repro.state.fsio` — the single home of the mkstemp + fsync +
  atomic-rename + quarantine rituals every file-based store shares.
"""

from .backend import BACKEND_KINDS, StateBackend, open_backend
from .filestate import FileBackend, validate_doc_key
from .sqlitestate import SQLiteBackend

__all__ = [
    "BACKEND_KINDS",
    "FileBackend",
    "SQLiteBackend",
    "StateBackend",
    "open_backend",
    "validate_doc_key",
]
