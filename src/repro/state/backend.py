"""The ``StateBackend`` contract: every durable document in one place.

PowerPlay's server-side state is a set of *named JSON documents* in a
handful of *namespaces*:

===========  =============================  ===========================
namespace    key                            written by
===========  =============================  ===========================
``users``    validated username             :class:`repro.web.session.UserStore`
``jobs``     ``job-NNNN`` id                :class:`repro.explore.jobs.JobStore`
``registry``  ``kind--name--vN`` / ``pins``  :class:`repro.registry.store.MirrorStore`
===========  =============================  ===========================

(The telemetry history's sealed segments follow the same atomic-
document discipline via :mod:`repro.state.fsio`, but its fsynced
append-only journal is file-native by design — row-per-append storage
would change its torn-tail recovery semantics, so the history store
stays on the shared file rituals in both backends.)

A :class:`StateBackend` stores those documents.  The contract every
implementation must honor (and that ``tests/state``'s conformance
suite enforces against all of them):

* **atomic, durable saves** — a reader (or a process that crashed and
  restarted) sees either the previous complete document or the new
  complete document, never a torn or interleaved one;
* **last-writer-wins per key**, with :meth:`lock` providing the mutual
  exclusion a read-modify-write cycle needs *within* a process (cross-
  process exclusion is structural: the pre-fork front shards users so
  one worker owns each key — see :mod:`repro.web.prefork`);
* **quarantine, never silent loss** — when a caller finds a document
  unparseable it calls :meth:`quarantine`; the damaged payload is
  moved aside (file: ``*.corrupt[-N]``; SQLite: a quarantine table),
  recorded in :attr:`quarantined`, and the key reads as absent
  afterwards;
* **no invented state** — :meth:`load` returns ``None`` for an absent
  key rather than raising, so stores can lazily create.

Two stdlib-only implementations ship:

* :class:`~repro.state.filestate.FileBackend` — the historical layout,
  extracted verbatim: one ``<key>.json`` per document, mkstemp + fsync
  + atomic rename + directory fsync (:mod:`repro.state.fsio`).
* :class:`~repro.state.sqlitestate.SQLiteBackend` — one SQLite
  database in WAL mode with per-key rows; saves are single-row
  transactions, so writers block on a row, not on a global store lock.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from ..errors import StateError

#: the backend kinds ``open_backend`` (and ``serve --backend``) accept
BACKEND_KINDS = ("file", "sqlite")

#: one quarantine record: (namespace, key, where-the-bytes-went, reason)
QuarantineRecord = Tuple[str, str, str, str]


class StateBackend:
    """Abstract durable document store (see module docstring)."""

    #: which ``BACKEND_KINDS`` entry this implementation is
    kind: str = "abstract"

    def __init__(self) -> None:
        self._key_locks: Dict[Tuple[str, str], threading.RLock] = {}
        self._key_locks_guard = threading.Lock()
        #: every document this backend quarantined since it was opened
        self.quarantined: List[QuarantineRecord] = []

    # -- documents ---------------------------------------------------------

    def save(self, namespace: str, key: str, text: str) -> None:
        """Atomically and durably replace one document."""
        raise NotImplementedError

    def load(self, namespace: str, key: str) -> Optional[str]:
        """The document's current text, or ``None`` when absent."""
        raise NotImplementedError

    def delete(self, namespace: str, key: str) -> bool:
        """Remove one document; ``True`` if it existed."""
        raise NotImplementedError

    def keys(self, namespace: str) -> List[str]:
        """All document keys in a namespace, sorted."""
        raise NotImplementedError

    def mtime(self, namespace: str, key: str) -> Optional[float]:
        """Seconds-epoch of the last save, or ``None`` when absent."""
        raise NotImplementedError

    def quarantine(self, namespace: str, key: str, reason: str) -> str:
        """Move a damaged document aside; returns a location label.

        After this returns, :meth:`load` yields ``None`` for the key
        and the damaged bytes are preserved at the returned location
        (a file path for the file backend, a ``namespace/key@qN`` row
        label for SQLite).  Quarantining an absent key is a no-op that
        returns an empty string.
        """
        raise NotImplementedError

    # -- coordination ------------------------------------------------------

    def lock(self, namespace: str, key: str) -> threading.RLock:
        """The in-process lock serializing read-modify-write on a key.

        Backends share this implementation: one re-entrant lock per
        (namespace, key), created on first use.  This is *in-process*
        mutual exclusion; cross-process exclusion is the pre-fork
        front's user-keyed sharding, not a backend promise.
        """
        ref = (namespace, key)
        with self._key_locks_guard:
            lock = self._key_locks.get(ref)
            if lock is None:
                lock = self._key_locks[ref] = threading.RLock()
            return lock

    # -- lifecycle / health ------------------------------------------------

    def writable(self) -> bool:
        """Can this backend still persist documents?"""
        raise NotImplementedError

    def flush(self) -> None:
        """Push any buffered durability work to disk (default: none)."""

    def close(self) -> None:
        """Release resources (default: none).  Safe to call twice."""

    def quarantined_in(self, namespace: str) -> List[QuarantineRecord]:
        """This backend's quarantine records for one namespace."""
        return [
            record for record in self.quarantined if record[0] == namespace
        ]

    def __enter__(self) -> "StateBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def open_backend(
    spec: Union[str, StateBackend, None], root: Path
) -> StateBackend:
    """Resolve a backend spec to a live backend rooted at ``root``.

    ``spec`` may be an already-open :class:`StateBackend` (returned
    as-is), a kind name from :data:`BACKEND_KINDS`, or ``None``/""
    (the file default).
    """
    if isinstance(spec, StateBackend):
        return spec
    kind = (spec or "file").strip().lower()
    if kind == "file":
        from .filestate import FileBackend

        return FileBackend(Path(root))
    if kind == "sqlite":
        from .sqlitestate import SQLiteBackend

        return SQLiteBackend(Path(root))
    raise StateError(
        f"unknown state backend {spec!r}; choose from {BACKEND_KINDS}"
    )
