"""The file backend: the historical on-disk layout, extracted.

One ``<key>.json`` per document.  The layout is *exactly* what the
stores wrote before the :class:`~repro.state.backend.StateBackend`
interface existed, so a state directory created by any earlier version
opens unchanged under this backend — and files this backend writes are
indistinguishable from the old stores' files:

* ``users``    -> ``<root>/<user>.json`` (sessions live at the root,
  as they have since PR 1);
* ``jobs``     -> ``<root>/jobs/<job-id>.json``;
* ``registry`` -> ``<root>/registry/<kind>--<name>--vN.json`` and
  ``<root>/registry/pins.json``.

Durability is :mod:`repro.state.fsio`'s atomic-write ritual (mkstemp +
fsync + atomic rename + directory fsync); quarantine is the historical
``<key>.json.corrupt[-N]`` rename.  Nothing here takes a global lock
around file IO: ``os.replace`` is atomic per key, so concurrent saves
of *different* keys proceed in parallel, and concurrent saves of the
*same* key are last-writer-wins with no interleaving — the old global
store lock only ever protected Python dict state, which now lives in
the stores, not the backend.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Mapping, Optional

from ..errors import StateError
from . import fsio
from .backend import StateBackend

#: document keys become file names — keep them strictly boring.  The
#: callers already validate (usernames, job ids, artifact refs); this
#: is the backend's own defense in depth.
_KEY_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.@-]{0,127}\Z")

#: namespace -> subdirectory relative to the root.  ``.`` means the
#: root itself (the sessions' historical home).
DEFAULT_LAYOUT: Mapping[str, str] = {"users": "."}


def validate_doc_key(key: str) -> str:
    if not isinstance(key, str) or not _KEY_RE.match(key):
        raise StateError(f"invalid document key {key!r}")
    return key


class FileBackend(StateBackend):
    """Document store over one JSON file per key (see module docstring).

    ``layout`` maps namespaces to subdirectories; unlisted namespaces
    live in a subdirectory named after the namespace.  A store that
    roots its own private backend (``JobStore(path)`` with no shared
    backend) passes ``layout={"jobs": "."}`` so the historical paths
    are preserved exactly.
    """

    kind = "file"

    def __init__(
        self, root: Path, layout: Optional[Mapping[str, str]] = None
    ):
        super().__init__()
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._layout: Dict[str, str] = dict(
            DEFAULT_LAYOUT if layout is None else layout
        )

    # -- paths -------------------------------------------------------------

    def _dir(self, namespace: str) -> Path:
        relative = self._layout.get(namespace, namespace)
        directory = (
            self.root if relative in ("", ".") else self.root / relative
        )
        directory.mkdir(parents=True, exist_ok=True)
        return directory

    def doc_path(self, namespace: str, key: str) -> Path:
        """Where one document lives (file backend only — tests and the
        oracle use this to corrupt/inspect raw bytes)."""
        return self._dir(namespace) / f"{validate_doc_key(key)}.json"

    # -- documents ---------------------------------------------------------

    def save(self, namespace: str, key: str, text: str) -> None:
        fsio.atomic_write_text(self.doc_path(namespace, key), text)

    def load(self, namespace: str, key: str) -> Optional[str]:
        try:
            return self.doc_path(namespace, key).read_text(encoding="utf-8")
        except FileNotFoundError:
            return None

    def delete(self, namespace: str, key: str) -> bool:
        try:
            self.doc_path(namespace, key).unlink()
            return True
        except FileNotFoundError:
            return False

    def keys(self, namespace: str) -> List[str]:
        return sorted(
            path.stem
            for path in self._dir(namespace).glob("*.json")
            if not path.name.startswith(".") and _KEY_RE.match(path.stem)
        )

    def mtime(self, namespace: str, key: str) -> Optional[float]:
        try:
            return self.doc_path(namespace, key).stat().st_mtime
        except OSError:
            return None

    def quarantine(self, namespace: str, key: str, reason: str) -> str:
        path = self.doc_path(namespace, key)
        try:
            target = fsio.quarantine_file(path)
        except OSError:
            return ""
        self.quarantined.append((namespace, key, str(target), reason))
        return str(target)

    # -- lifecycle / health ------------------------------------------------

    def writable(self) -> bool:
        return fsio.probe_writable(self.root)
