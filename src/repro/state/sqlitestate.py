"""The SQLite backend: WAL-journaled documents with per-key rows.

One database (``state.sqlite3`` under the root) holds every namespace
as rows of a single ``documents`` table keyed ``(namespace, key)``.
Compared to the file backend this changes the *concurrency shape*, not
the contract:

* a save is one ``BEGIN IMMEDIATE`` transaction touching one row —
  writers serialize on the database write lock for microseconds per
  document instead of holding a global store lock across serialize +
  fsync, and readers proceed concurrently throughout (WAL);
* durability is ``synchronous=FULL``: the WAL is fsynced at every
  commit, matching the file backend's fsync-before-rename discipline,
  so a ``kill -9`` at any instant yields the previous or the new
  complete row — never a torn one (SQLite's atomic-commit guarantee);
* quarantine moves a row the caller found unparseable into a
  ``quarantine`` table (bytes preserved, key reads absent afterwards)
  and labels it ``namespace/key@qN`` — the moral twin of the file
  backend's ``*.corrupt[-N]`` rename.

Connections are per-thread (SQLite connections are not thread-safe;
WAL is explicitly multi-connection), with a generous busy timeout so
multi-process fronts sharing one database degrade to brief waits, not
errors.  Stdlib only.
"""

from __future__ import annotations

import sqlite3
import threading
import time
from pathlib import Path
from typing import Callable, List, Optional

from ..errors import StateError
from .backend import StateBackend
from .filestate import validate_doc_key

DB_NAME = "state.sqlite3"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS documents (
    namespace  TEXT NOT NULL,
    key        TEXT NOT NULL,
    body       TEXT NOT NULL,
    updated_at REAL NOT NULL,
    PRIMARY KEY (namespace, key)
);
CREATE TABLE IF NOT EXISTS quarantine (
    seq            INTEGER PRIMARY KEY AUTOINCREMENT,
    namespace      TEXT NOT NULL,
    key            TEXT NOT NULL,
    body           TEXT NOT NULL,
    reason         TEXT NOT NULL,
    quarantined_at REAL NOT NULL
);
"""


class SQLiteBackend(StateBackend):
    """Document store over one WAL-mode SQLite database.

    ``clock`` is injectable so freshness (:meth:`mtime`) is
    deterministic in tests, mirroring :class:`MirrorStore`.
    """

    kind = "sqlite"

    def __init__(
        self,
        root: Path,
        busy_timeout_s: float = 30.0,
        clock: Callable[[], float] = time.time,
    ):
        super().__init__()
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.db_path = self.root / DB_NAME
        self.busy_timeout_s = busy_timeout_s
        self.clock = clock
        self._local = threading.local()
        self._connections: List[sqlite3.Connection] = []
        self._connections_guard = threading.Lock()
        self._closed = False
        # open (and migrate) eagerly so a broken database fails the
        # constructor, not the first request handler
        try:
            connection = self._connection()
            connection.executescript(_SCHEMA)
            connection.commit()
        except sqlite3.Error as exc:
            raise StateError(
                f"cannot open SQLite state at {self.db_path}: {exc}"
            ) from exc

    # -- connections -------------------------------------------------------

    def _connection(self) -> sqlite3.Connection:
        if self._closed:
            raise StateError("SQLite backend is closed")
        connection = getattr(self._local, "connection", None)
        if connection is None:
            # check_same_thread=False so close() can close every
            # thread's connection; each connection is still only
            # *used* by the thread that created it
            connection = sqlite3.connect(
                str(self.db_path),
                timeout=self.busy_timeout_s,
                isolation_level=None,  # explicit transactions only
                check_same_thread=False,
            )
            connection.execute("PRAGMA journal_mode=WAL")
            connection.execute("PRAGMA synchronous=FULL")
            connection.execute(
                f"PRAGMA busy_timeout={int(self.busy_timeout_s * 1000)}"
            )
            self._local.connection = connection
            with self._connections_guard:
                self._connections.append(connection)
        return connection

    # -- documents ---------------------------------------------------------

    def save(self, namespace: str, key: str, text: str) -> None:
        validate_doc_key(key)
        connection = self._connection()
        connection.execute("BEGIN IMMEDIATE")
        try:
            connection.execute(
                "INSERT INTO documents (namespace, key, body, updated_at) "
                "VALUES (?, ?, ?, ?) "
                "ON CONFLICT (namespace, key) "
                "DO UPDATE SET body = excluded.body, "
                "updated_at = excluded.updated_at",
                (namespace, key, text, self.clock()),
            )
            connection.execute("COMMIT")
        except BaseException:
            connection.execute("ROLLBACK")
            raise

    def load(self, namespace: str, key: str) -> Optional[str]:
        row = self._connection().execute(
            "SELECT body FROM documents WHERE namespace = ? AND key = ?",
            (namespace, key),
        ).fetchone()
        return None if row is None else row[0]

    def delete(self, namespace: str, key: str) -> bool:
        connection = self._connection()
        connection.execute("BEGIN IMMEDIATE")
        try:
            cursor = connection.execute(
                "DELETE FROM documents WHERE namespace = ? AND key = ?",
                (namespace, key),
            )
            connection.execute("COMMIT")
        except BaseException:
            connection.execute("ROLLBACK")
            raise
        return cursor.rowcount > 0

    def keys(self, namespace: str) -> List[str]:
        rows = self._connection().execute(
            "SELECT key FROM documents WHERE namespace = ? ORDER BY key",
            (namespace,),
        ).fetchall()
        return [row[0] for row in rows]

    def mtime(self, namespace: str, key: str) -> Optional[float]:
        row = self._connection().execute(
            "SELECT updated_at FROM documents "
            "WHERE namespace = ? AND key = ?",
            (namespace, key),
        ).fetchone()
        return None if row is None else float(row[0])

    def quarantine(self, namespace: str, key: str, reason: str) -> str:
        connection = self._connection()
        connection.execute("BEGIN IMMEDIATE")
        try:
            row = connection.execute(
                "SELECT body FROM documents WHERE namespace = ? AND key = ?",
                (namespace, key),
            ).fetchone()
            if row is None:
                connection.execute("COMMIT")
                return ""
            cursor = connection.execute(
                "INSERT INTO quarantine "
                "(namespace, key, body, reason, quarantined_at) "
                "VALUES (?, ?, ?, ?, ?)",
                (namespace, key, row[0], reason, self.clock()),
            )
            connection.execute(
                "DELETE FROM documents WHERE namespace = ? AND key = ?",
                (namespace, key),
            )
            connection.execute("COMMIT")
        except BaseException:
            connection.execute("ROLLBACK")
            raise
        label = f"{namespace}/{key}@q{cursor.lastrowid}"
        self.quarantined.append((namespace, key, label, reason))
        return label

    # -- lifecycle / health ------------------------------------------------

    def writable(self) -> bool:
        try:
            connection = self._connection()
            connection.execute("BEGIN IMMEDIATE")
            connection.execute("ROLLBACK")
            return True
        except (sqlite3.Error, StateError):
            return False

    def flush(self) -> None:
        try:
            self._connection().execute("PRAGMA wal_checkpoint(TRUNCATE)")
        except (sqlite3.Error, StateError):  # pragma: no cover - shutdown race
            pass

    def close(self) -> None:
        self._closed = True
        with self._connections_guard:
            connections, self._connections = self._connections, []
        for connection in connections:
            try:
                connection.close()
            except sqlite3.Error:  # pragma: no cover - already closed
                pass
