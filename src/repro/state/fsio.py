"""The one copy of the crash-safe file discipline.

Before the :mod:`repro.state` package existed, four stores — user
sessions, sweep-job checkpoints, the registry mirror and the telemetry
history — each carried their own cut-and-pasted implementation of the
same three rituals:

* **atomic durable write**: serialize fully before touching any file,
  write to a uniquely named ``mkstemp`` temporary in the *same
  directory*, flush + fsync, ``os.replace`` over the destination, then
  fsync the directory so the rename itself survives a power cut.  A
  ``kill -9`` at any instant leaves either the previous complete file
  or the new complete file — never a torn one, and never an
  interleaving of two concurrent writers.

* **quarantine**: a file that is unreadable anyway (disk damage, manual
  edits, a foreign format) is moved aside to ``<name>.corrupt[-N]``
  rather than deleted or silently reused — the service keeps running
  and the damaged bytes stay on disk for inspection.

* **writability probe**: create-and-unlink a temp file so health
  endpoints can report a read-only disk before a save fails in a
  request handler.

This module is now the single home of those rituals; the stores (and
the :class:`~repro.state.filestate.FileBackend` that fronts them) call
in here.  Behavior is bit-for-bit what the stores did individually —
same temp-name shape, same fsync points, same quarantine naming.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path


def fsync_dir(directory: Path) -> None:
    """Make a rename in ``directory`` durable (directory-entry fsync)."""
    try:
        dir_fd = os.open(str(directory), os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def atomic_write_text(
    path: Path, text: str, durable_dir: bool = True
) -> None:
    """Atomically replace ``path`` with ``text`` (crash- and race-safe).

    The temporary file name is unique per call (``mkstemp``), so
    concurrent writers of the same destination never interleave on a
    shared ``.tmp`` path; the write is fsynced before the atomic rename
    so a crash at any instant leaves either the previous complete file
    or the new complete file; and (unless ``durable_dir=False``) the
    parent directory is fsynced so the rename itself is durable.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.stem}-", suffix=".saving"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    if durable_dir:
        fsync_dir(path.parent)


def quarantine_file(path: Path, suffix: str = ".corrupt") -> Path:
    """Move a damaged file aside to ``<name><suffix>[-N]``; return where.

    The original bytes are preserved (never deleted), and the name is
    made unique so repeated quarantines of the same path keep every
    generation of damage.  Raises ``OSError`` if the rename itself
    fails (e.g. the file vanished), which callers treat as "already
    gone".
    """
    path = Path(path)
    target = path.with_suffix(path.suffix + suffix)
    counter = 0
    while target.exists():
        counter += 1
        target = path.with_suffix(f"{path.suffix}{suffix}-{counter}")
    path.replace(target)
    return target


def probe_writable(directory: Path) -> bool:
    """True when ``directory`` can still accept new files."""
    try:
        fd, tmp_name = tempfile.mkstemp(
            dir=str(directory), prefix=".probe-", suffix=".tmp"
        )
        os.close(fd)
        os.unlink(tmp_name)
        return True
    except OSError:
        return False
