"""Capacity reports: fit recorded history to a projected worker count.

The ROADMAP's scale-out item needs an answer to "how many workers do we
provision for 10k users?" — and the honest answer comes from observed
history, not guesses.  This module reads the
:class:`~repro.obs.history.HistoryStore` a server has been recording
into and, per route:

* reconstructs the **throughput** series (reset-safe req/s from the
  ``powerplay_http_requests_total`` counters, methods summed);
* measures **latency** over the window (mean from the histogram
  ``_sum``/``_count`` increases, p-quantile interpolated from the
  ``_bucket`` increases — the standard Prometheus estimator);
* fits a least-squares **trend** to the throughput and extrapolates it
  over a projection horizon;
* converts the projected load to a **worker count** with Little's law:
  concurrency = rate x mean latency, workers = ceil(concurrency /
  (threads_per_worker x utilization)).

Everything is deterministic for a given store: same files in, same
bytes out (``CapacityReport.to_json()``).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .history import HistoryStore, _round12, _round_t, render_sparkline
from .metrics import parse_series_key

__all__ = [
    "CapacityReport",
    "RouteCapacity",
    "build_capacity_report",
]

#: one worker thread at full utilisation serves 1 unit of concurrency;
#: these defaults mirror a ThreadingHTTPServer worker with headroom
DEFAULT_THREADS_PER_WORKER = 8
DEFAULT_UTILIZATION = 0.6
DEFAULT_HORIZON_S = 7 * 86400.0

_REQUESTS_FAMILY = "powerplay_http_requests_total"
_LATENCY_FAMILY = "powerplay_http_request_seconds"


@dataclass
class RouteCapacity:
    """Observed + projected numbers for one route."""

    route: str
    samples: int
    window_s: float
    requests: float               # total increase over the window
    rps_mean: float
    rps_peak: float
    trend_per_hour: float         # d(rps)/dt fitted, per hour
    rps_projected: float          # rps_peak + trend * horizon (floor 0)
    mean_latency_s: Optional[float]
    quantile_latency_s: Optional[float]
    concurrency: float            # Little's law at projected load
    workers: int
    sparkline: str = ""

    def payload(self) -> Dict[str, object]:
        return {
            "route": self.route,
            "samples": self.samples,
            "window_s": _round_t(self.window_s),
            "requests": _round12(self.requests),
            "rps_mean": _round12(self.rps_mean),
            "rps_peak": _round12(self.rps_peak),
            "trend_per_hour": _round12(self.trend_per_hour),
            "rps_projected": _round12(self.rps_projected),
            "mean_latency_s": None if self.mean_latency_s is None
            else _round12(self.mean_latency_s),
            "quantile_latency_s": None if self.quantile_latency_s is None
            else _round12(self.quantile_latency_s),
            "concurrency": _round12(self.concurrency),
            "workers": self.workers,
            "sparkline": self.sparkline,
        }


@dataclass
class CapacityReport:
    """All routes, plus the fleet-level projection that sizes workers."""

    since: float
    until: float
    horizon_s: float
    threads_per_worker: int
    utilization: float
    quantile: float
    routes: List[RouteCapacity] = field(default_factory=list)

    @property
    def total_workers(self) -> int:
        """Workers to provision: concurrency sums across routes."""
        concurrency = sum(route.concurrency for route in self.routes)
        per_worker = self.threads_per_worker * self.utilization
        if concurrency <= 0 or per_worker <= 0:
            return 1
        return max(1, math.ceil(concurrency / per_worker))

    def payload(self) -> Dict[str, object]:
        return {
            "since": _round_t(self.since),
            "until": _round_t(self.until),
            "horizon_s": _round_t(self.horizon_s),
            "threads_per_worker": self.threads_per_worker,
            "utilization": self.utilization,
            "quantile": self.quantile,
            "total_workers": self.total_workers,
            "routes": [route.payload() for route in self.routes],
        }

    def to_json(self) -> str:
        return json.dumps(self.payload(), sort_keys=True)

    def render_text(self) -> str:
        lines = [
            "Capacity report "
            f"(window {self.window_hours():.2f} h, projection horizon "
            f"{self.horizon_s / 3600:.0f} h, "
            f"{self.threads_per_worker} threads/worker at "
            f"{self.utilization:.0%} utilization)",
            "",
        ]
        header = (
            f"{'route':<22} {'req':>8} {'rps':>9} {'peak':>9} "
            f"{'trend/h':>9} {'proj rps':>9} {'mean ms':>8} "
            f"{'p{:g} ms'.format(self.quantile * 100):>8} "
            f"{'workers':>7}  throughput"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for route in self.routes:
            mean_ms = (
                "-" if route.mean_latency_s is None
                else f"{route.mean_latency_s * 1e3:.2f}"
            )
            quantile_ms = (
                "-" if route.quantile_latency_s is None
                else f"{route.quantile_latency_s * 1e3:.2f}"
            )
            lines.append(
                f"{route.route:<22} {route.requests:>8.0f} "
                f"{route.rps_mean:>9.3f} {route.rps_peak:>9.3f} "
                f"{route.trend_per_hour:>+9.3f} "
                f"{route.rps_projected:>9.3f} {mean_ms:>8} "
                f"{quantile_ms:>8} {route.workers:>7}  "
                f"{route.sparkline}"
            )
        lines.append("-" * len(header))
        lines.append(
            f"provision {self.total_workers} worker(s) for the "
            "projected load"
        )
        return "\n".join(lines)

    def window_hours(self) -> float:
        span = self.until - self.since
        return span / 3600.0 if math.isfinite(span) and span > 0 else 0.0


def _increase(points: Sequence[Tuple[float, float]]) -> float:
    """Reset-safe total increase over a cumulative-counter point list."""
    total = 0.0
    for (_, v0), (_, v1) in zip(points, points[1:]):
        delta = v1 - v0
        total += delta if delta >= 0 else v1
    return total


def _rate_series(
    points: Sequence[Tuple[float, float]],
) -> List[Tuple[float, float]]:
    out: List[Tuple[float, float]] = []
    for (t0, v0), (t1, v1) in zip(points, points[1:]):
        dt = t1 - t0
        if dt <= 0:
            continue
        delta = v1 - v0
        if delta < 0:
            delta = v1
        out.append((t1, delta / dt))
    return out


def _slope_per_second(points: Sequence[Tuple[float, float]]) -> float:
    """Least-squares slope of value over time; 0 with < 2 points."""
    if len(points) < 2:
        return 0.0
    n = float(len(points))
    mean_t = sum(t for t, _ in points) / n
    mean_v = sum(v for _, v in points) / n
    num = sum((t - mean_t) * (v - mean_v) for t, v in points)
    den = sum((t - mean_t) ** 2 for t, _ in points)
    return num / den if den > 0 else 0.0


def _sum_aligned(
    series: Mapping[str, List[Tuple[float, float]]],
) -> List[Tuple[float, float]]:
    """Sum several cumulative series at their shared timestamps.

    Only timestamps present in *every* member contribute — summing a
    mix of present and missing samples would fabricate counter drops.
    """
    if not series:
        return []
    if len(series) == 1:
        return list(next(iter(series.values())))
    common = None
    for points in series.values():
        stamps = {t for t, _ in points}
        common = stamps if common is None else (common & stamps)
    if not common:
        return []
    out: Dict[float, float] = {t: 0.0 for t in common}
    for points in series.values():
        for t, v in points:
            if t in out:
                out[t] += v
    return sorted(out.items())


def _histogram_quantile(
    buckets: Sequence[Tuple[float, float]], q: float,
) -> Optional[float]:
    """Prometheus-style quantile from (upper bound, count-in-window).

    Linear interpolation inside the winning bucket; the +Inf bucket
    reports its lower bound (the standard estimator's behaviour).
    """
    finite = sorted(buckets)
    total = sum(count for _, count in finite)
    if total <= 0:
        return None
    target = q * total
    cumulative = 0.0
    previous_bound = 0.0
    for bound, count in finite:
        if count <= 0:
            previous_bound = bound if math.isfinite(bound) \
                else previous_bound
            continue
        if cumulative + count >= target:
            if not math.isfinite(bound):
                return previous_bound
            fraction = (target - cumulative) / count
            return previous_bound + (bound - previous_bound) * fraction
        cumulative += count
        previous_bound = bound if math.isfinite(bound) else previous_bound
    return previous_bound


def _collect_by_label(
    store: HistoryStore,
    name: str,
    since: Optional[float],
    until: Optional[float],
) -> Dict[str, Dict[str, List[Tuple[float, float]]]]:
    """{route: {series key: points}} for one sample name."""
    result = store.query(name, op="range", since=since, until=until)
    grouped: Dict[str, Dict[str, List[Tuple[float, float]]]] = {}
    for entry in result.series:
        key = str(entry["key"])
        try:
            _, labels = parse_series_key(key)
        except ValueError:
            continue
        route = labels.get("route", "")
        if not route:
            continue
        points = [
            (float(t), float(v)) for t, v in entry.get("points", [])
        ]
        grouped.setdefault(route, {})[key] = points
    return grouped


def build_capacity_report(
    store: HistoryStore,
    since: Optional[float] = None,
    until: Optional[float] = None,
    horizon_s: float = DEFAULT_HORIZON_S,
    threads_per_worker: int = DEFAULT_THREADS_PER_WORKER,
    utilization: float = DEFAULT_UTILIZATION,
    quantile: float = 0.95,
    spark_width: int = 24,
) -> CapacityReport:
    """Fit the recorded history to per-route capacity numbers."""
    if threads_per_worker < 1:
        raise ValueError("threads_per_worker must be >= 1")
    if not 0.0 < utilization <= 1.0:
        raise ValueError("utilization must be within (0, 1]")
    if horizon_s < 0:
        raise ValueError("projection horizon must be >= 0 seconds")

    requests = _collect_by_label(store, _REQUESTS_FAMILY, since, until)
    latency_sum = _collect_by_label(
        store, f"{_LATENCY_FAMILY}_sum", since, until
    )
    latency_count = _collect_by_label(
        store, f"{_LATENCY_FAMILY}_count", since, until
    )
    latency_bucket = _collect_by_label(
        store, f"{_LATENCY_FAMILY}_bucket", since, until
    )

    observed_since = math.inf
    observed_until = -math.inf
    routes: List[RouteCapacity] = []
    for route in sorted(requests):
        summed = _sum_aligned(requests[route])
        if len(summed) < 2:
            continue
        observed_since = min(observed_since, summed[0][0])
        observed_until = max(observed_until, summed[-1][0])
        window_s = summed[-1][0] - summed[0][0]
        total = _increase(summed)
        rates = _rate_series(summed)
        rps_values = [v for _, v in rates]
        rps_mean = (
            total / window_s if window_s > 0 else 0.0
        )
        rps_peak = max(rps_values, default=rps_mean)
        slope = _slope_per_second(rates)
        projected = max(0.0, rps_peak + slope * horizon_s)

        mean_latency: Optional[float] = None
        sum_points = _sum_aligned(latency_sum.get(route, {}))
        count_points = _sum_aligned(latency_count.get(route, {}))
        count_increase = _increase(count_points)
        if count_increase > 0:
            mean_latency = _increase(sum_points) / count_increase

        quantile_latency: Optional[float] = None
        bucket_increases: List[Tuple[float, float]] = []
        for key, points in sorted(latency_bucket.get(route, {}).items()):
            try:
                _, labels = parse_series_key(key)
                bound = float(labels.get("le", "nan"))
            except ValueError:
                continue
            if math.isnan(bound):
                continue
            bucket_increases.append((bound, _increase(points)))
        if bucket_increases:
            # exposition buckets are cumulative; the estimator wants
            # per-bucket occupancy
            bucket_increases.sort()
            occupancy = []
            previous = 0.0
            for bound, cumulative in bucket_increases:
                occupancy.append((bound, max(0.0, cumulative - previous)))
                previous = cumulative
            quantile_latency = _histogram_quantile(occupancy, quantile)

        service_time = mean_latency if mean_latency is not None else 0.0
        concurrency = projected * service_time
        per_worker = threads_per_worker * utilization
        workers = max(1, math.ceil(concurrency / per_worker)) \
            if concurrency > 0 else 1

        routes.append(RouteCapacity(
            route=route,
            samples=len(summed),
            window_s=window_s,
            requests=total,
            rps_mean=rps_mean,
            rps_peak=rps_peak,
            trend_per_hour=slope * 3600.0,
            rps_projected=projected,
            mean_latency_s=mean_latency,
            quantile_latency_s=quantile_latency,
            concurrency=concurrency,
            workers=workers,
            sparkline=render_sparkline(rps_values, width=spark_width),
        ))

    if observed_since == math.inf:
        observed_since = 0.0 if since is None else float(since)
        observed_until = 0.0 if until is None else float(until)
    return CapacityReport(
        since=observed_since if since is None else float(since),
        until=observed_until if until is None else float(until),
        horizon_s=horizon_s,
        threads_per_worker=threads_per_worker,
        utilization=utilization,
        quantile=quantile,
        routes=routes,
    )
