"""Fleet telemetry: scrape peers' ``/metrics`` + ``/healthz``, merge.

The paper's architecture is many cooperating PowerPlay servers; PR 6
made that federation real.  This module answers "is the *fleet*
healthy?" without ssh: a :class:`FleetScraper` pulls the Prometheus
exposition text and the health JSON from each configured peer over the
same retry/breaker/trace-propagating client the registry sync uses
(one breaker per peer — a dead node is skipped fast and is *visible*
as a breaker state in the dashboard, not a hang), then merges every
node's metrics deterministically:

* counters and histogram series **sum** per series key (label-joined;
  histograms must be bucket-aligned or the merge refuses),
* gauges take the **max** (state-coded gauges: worst node wins),
* nodes merge in sorted-name order, so the aggregate JSON is
  byte-identical no matter which scrape finished first.

The scrape side needs no new peer endpoint: ``parse_exposition`` reads
the standard text format back into the exact shape
:meth:`~repro.obs.metrics.MetricsRegistry.export_state` produces, so
"merge local state with scraped peers" is one code path
(:func:`~repro.obs.metrics.merge_states`).
"""

from __future__ import annotations

import json
import math
import re
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from .logs import get_logger
from .metrics import merge_states
from .trace import span

__all__ = [
    "FleetNode",
    "FleetReport",
    "FleetScraper",
    "family_quantile",
    "parse_exposition",
    "validate_peer_url",
]

_LOG = get_logger("obs.fleet")

_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)\s*$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

#: histogram child-series suffixes, used to map a sample back to its
#: family name (``x_bucket`` belongs to histogram ``x``)
_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def validate_peer_url(url: str) -> str:
    """Validate and normalize a fleet peer base URL.

    Returns the URL with any trailing slash stripped.  Raises
    :class:`ValueError` with a message naming what is wrong — a bad
    ``--peer`` must fail at parse time with a clear error, not minutes
    later as an opaque first-scrape circuit-breaker trip.
    """
    from urllib.parse import urlsplit

    url = (url or "").strip()
    if not url:
        raise ValueError("peer URL is empty")
    try:
        parts = urlsplit(url)
    except ValueError as exc:
        raise ValueError(f"peer URL {url!r} does not parse: {exc}")
    if parts.scheme not in ("http", "https"):
        raise ValueError(
            f"peer URL {url!r} needs an http:// or https:// scheme"
        )
    if not parts.hostname:
        raise ValueError(f"peer URL {url!r} has no host")
    try:
        parts.port  # noqa: B018 - property access raises on bad ports
    except ValueError:
        raise ValueError(f"peer URL {url!r} has an invalid port")
    return url.rstrip("/")


def _unescape(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _parse_number(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)


def parse_exposition(text: str) -> Dict[str, Dict[str, object]]:
    """Prometheus text format -> the ``export_state`` dict shape.

    ``{family name: {"kind": ..., "series": {series key: value}}}``
    with series keys rebuilt canonically (labels re-sorted, values
    re-escaped), so a scraped peer and a local
    :meth:`~repro.obs.metrics.MetricsRegistry.export_state` compare and
    merge key-for-key.  Unparseable lines are skipped, not fatal — a
    half-upgraded peer exposing an unknown sample must not blind the
    whole dashboard.
    """
    from .metrics import _series_key  # canonical key builder

    kinds: Dict[str, str] = {}
    state: Dict[str, Dict[str, object]] = {}
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) >= 4:
                kinds[parts[2]] = parts[3]
                state.setdefault(
                    parts[2], {"kind": parts[3], "series": {}}
                )
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            continue
        sample_name, label_text, value_text = match.groups()
        try:
            value = _parse_number(value_text)
        except ValueError:
            continue
        labels: Dict[str, str] = {}
        if label_text:
            for label_match in _LABEL_RE.finditer(label_text):
                labels[label_match.group(1)] = _unescape(
                    label_match.group(2)
                )
        family = sample_name
        if sample_name not in kinds:
            for suffix in _HISTOGRAM_SUFFIXES:
                base = sample_name[: -len(suffix)]
                if sample_name.endswith(suffix) and kinds.get(base) == (
                    "histogram"
                ):
                    family = base
                    break
        entry = state.setdefault(
            family, {"kind": kinds.get(family, "untyped"), "series": {}}
        )
        entry["series"][_series_key(sample_name, labels)] = value  # type: ignore[index]
    return state


def family_quantile(
    family: Mapping[str, object], q: float
) -> Optional[float]:
    """Estimate a quantile from a merged histogram family.

    Sums the ``_bucket`` series across label sets (fleet-wide view),
    then linearly interpolates inside the winning bucket — the same
    estimator as ``loadgen.stats.histogram_quantile``, applied to the
    merged series dict instead of a live :class:`Histogram`.  Returns
    ``None`` when the family has no observations.  An answer that
    lands in the ``+Inf`` bucket clamps to the highest finite bound.
    """
    if family.get("kind") != "histogram":
        return None
    totals: Dict[float, float] = {}
    for key, value in family.get("series", {}).items():  # type: ignore[union-attr]
        start = key.find('le="')
        if start < 0 or "_bucket" not in key:
            continue
        end = key.find('"', start + 4)
        bound_text = key[start + 4:end]
        bound = math.inf if bound_text == "+Inf" else float(bound_text)
        totals[bound] = totals.get(bound, 0.0) + float(value)  # type: ignore[arg-type]
    if not totals:
        return None
    bounds = sorted(totals)
    total = totals[bounds[-1]]
    if total <= 0:
        return None
    rank = q * total
    previous_bound = 0.0
    previous_count = 0.0
    finite = [bound for bound in bounds if bound != math.inf]
    for bound in bounds:
        count = totals[bound]
        if count >= rank:
            if bound == math.inf:
                return finite[-1] if finite else None
            if count == previous_count:
                return bound
            fraction = (rank - previous_count) / (count - previous_count)
            return previous_bound + fraction * (bound - previous_bound)
        previous_bound = bound if bound != math.inf else previous_bound
        previous_count = count
    return finite[-1] if finite else None


@dataclass
class FleetNode:
    """One node's scrape result (or failure)."""

    name: str
    url: str
    ok: bool = False
    error: str = ""
    breaker_state: str = "closed"
    health: Optional[Dict[str, object]] = None
    metrics: Dict[str, Dict[str, object]] = field(default_factory=dict)

    @property
    def health_state(self) -> str:
        if not self.ok or not isinstance(self.health, dict):
            return "unreachable"
        return str(self.health.get("status", "unknown"))

    @property
    def slo_state(self) -> str:
        if not self.ok or not isinstance(self.health, dict):
            return "unknown"
        slo = self.health.get("slo")
        if isinstance(slo, dict):
            return str(slo.get("state", "unknown"))
        return "unknown"

    def requests_total(self) -> float:
        family = self.metrics.get("powerplay_http_requests_total", {})
        return sum(
            float(value)  # type: ignore[arg-type]
            for value in family.get("series", {}).values()  # type: ignore[union-attr]
        )

    def to_payload(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "url": self.url,
            "ok": self.ok,
            "error": self.error,
            "breaker": self.breaker_state,
            "health": self.health_state,
            "slo": self.slo_state,
            "requests_total": self.requests_total(),
        }


@dataclass
class FleetReport:
    """Everything one scrape round learned, plus the merged aggregate."""

    nodes: List[FleetNode]
    aggregate: Dict[str, Dict[str, object]]
    skipped: List[str] = field(default_factory=list)  # unmergeable families
    duration_s: float = 0.0

    @property
    def reachable(self) -> int:
        return sum(1 for node in self.nodes if node.ok)

    @property
    def fleet_state(self) -> str:
        """Worst SLO state across reachable nodes (scrape failures are
        surfaced separately as unreachable, not folded into SLO)."""
        order = ("ok", "warn", "page")
        worst = 0
        for node in self.nodes:
            state = node.slo_state
            if state in order:
                worst = max(worst, order.index(state))
        return order[worst]

    def aggregate_requests_total(self) -> float:
        family = self.aggregate.get("powerplay_http_requests_total", {})
        return sum(
            float(value)  # type: ignore[arg-type]
            for value in family.get("series", {}).values()  # type: ignore[union-attr]
        )

    def latency_quantiles(self) -> Dict[str, Optional[float]]:
        family = self.aggregate.get("powerplay_http_request_seconds", {})
        return {
            "p50": family_quantile(family, 0.50),
            "p95": family_quantile(family, 0.95),
            "p99": family_quantile(family, 0.99),
        }

    def to_payload(self) -> Dict[str, object]:
        """Canonical JSON shape; serialize with ``sort_keys=True`` and
        the bytes are arrival-order-independent."""
        return {
            "fleet": {
                "state": self.fleet_state,
                "nodes": [node.to_payload() for node in self.nodes],
                "reachable": self.reachable,
                "aggregate": self.aggregate,
                "skipped_families": sorted(self.skipped),
            }
        }

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), sort_keys=True, indent=1)


class _PeerClient:
    """Breaker + retry guarded scrape transport for one peer."""

    def __init__(self, name: str, url: str, timeout: float):
        # imported here: obs is a foundation layer; repro.web imports
        # obs at module load, so the reverse import must stay lazy
        from ..web.client import Browser
        from ..web.resilience import CircuitBreaker, RetryPolicy

        self.name = name
        self.url = validate_peer_url(url)
        self.browser = Browser(self.url, timeout=timeout)
        self.retry_policy = RetryPolicy()
        self.breaker = CircuitBreaker(name=f"fleet:{self.url}")

    def scrape(self) -> Tuple[Dict[str, object], str]:
        """(health payload, metrics text) — raises on failure."""
        from ..errors import TransientRemoteError

        def fetch() -> Tuple[Dict[str, object], str]:
            metrics_text = self.browser.get_text("/metrics")
            # /healthz is fetched as a page, not JSON: a failing node
            # answers 503 with a JSON body, and that body is the point
            health_page = self.browser.get("/healthz")
            try:
                health = json.loads(health_page.body)
            except json.JSONDecodeError:
                health = {"status": f"http-{health_page.status}"}
            if not isinstance(health, dict):
                health = {"status": "malformed"}
            return health, metrics_text

        def attempt() -> Tuple[Dict[str, object], str]:
            with span("fleet_scrape_attempt", url=self.url):
                return self.breaker.call(
                    fetch, failure_types=(TransientRemoteError, OSError)
                )

        return self.retry_policy.call(attempt)


class FleetScraper:
    """Scrapes a set of peers and merges their telemetry.

    ``peers`` is ``[(name, base_url), ...]``; names must be unique
    (they key the deterministic merge order).  ``local`` optionally
    names a callable returning ``(health payload, export_state dict)``
    for the hosting server itself, so the dashboard always includes
    the node you asked — even with zero configured peers.
    """

    def __init__(
        self,
        peers: Sequence[Tuple[str, str]],
        timeout: float = 5.0,
        local: Optional[
            Callable[[], Tuple[Dict[str, object], Dict[str, object]]]
        ] = None,
        local_name: str = "self",
        clock: Callable[[], float] = time.monotonic,
    ):
        names = [name for name, _ in peers]
        if len(set(names)) != len(names):
            raise ValueError("fleet peer names must be unique")
        if local is not None and local_name in names:
            raise ValueError(
                f"peer name {local_name!r} collides with the local node"
            )
        self.clients = [
            _PeerClient(name, url, timeout) for name, url in peers
        ]
        self.local = local
        self.local_name = local_name
        self.clock = clock

    def scrape(self) -> FleetReport:
        """One scrape round: every peer once, then one merge."""
        started = self.clock()
        nodes: List[FleetNode] = []
        with span("fleet_scrape", peers=len(self.clients)):
            if self.local is not None:
                node = FleetNode(name=self.local_name, url="(local)")
                try:
                    health, state = self.local()
                    node.ok = True
                    node.health = health
                    node.metrics = state  # type: ignore[assignment]
                except Exception as exc:  # noqa: BLE001 - keep scraping
                    node.error = f"{type(exc).__name__}: {exc}"
                nodes.append(node)
            for client in self.clients:
                node = FleetNode(name=client.name, url=client.url)
                try:
                    health, text = client.scrape()
                    node.ok = True
                    node.health = health
                    node.metrics = parse_exposition(text)
                except Exception as exc:  # noqa: BLE001 - a dead peer
                    # is a *finding*, not a scrape failure
                    node.error = f"{type(exc).__name__}: {exc}"
                node.breaker_state = client.breaker.state
                nodes.append(node)
        nodes.sort(key=lambda item: item.name)
        aggregate, skipped = self._merge(nodes)
        report = FleetReport(
            nodes=nodes,
            aggregate=aggregate,
            skipped=skipped,
            duration_s=self.clock() - started,
        )
        _LOG.info(
            "fleet_scrape",
            nodes=len(nodes),
            reachable=report.reachable,
            state=report.fleet_state,
            duration_ms=round(report.duration_s * 1e3, 1),
        )
        return report

    @staticmethod
    def _merge(
        nodes: Sequence[FleetNode],
    ) -> Tuple[Dict[str, Dict[str, object]], List[str]]:
        """Merge reachable nodes family-by-family (sorted node order).

        A family that refuses to merge (bucket-bound or kind mismatch
        across nodes) is dropped and *named* in ``skipped`` — a partial
        aggregate that admits what it dropped beats a wrong one.
        """
        states = [node.metrics for node in nodes if node.ok]
        skipped: List[str] = []
        try:
            return merge_states(states), skipped
        except ValueError:
            pass
        family_names = sorted(
            {name for state in states for name in state}
        )
        merged: Dict[str, Dict[str, object]] = {}
        for name in family_names:
            partial = [
                {name: state[name]} for state in states if name in state
            ]
            try:
                merged.update(merge_states(partial))
            except ValueError as exc:
                skipped.append(name)
                _LOG.warning(
                    "fleet_merge_skip", family=name, reason=str(exc)
                )
        return merged, skipped
