"""Durable telemetry history: a crash-safe time-series store.

The live observability plane (``/metrics``, SLO burn windows, the
``/fleet`` view) is in-memory and point-in-time — a restart forgets
everything.  This module adds the longitudinal half: a stdlib-only
time-series store that periodically samples the metrics registry into
append-only files, survives ``kill -9`` at any instant, and answers
"what did p95 look like over the last week of soaks?" after arbitrarily
many restarts.

Layout under the history root::

    <root>/
        active.jsonl                # append-only journal of raw rounds
        segments/
            raw-<start>-<end>.json  # sealed raw segment (delta-encoded)
            m1-<start>-<end>.json   # 1-minute rollup of one raw segment
            m15-<start>.json        # 15-minute rollup of a 6h window
            *.corrupt[-N]           # quarantined, never read again

Durability contract (mirrors the JobStore / flight recorder):

* every sampling round is one JSON line appended to ``active.jsonl``
  and fsynced; a crash can tear at most the line being written, and
  recovery drops exactly that torn tail;
* every ``seal_every`` rounds the journal is rewritten as a sealed
  *segment* via mkstemp + fsync + atomic rename + directory fsync, so
  sealed samples can never be lost or half-written;
* unreadable segments are quarantined aside (``.corrupt`` suffix) and
  skipped — one bad file never hides the good ones;
* compaction (raw -> 1m -> 15m rollups) is resumable: each output name
  is a pure function of its inputs, an output that already exists is
  never rewritten, so re-running after a kill at any point converges to
  the same bytes with no loss and no double counting.

Raw segments are column-oriented and delta-encoded: timestamps as
``[t0, t1-t0, ...]`` and each series as ``[v0, v1-v0, ...]``.  Counter
resets appear as negative deltas and are preserved verbatim — *reads*
are reset-safe (``increase``/``rate`` treat a negative delta as a
restart and count the post-reset value once, exactly like the SLO
window logic).

Everything is wall-clock timestamped (``time.time``) because history
must line up across restarts; clocks are injectable for tests.
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable, Dict, List, Mapping, Optional, Sequence, Tuple,
)

from .logs import get_logger
from .metrics import Counter, Gauge, parse_series_key
from ..state import fsio
from .recorder import _atomic_write

__all__ = [
    "HistoryConfig",
    "HistoryError",
    "HistoryRecorder",
    "HistoryStore",
    "QueryResult",
    "render_sparkline",
]

_LOG = get_logger("obs.history")

#: wire format tag written into every sealed file
SEGMENT_FORMAT = "powerplay-history-segment/1"

#: rollup bucket widths, seconds
M1_BUCKET_S = 60
M15_BUCKET_S = 900
#: one 15m rollup file covers a 6h window of 1m rollups
M15_WINDOW_S = 21600

_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


class HistoryError(Exception):
    """Raised on invalid queries or unusable history roots."""


def _metric_rounds() -> Counter:
    from . import metrics as m

    return m.get_registry().counter(
        "powerplay_history_rounds_total",
        "History sampling rounds recorded.",
    )


def _metric_files() -> Counter:
    from . import metrics as m

    return m.get_registry().counter(
        "powerplay_history_files_total",
        "History file operations by kind.",
        labelnames=("op",),
    )


def _metric_last_sample() -> Gauge:
    from . import metrics as m

    return m.get_registry().gauge(
        "powerplay_history_last_sample_seconds",
        "Duration of the most recent history sampling round.",
    )


@dataclass(frozen=True)
class HistoryConfig:
    """Retention and sealing knobs, all in seconds/rounds.

    Defaults size for a multi-day soak at a 5 s sampling interval:
    ~2 h of raw samples, a day of 1-minute rollups, and 15-minute
    rollups kept for a month.
    """

    interval_s: float = 5.0
    seal_every: int = 120             # rounds per sealed raw segment
    raw_retention_s: float = 7200.0
    m1_retention_s: float = 86400.0
    m15_retention_s: float = 86400.0 * 31
    fsync_journal: bool = True

    def validated(self) -> "HistoryConfig":
        if self.interval_s <= 0:
            raise HistoryError("history interval must be > 0 seconds")
        if self.seal_every < 1:
            raise HistoryError("seal_every must be >= 1 round")
        if not (
            self.raw_retention_s > 0
            and self.m1_retention_s > 0
            and self.m15_retention_s > 0
        ):
            raise HistoryError("retention windows must be > 0 seconds")
        return self


def _flatten_state(
    state: Mapping[str, Mapping[str, object]],
) -> Tuple[Dict[str, str], Dict[str, float]]:
    """``export_state()`` -> (family kinds, flat {series key: value})."""
    kinds: Dict[str, str] = {}
    flat: Dict[str, float] = {}
    for family in sorted(state):
        info = state[family]
        kinds[family] = str(info.get("kind", "untyped"))
        series = info.get("series", {})
        if isinstance(series, Mapping):
            for key in series:
                try:
                    flat[str(key)] = float(series[key])  # type: ignore[index]
                except (TypeError, ValueError):
                    continue
    return kinds, flat


def _family_of(sample_name: str, kinds: Mapping[str, str]) -> str:
    """Map a sample name back to its family (histogram suffixes fold)."""
    if sample_name in kinds:
        return sample_name
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if base in kinds:
                return base
    return sample_name


def _encode_deltas(values: Sequence[float]) -> List[float]:
    out: List[float] = []
    previous = 0.0
    for index, value in enumerate(values):
        out.append(value if index == 0 else value - previous)
        previous = value
    return [_round12(v) for v in out]


def _decode_deltas(deltas: Sequence[float]) -> List[float]:
    out: List[float] = []
    total = 0.0
    for index, delta in enumerate(deltas):
        total = delta if index == 0 else _round12(total + delta)
        out.append(total)
    return out


def _round12(value: float) -> float:
    """Bound float noise so encode/decode round-trips byte-identically."""
    return round(float(value), 12)


@dataclass
class _Segment:
    """One sealed file, indexed by name; payload loaded lazily."""

    path: Path
    level: str          # "raw" | "m1" | "m15"
    start: float
    end: float

    @property
    def name(self) -> str:
        return self.path.name


@dataclass
class QueryResult:
    """One query answer; ``payload()`` is deterministic (sorted keys)."""

    name: str
    op: str
    since: float
    until: float
    series: List[Dict[str, object]] = field(default_factory=list)

    def payload(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "op": self.op,
            "since": _round_t(self.since),
            "until": _round_t(self.until),
            "series": self.series,
        }

    def to_json(self) -> str:
        return json.dumps(self.payload(), sort_keys=True)


def _round_t(value: float) -> float:
    """Timestamps to ms precision: stable bytes across replays."""
    return round(float(value), 3)


def _segment_name(level: str, start: float, end: float) -> str:
    if level == "m15":
        return f"m15-{int(start * 1000):013d}.json"
    return f"{level}-{int(start * 1000):013d}-{int(end * 1000):013d}.json"


def _parse_segment_name(name: str) -> Optional[Tuple[str, float, float]]:
    stem, dot, ext = name.partition(".")
    if ext != "json":
        return None
    parts = stem.split("-")
    if parts[0] in ("raw", "m1") and len(parts) == 3:
        try:
            return parts[0], int(parts[1]) / 1000.0, int(parts[2]) / 1000.0
        except ValueError:
            return None
    if parts[0] == "m15" and len(parts) == 2:
        try:
            start = int(parts[1]) / 1000.0
        except ValueError:
            return None
        return "m15", start, start + M15_WINDOW_S
    return None


class HistoryStore:
    """Crash-safe on-disk telemetry history with query + compaction.

    Thread-safe: one internal lock serializes append/seal/compact
    against queries.  All mutation happens through :meth:`append`,
    :meth:`seal` and :meth:`compact`; everything else is read-only.
    """

    def __init__(
        self,
        root: Path,
        config: Optional[HistoryConfig] = None,
        clock: Callable[[], float] = time.time,
    ):
        self.root = Path(root)
        self.config = (config or HistoryConfig()).validated()
        self.clock = clock
        self.segments_dir = self.root / "segments"
        self.journal_path = self.root / "active.jsonl"
        self.quarantined: List[Tuple[str, str]] = []
        self._lock = threading.RLock()
        self._active: List[Tuple[float, Dict[str, str], Dict[str, float]]] = []
        self._journal_handle = None
        self.root.mkdir(parents=True, exist_ok=True)
        self.segments_dir.mkdir(parents=True, exist_ok=True)
        self._segments: Dict[str, _Segment] = {}
        self._scan_segments()
        self._recover_journal()

    # ------------------------------------------------------------------
    # startup / recovery

    def _scan_segments(self) -> None:
        self._segments.clear()
        for path in sorted(self.segments_dir.iterdir()):
            if path.name.startswith("."):
                continue
            parsed = _parse_segment_name(path.name)
            if parsed is None:
                if path.suffix == ".json" or ".corrupt" not in path.name:
                    self._quarantine(path, "unrecognized segment name")
                continue
            level, start, end = parsed
            self._segments[path.name] = _Segment(path, level, start, end)

    def _recover_journal(self) -> None:
        """Reload parseable journal rounds; drop the torn tail.

        Rounds at or before the newest sealed raw segment's end are
        duplicates of a seal that crashed before truncating the journal
        — they are dropped too, so replaying recovery is idempotent.
        """
        self._active = []
        sealed_until = max(
            (seg.end for seg in self._segments.values()
             if seg.level == "raw"), default=-math.inf,
        )
        torn = False
        if self.journal_path.exists():
            raw = self.journal_path.read_bytes()
            for line in raw.split(b"\n"):
                if not line.strip():
                    continue
                try:
                    payload = json.loads(line.decode("utf-8"))
                    when = float(payload["t"])
                    kinds = {
                        str(k): str(v) for k, v in payload["f"].items()
                    }
                    flat = {
                        str(k): float(v) for k, v in payload["s"].items()
                    }
                except (ValueError, KeyError, TypeError,
                        UnicodeDecodeError):
                    torn = True
                    break
                if when > sealed_until:
                    self._active.append((when, kinds, flat))
        if torn:
            _LOG.warning(
                "journal_torn_tail", kept_rounds=len(self._active),
            )
            self._rewrite_journal()

    def _rewrite_journal(self) -> None:
        """Persist the in-memory rounds as the whole journal (atomic)."""
        text = "".join(
            self._journal_line(when, kinds, flat)
            for when, kinds, flat in self._active
        )
        self._close_journal()
        _atomic_write(self.journal_path, text)

    @staticmethod
    def _journal_line(
        when: float, kinds: Mapping[str, str], flat: Mapping[str, float],
    ) -> str:
        return json.dumps(
            {"t": _round_t(when), "f": dict(kinds), "s": dict(flat)},
            sort_keys=True,
        ) + "\n"

    def _close_journal(self) -> None:
        if self._journal_handle is not None:
            try:
                self._journal_handle.close()
            except OSError:  # pragma: no cover - close after fs error
                pass
            self._journal_handle = None

    def close(self) -> None:
        with self._lock:
            self._close_journal()

    def _quarantine(self, path: Path, reason: str) -> None:
        try:
            target = fsio.quarantine_file(path)
        except OSError:  # pragma: no cover - concurrent removal
            return
        self.quarantined.append((path.name, reason))
        _metric_files().inc(op="quarantine")
        _LOG.warning(
            "segment_quarantine", file=path.name, moved_to=target.name,
            reason=reason,
        )

    # ------------------------------------------------------------------
    # writes

    def append(
        self, state: Mapping[str, Mapping[str, object]],
        when: Optional[float] = None,
    ) -> float:
        """Record one sampling round; returns its timestamp.

        The round is journaled durably before this returns (flushed,
        and fsynced unless ``fsync_journal=False``); a seal is triggered
        automatically every ``seal_every`` rounds.
        """
        with self._lock:
            now = self.clock() if when is None else float(when)
            if self._active and now <= self._active[-1][0]:
                # monotonic guard: a clock step backwards must not
                # interleave samples out of order inside a segment
                now = math.nextafter(self._active[-1][0], math.inf)
            kinds, flat = _flatten_state(state)
            line = self._journal_line(now, kinds, flat)
            if self._journal_handle is None:
                self._journal_handle = open(
                    self.journal_path, "a", encoding="utf-8"
                )
            self._journal_handle.write(line)
            self._journal_handle.flush()
            if self.config.fsync_journal:
                os.fsync(self._journal_handle.fileno())
            self._active.append((now, kinds, flat))
            _metric_rounds().inc()
            if len(self._active) >= self.config.seal_every:
                self.seal()
            return now

    def seal(self) -> Optional[Path]:
        """Seal buffered journal rounds into one raw segment file.

        Crash windows: dying *before* the atomic rename leaves only the
        journal (recovery replays it); dying *after* the rename but
        before the journal truncation leaves both — recovery drops the
        journal rounds the segment already covers.  Either way no
        sealed sample is ever lost.
        """
        with self._lock:
            if not self._active:
                return None
            payload = self._encode_raw_segment(self._active)
            path = self.segments_dir / _segment_name(
                "raw", self._active[0][0], self._active[-1][0]
            )
            _atomic_write(path, json.dumps(payload, sort_keys=True))
            _metric_files().inc(op="seal")
            self._segments[path.name] = _Segment(
                path, "raw", self._active[0][0], self._active[-1][0]
            )
            self._active = []
            self._close_journal()
            try:
                self.journal_path.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
            return path

    @staticmethod
    def _encode_raw_segment(
        rounds: Sequence[Tuple[float, Dict[str, str], Dict[str, float]]],
    ) -> Dict[str, object]:
        times = [when for when, _, _ in rounds]
        kinds: Dict[str, str] = {}
        for _, round_kinds, _ in rounds:
            kinds.update(round_kinds)
        series: Dict[str, Dict[str, object]] = {}
        for key in sorted({
            key for _, _, flat in rounds for key in flat
        }):
            start_index: Optional[int] = None
            values: List[float] = []
            for index, (_, _, flat) in enumerate(rounds):
                if key in flat:
                    if start_index is None:
                        start_index = index
                    values.append(flat[key])
                elif start_index is not None:
                    # gap inside a run: carry the last value forward so
                    # columns stay aligned (registries never drop
                    # series, so this is a theoretical path)
                    values.append(values[-1])
            series[key] = {
                "start": start_index or 0,
                "values": _encode_deltas(values),
            }
        return {
            "format": SEGMENT_FORMAT,
            "level": "raw",
            "start": _round_t(times[0]),
            "end": _round_t(times[-1]),
            "rounds": len(rounds),
            "times": _encode_deltas(times),
            "families": kinds,
            "series": series,
        }

    # ------------------------------------------------------------------
    # reads (segment loading)

    def _load_segment(self, segment: _Segment) -> Optional[Dict[str, object]]:
        try:
            payload = json.loads(segment.path.read_text(encoding="utf-8"))
            if payload.get("format") != SEGMENT_FORMAT:
                raise ValueError("wrong format tag")
            if payload.get("level") != segment.level:
                raise ValueError("level does not match file name")
            if not isinstance(payload.get("series"), dict):
                raise ValueError("series table missing")
            return payload
        except (ValueError, OSError, UnicodeDecodeError) as exc:
            self._segments.pop(segment.name, None)
            self._quarantine(segment.path, f"unreadable: {exc}")
            return None

    def _raw_rounds(
        self, since: float = -math.inf, until: float = math.inf,
    ) -> List[Tuple[float, Dict[str, str], Dict[str, float]]]:
        """All raw rounds (sealed + active) in [since, until], ordered."""
        out: List[Tuple[float, Dict[str, str], Dict[str, float]]] = []
        with self._lock:
            for segment in self._sorted_segments("raw"):
                if segment.end < since or segment.start > until:
                    continue
                payload = self._load_segment(segment)
                if payload is None:
                    continue
                try:
                    out.extend(
                        self._decode_raw_rounds(payload, since, until)
                    )
                except (ValueError, TypeError, KeyError, IndexError):
                    self._segments.pop(segment.name, None)
                    self._quarantine(segment.path, "malformed columns")
            for when, kinds, flat in self._active:
                if since <= when <= until:
                    out.append((when, kinds, flat))
        out.sort(key=lambda item: item[0])
        return out

    @staticmethod
    def _decode_raw_rounds(
        payload: Mapping[str, object], since: float, until: float,
    ) -> List[Tuple[float, Dict[str, str], Dict[str, float]]]:
        times = _decode_deltas(payload.get("times", []))  # type: ignore[arg-type]
        kinds = {
            str(k): str(v)
            for k, v in payload.get("families", {}).items()  # type: ignore[union-attr]
        }
        columns: List[Tuple[str, int, List[float]]] = []
        for key, entry in payload.get("series", {}).items():  # type: ignore[union-attr]
            start = int(entry.get("start", 0))
            values = _decode_deltas(entry.get("values", []))
            columns.append((str(key), start, values))
        rounds: List[Tuple[float, Dict[str, str], Dict[str, float]]] = []
        for index, when in enumerate(times):
            if not (since <= when <= until):
                continue
            flat: Dict[str, float] = {}
            for key, start, values in columns:
                offset = index - start
                if 0 <= offset < len(values):
                    flat[key] = values[offset]
            rounds.append((when, kinds, flat))
        return rounds

    def _sorted_segments(self, level: str) -> List[_Segment]:
        return sorted(
            (seg for seg in self._segments.values() if seg.level == level),
            key=lambda seg: (seg.start, seg.name),
        )

    # ------------------------------------------------------------------
    # compaction

    def compact(self, now: Optional[float] = None) -> Dict[str, int]:
        """Run one full compaction + retention pass; returns op counts.

        Deterministic and resumable: output names derive from input
        names, outputs that already exist are never rewritten (a crash
        between write and source-unlink just finishes the unlink on the
        next pass), and retention only ever deletes whole sealed files.
        """
        with self._lock:
            now = self.clock() if now is None else float(now)
            counts = {"m1": 0, "m15": 0, "expired": 0}
            counts["m1"] = self._compact_raw(now)
            counts["m15"] = self._compact_m1(now)
            counts["expired"] = self._expire(now)
            return counts

    def _compact_raw(self, now: float) -> int:
        """Roll each expired raw segment into a 1m rollup file."""
        produced = 0
        horizon = now - self.config.raw_retention_s
        baseline: Optional[Dict[str, float]] = None
        baseline_end = -math.inf
        for segment in self._sorted_segments("raw"):
            if segment.end > horizon:
                break
            target = self.segments_dir / _segment_name(
                "m1", segment.start, segment.end
            )
            if not target.exists():
                payload = self._load_segment(segment)
                if payload is None:
                    continue
                rounds = self._decode_raw_rounds(
                    payload, -math.inf, math.inf
                )
                if baseline is None or baseline_end < segment.start:
                    baseline = self._rollup_baseline(segment.start)
                rollup = _rollup_rounds(
                    rounds, M1_BUCKET_S, "m1",
                    dict(payload.get("families", {})),  # type: ignore[arg-type]
                    baseline or {},
                )
                _atomic_write(
                    target, json.dumps(rollup, sort_keys=True)
                )
                _metric_files().inc(op="compact")
                self._segments[target.name] = _Segment(
                    target, "m1", segment.start, segment.end
                )
                baseline = {
                    key: flat[key]
                    for _, _, flat in rounds[-1:] for key in flat
                }
                baseline_end = segment.end
                produced += 1
            else:
                self._segments.setdefault(
                    target.name,
                    _Segment(target, "m1", segment.start, segment.end),
                )
                baseline, baseline_end = None, -math.inf
            try:
                segment.path.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
            self._segments.pop(segment.name, None)
        return produced

    def _rollup_baseline(self, before: float) -> Dict[str, float]:
        """Last known value per series strictly before ``before``.

        Taken from the newest earlier raw segment if one still exists,
        else from the newest earlier 1m rollup's ``last`` column — this
        is what keeps counter ``increase`` exact across segment
        boundaries even though segments compact one at a time.
        """
        previous_raw = [
            seg for seg in self._sorted_segments("raw")
            if seg.end < before
        ]
        if previous_raw:
            payload = self._load_segment(previous_raw[-1])
            if payload is not None:
                rounds = self._decode_raw_rounds(
                    payload, -math.inf, math.inf
                )
                if rounds:
                    return dict(rounds[-1][2])
        previous_m1 = [
            seg for seg in self._sorted_segments("m1")
            if seg.end < before
        ]
        if previous_m1:
            payload = self._load_segment(previous_m1[-1])
            if payload is not None:
                out: Dict[str, float] = {}
                for key, entry in payload.get("series", {}).items():  # type: ignore[union-attr]
                    lasts = [
                        v for v in entry.get("last", []) if v is not None
                    ]
                    if lasts:
                        out[str(key)] = float(lasts[-1])
                return out
        return {}

    def _compact_m1(self, now: float) -> int:
        """Merge expired 1m rollups into 15m rollups per 6h window."""
        produced = 0
        horizon = now - self.config.m1_retention_s
        windows: Dict[float, List[_Segment]] = {}
        for segment in self._sorted_segments("m1"):
            window = math.floor(segment.start / M15_WINDOW_S) * M15_WINDOW_S
            windows.setdefault(window, []).append(segment)
        for window in sorted(windows):
            members = windows[window]
            # only fold a window once nothing newer can join it: every
            # member expired *and* the window itself is fully past the
            # horizon (a later raw segment can only land after it)
            if window + M15_WINDOW_S > horizon:
                continue
            if any(seg.end > horizon for seg in members):
                continue
            target = self.segments_dir / _segment_name(
                "m15", float(window), window + M15_WINDOW_S
            )
            if not target.exists():
                merged = self._merge_m1(members)
                if merged is None:
                    continue
                _atomic_write(
                    target, json.dumps(merged, sort_keys=True)
                )
                _metric_files().inc(op="compact")
                produced += 1
            self._segments.setdefault(
                target.name,
                _Segment(target, "m15", float(window),
                         window + M15_WINDOW_S),
            )
            for segment in members:
                try:
                    segment.path.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass
                self._segments.pop(segment.name, None)
        return produced

    def _merge_m1(
        self, members: Sequence[_Segment],
    ) -> Optional[Dict[str, object]]:
        buckets: Dict[int, Dict[str, Dict[str, float]]] = {}
        kinds: Dict[str, str] = {}
        loaded = 0
        for segment in sorted(members, key=lambda seg: seg.start):
            payload = self._load_segment(segment)
            if payload is None:
                continue
            loaded += 1
            kinds.update({
                str(k): str(v)
                for k, v in payload.get("families", {}).items()  # type: ignore[union-attr]
            })
            starts = _decode_deltas(payload.get("buckets", []))  # type: ignore[arg-type]
            for key, entry in payload.get("series", {}).items():  # type: ignore[union-attr]
                for index, start in enumerate(starts):
                    last = entry.get("last", [])[index]
                    if last is None:
                        continue
                    coarse = int(
                        math.floor(start / M15_BUCKET_S) * M15_BUCKET_S
                    )
                    cell = buckets.setdefault(coarse, {}).setdefault(
                        str(key),
                        {"last": float(last), "last_t": start,
                         "increase": 0.0, "min": math.inf,
                         "max": -math.inf, "count": 0.0},
                    )
                    if start >= cell["last_t"]:
                        cell["last"], cell["last_t"] = float(last), start
                    cell["increase"] += float(
                        entry.get("increase", [])[index] or 0.0
                    )
                    cell["min"] = min(
                        cell["min"],
                        float(entry.get("min", [])[index]
                              if entry.get("min", [])[index] is not None
                              else last),
                    )
                    cell["max"] = max(
                        cell["max"],
                        float(entry.get("max", [])[index]
                              if entry.get("max", [])[index] is not None
                              else last),
                    )
                    cell["count"] += float(
                        entry.get("count", [])[index] or 0.0
                    )
        if not loaded or not buckets:
            return None
        return _encode_rollup(buckets, kinds, "m15", M15_BUCKET_S)

    def _expire(self, now: float) -> int:
        """Delete 15m rollups past their retention window."""
        removed = 0
        horizon = now - self.config.m15_retention_s
        for segment in self._sorted_segments("m15"):
            if segment.end > horizon:
                break
            try:
                segment.path.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
            self._segments.pop(segment.name, None)
            _metric_files().inc(op="expire")
            removed += 1
        return removed

    # ------------------------------------------------------------------
    # query layer

    def series_keys(self) -> List[str]:
        """Every series key present anywhere in the store, sorted."""
        keys = set()
        with self._lock:
            for segment in list(self._segments.values()):
                payload = self._load_segment(segment)
                if payload is not None:
                    keys.update(
                        str(k) for k in payload.get("series", {})  # type: ignore[union-attr]
                    )
            for _, _, flat in self._active:
                keys.update(flat)
        return sorted(keys)

    def families(self) -> Dict[str, str]:
        """Family -> kind map merged across everything on disk."""
        kinds: Dict[str, str] = {}
        with self._lock:
            for segment in list(self._segments.values()):
                payload = self._load_segment(segment)
                if payload is not None:
                    kinds.update({
                        str(k): str(v)
                        for k, v in payload.get(  # type: ignore[union-attr]
                            "families", {}).items()
                    })
            for _, round_kinds, _ in self._active:
                kinds.update(round_kinds)
        return kinds

    def select(
        self, name: str, labels: Optional[Mapping[str, str]] = None,
    ) -> List[str]:
        """Series keys whose sample name matches ``name`` (exact, or a
        histogram child of it) and whose labels are a superset of
        ``labels``."""
        labels = dict(labels or {})
        out = []
        for key in self.series_keys():
            try:
                sample_name, key_labels = parse_series_key(key)
            except ValueError:
                continue
            if sample_name != name and _family_of(
                sample_name, {name: ""}
            ) != name:
                continue
            if all(key_labels.get(k) == v for k, v in labels.items()):
                out.append(key)
        return out

    def query(
        self,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
        op: str = "range",
        since: Optional[float] = None,
        until: Optional[float] = None,
        q: float = 0.95,
    ) -> QueryResult:
        """Answer range / rate / quantile over the stored history.

        * ``range``  — ``[t, value]`` points per matching series;
        * ``rate``   — reset-safe per-second increase between adjacent
          points (counter restarts never yield negative rates);
        * ``quantile`` — exact sample quantile ``q`` of each series'
          values over the window (single number per series).

        Results are deterministic: series sorted by key, timestamps at
        ms precision, ``to_json()`` byte-identical across replays.
        """
        if op not in ("range", "rate", "quantile"):
            raise HistoryError(
                f"unknown query op {op!r} (range|rate|quantile)"
            )
        if not name:
            raise HistoryError("query needs a series name")
        if not 0.0 <= q <= 1.0:
            raise HistoryError("quantile must be within [0, 1]")
        if until is None:
            # default to the newest *stored* timestamp, not the clock:
            # replaying the same query over the same store must be
            # byte-identical, and wall time would leak into the output
            until = self._newest()
        until = float(until)
        since = -math.inf if since is None else float(since)
        points = self._collect_points(name, labels, since, until)
        result = QueryResult(name=name, op=op, since=since, until=until)
        if since == -math.inf:
            result.since = min(
                (series[0][0] for series in points.values() if series),
                default=_round_t(until),
            )
        for key in sorted(points):
            series_points = points[key]
            if not series_points:
                continue
            entry: Dict[str, object] = {"key": key}
            if op == "range":
                entry["points"] = [
                    [_round_t(t), _round12(v)] for t, v in series_points
                ]
            elif op == "rate":
                entry["points"] = _rate_points(series_points)
            else:
                values = sorted(v for _, v in series_points)
                entry["value"] = _round12(_quantile(values, q))
                entry["samples"] = len(values)
            result.series.append(entry)
        return result

    def _collect_points(
        self,
        name: str,
        labels: Optional[Mapping[str, str]],
        since: float,
        until: float,
    ) -> Dict[str, List[Tuple[float, float]]]:
        """Merge raw + rollup levels into one point list per series.

        Raw wins where it exists; rollups only contribute buckets that
        end before the finest level already covering them.  Rollup
        contribution per bucket is its ``last`` value at bucket end.
        """
        labels = dict(labels or {})

        def matches(key: str) -> bool:
            try:
                sample_name, key_labels = parse_series_key(key)
            except ValueError:
                return False
            if sample_name != name:
                return False
            return all(
                key_labels.get(k) == v for k, v in labels.items()
            )

        out: Dict[str, List[Tuple[float, float]]] = {}
        raw_rounds = self._raw_rounds(since, until)
        raw_oldest = raw_rounds[0][0] if raw_rounds else math.inf
        # rollup contributions keyed by (series, bucket end): segments
        # compact one at a time, so adjacent files can hold *partial*
        # copies of the same bucket — the latest-starting file has the
        # true ``last`` and overwrites earlier partials
        roll: Dict[str, Dict[float, float]] = {}
        with self._lock:
            m1_oldest = math.inf
            for level, finer_oldest in (("m1", raw_oldest),
                                        ("m15", None)):
                cutoff = finer_oldest if finer_oldest is not None \
                    else m1_oldest
                for segment in self._sorted_segments(level):
                    if segment.end < since or segment.start > until:
                        if level == "m1" and segment.start <= until:
                            m1_oldest = min(m1_oldest, segment.start)
                        continue
                    payload = self._load_segment(segment)
                    if payload is None:
                        continue
                    try:
                        starts = _decode_deltas(
                            payload.get("buckets", []))  # type: ignore[arg-type]
                        if level == "m1" and starts:
                            m1_oldest = min(m1_oldest, starts[0])
                        width = int(payload.get("bucket_s", M1_BUCKET_S))
                        for key, entry in payload.get(  # type: ignore[union-attr]
                                "series", {}).items():
                            key = str(key)
                            if not matches(key):
                                continue
                            lasts = entry.get("last", [])
                            for index, start in enumerate(starts):
                                end = start + width
                                if lasts[index] is None:
                                    continue
                                # a bucket overlapping the window
                                # contributes, stamped at bucket end
                                if end < since or start > until:
                                    continue
                                if end >= cutoff:
                                    continue
                                roll.setdefault(key, {})[end] = float(
                                    lasts[index]
                                )
                    except (ValueError, TypeError, KeyError, IndexError):
                        self._segments.pop(segment.name, None)
                        self._quarantine(
                            segment.path, "malformed columns"
                        )
        for key, buckets in roll.items():
            out[key] = sorted(buckets.items())
        for when, _, flat in raw_rounds:
            for key, value in flat.items():
                if matches(key):
                    out.setdefault(key, []).append((when, value))
        for key in out:
            out[key].sort(key=lambda point: point[0])
        return out

    def flat_recent(
        self, since: float,
    ) -> List[Tuple[float, Dict[str, float]]]:
        """Full flat samples newer than ``since``, for SLO rehydration.

        Raw rounds verbatim; older gaps filled from 1m rollup ``last``
        columns (bucket-end timestamps).  Sorted by time.
        """
        raw_rounds = self._raw_rounds(since, math.inf)
        raw_oldest = raw_rounds[0][0] if raw_rounds else math.inf
        per_bucket: Dict[float, Dict[str, float]] = {}
        with self._lock:
            # segments ascending: a later file's partial copy of the
            # same bucket overwrites the earlier one (true ``last``)
            for segment in self._sorted_segments("m1"):
                if segment.end < since - M1_BUCKET_S:
                    continue
                payload = self._load_segment(segment)
                if payload is None:
                    continue
                try:
                    starts = _decode_deltas(
                        payload.get("buckets", []))  # type: ignore[arg-type]
                    width = int(payload.get("bucket_s", M1_BUCKET_S))
                    for key, entry in payload.get(  # type: ignore[union-attr]
                            "series", {}).items():
                        lasts = entry.get("last", [])
                        for index, start in enumerate(starts):
                            end = start + width
                            if lasts[index] is None:
                                continue
                            if end < since or end >= raw_oldest:
                                continue
                            per_bucket.setdefault(end, {})[str(key)] = \
                                float(lasts[index])
                except (ValueError, TypeError, KeyError, IndexError):
                    self._segments.pop(segment.name, None)
                    self._quarantine(segment.path, "malformed columns")
        out: List[Tuple[float, Dict[str, float]]] = list(
            sorted(per_bucket.items())
        )
        out.extend((when, flat) for when, _, flat in raw_rounds)
        out.sort(key=lambda item: item[0])
        return out

    def _newest(self) -> float:
        with self._lock:
            newest = max(
                (seg.end for seg in self._segments.values()),
                default=-math.inf,
            )
            if self._active:
                newest = max(newest, self._active[-1][0])
            return self.clock() if newest == -math.inf else newest

    # ------------------------------------------------------------------
    # stats

    def stats(self) -> Dict[str, object]:
        with self._lock:
            per_level = {"raw": 0, "m1": 0, "m15": 0}
            total_bytes = 0
            oldest, newest = math.inf, -math.inf
            for segment in self._segments.values():
                per_level[segment.level] += 1
                try:
                    total_bytes += segment.path.stat().st_size
                except OSError:  # pragma: no cover
                    pass
                oldest = min(oldest, segment.start)
                newest = max(newest, segment.end)
            if self.journal_path.exists():
                try:
                    total_bytes += self.journal_path.stat().st_size
                except OSError:  # pragma: no cover
                    pass
            for when, _, _ in self._active:
                oldest = min(oldest, when)
                newest = max(newest, when)
            return {
                "root": str(self.root),
                "active_rounds": len(self._active),
                "segments": per_level,
                "bytes": total_bytes,
                "oldest": None if oldest == math.inf else _round_t(oldest),
                "newest": None if newest == -math.inf
                else _round_t(newest),
                "quarantined": [list(item) for item in self.quarantined],
            }


def _rollup_rounds(
    rounds: Sequence[Tuple[float, Dict[str, str], Dict[str, float]]],
    bucket_s: int,
    level: str,
    kinds: Dict[str, str],
    baseline: Mapping[str, float],
) -> Dict[str, object]:
    """Aggregate raw rounds into fixed buckets (last/increase/min/max).

    ``increase`` is the reset-safe positive delta sum: a negative delta
    means the counter restarted, so the post-reset value counts once —
    the same rule :class:`~repro.obs.slo._WindowedSeries` applies.
    ``baseline`` supplies each series' value just before the first
    round, keeping the first delta exact across segment boundaries.
    """
    buckets: Dict[int, Dict[str, Dict[str, float]]] = {}
    previous: Dict[str, float] = dict(baseline)
    for when, _, flat in rounds:
        start = int(math.floor(when / bucket_s) * bucket_s)
        for key, value in flat.items():
            cell = buckets.setdefault(start, {}).setdefault(
                key,
                {"last": value, "last_t": when, "increase": 0.0,
                 "min": value, "max": value, "count": 0.0},
            )
            if when >= cell["last_t"]:
                cell["last"], cell["last_t"] = value, when
            cell["min"] = min(cell["min"], value)
            cell["max"] = max(cell["max"], value)
            cell["count"] += 1
            if key in previous:
                delta = value - previous[key]
                cell["increase"] += delta if delta >= 0 else value
            previous[key] = value
    return _encode_rollup(buckets, kinds, level, bucket_s)


def _encode_rollup(
    buckets: Mapping[int, Mapping[str, Mapping[str, float]]],
    kinds: Mapping[str, str],
    level: str,
    bucket_s: int,
) -> Dict[str, object]:
    starts = sorted(buckets)
    all_keys = sorted({
        key for cells in buckets.values() for key in cells
    })
    series: Dict[str, Dict[str, List[Optional[float]]]] = {}
    for key in all_keys:
        columns: Dict[str, List[Optional[float]]] = {
            "last": [], "increase": [], "min": [], "max": [], "count": [],
        }
        for start in starts:
            cell = buckets[start].get(key)
            if cell is None:
                for column in columns.values():
                    column.append(None)
            else:
                columns["last"].append(_round12(cell["last"]))
                columns["increase"].append(_round12(cell["increase"]))
                columns["min"].append(_round12(cell["min"]))
                columns["max"].append(_round12(cell["max"]))
                columns["count"].append(cell["count"])
        series[key] = columns
    return {
        "format": SEGMENT_FORMAT,
        "level": level,
        "bucket_s": bucket_s,
        "start": starts[0] if starts else 0,
        "end": (starts[-1] + bucket_s) if starts else 0,
        "buckets": _encode_deltas([float(s) for s in starts]),
        "families": dict(kinds),
        "series": series,
    }


def _rate_points(
    points: Sequence[Tuple[float, float]],
) -> List[List[float]]:
    out: List[List[float]] = []
    for (t0, v0), (t1, v1) in zip(points, points[1:]):
        dt = t1 - t0
        if dt <= 0:
            continue
        delta = v1 - v0
        if delta < 0:  # counter reset: count the post-restart value once
            delta = v1
        out.append([_round_t(t1), _round12(delta / dt)])
    return out


def _quantile(sorted_values: Sequence[float], q: float) -> float:
    """Exact sample quantile (nearest-rank with linear interpolation)."""
    if not sorted_values:
        return math.nan
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = q * (len(sorted_values) - 1)
    low = int(math.floor(position))
    high = min(low + 1, len(sorted_values) - 1)
    fraction = position - low
    return (
        sorted_values[low] * (1 - fraction)
        + sorted_values[high] * fraction
    )


def render_sparkline(values: Sequence[float], width: int = 40) -> str:
    """Text sparkline: ``▁▂▃▄▅▆▇█`` scaled to the value range.

    More values than ``width`` are averaged into ``width`` buckets;
    fewer are rendered one block per value.  Non-finite values render
    as spaces.
    """
    finite = [v for v in values if math.isfinite(v)]
    if not finite:
        return ""
    if len(values) > width:
        chunked: List[float] = []
        for index in range(width):
            lo = index * len(values) // width
            hi = max(lo + 1, (index + 1) * len(values) // width)
            chunk = [v for v in values[lo:hi] if math.isfinite(v)]
            chunked.append(
                sum(chunk) / len(chunk) if chunk else math.nan
            )
        values = chunked
    low, high = min(finite), max(finite)
    span = high - low
    out = []
    for value in values:
        if not math.isfinite(value):
            out.append(" ")
            continue
        if span <= 0:
            out.append(_SPARK_BLOCKS[0])
            continue
        index = int((value - low) / span * (len(_SPARK_BLOCKS) - 1))
        out.append(_SPARK_BLOCKS[index])
    return "".join(out)


class HistoryRecorder:
    """Background sampler: registry state -> :class:`HistoryStore`.

    A daemon thread appends one round every ``interval_s`` (the store
    seals/compacts on its own cadence); :meth:`sample_once` is the
    synchronous path tests and benches drive directly.  The source is
    any callable returning ``export_state()``-shaped data, so fleet
    summaries and process gauges ride along for free.
    """

    def __init__(
        self,
        store: HistoryStore,
        source: Callable[[], Mapping[str, Mapping[str, object]]],
        interval_s: Optional[float] = None,
        compact_every: int = 60,
        clock: Callable[[], float] = time.time,
    ):
        self.store = store
        self.source = source
        self.interval_s = (
            store.config.interval_s if interval_s is None
            else float(interval_s)
        )
        if self.interval_s <= 0:
            raise HistoryError("recorder interval must be > 0 seconds")
        self.compact_every = max(1, int(compact_every))
        self.clock = clock
        self._rounds = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def sample_once(self) -> float:
        """Take one sample round; returns its duration in seconds."""
        started = time.perf_counter()
        try:
            state = self.source()
        except Exception as exc:
            _LOG.warning("history_source_error", error=repr(exc))
            return 0.0
        self.store.append(state, when=self.clock())
        self._rounds += 1
        if self._rounds % self.compact_every == 0:
            self.store.compact(now=self.clock())
        duration = time.perf_counter() - started
        _metric_last_sample().set(duration)
        return duration

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="history-recorder", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.sample_once()
            except Exception as exc:  # pragma: no cover - defensive
                _LOG.warning("history_sample_error", error=repr(exc))

    def stop(self, seal: bool = True) -> None:
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5.0)
        if seal:
            try:
                self.store.seal()
            except OSError as exc:  # pragma: no cover - disk full etc.
                _LOG.warning("history_seal_error", error=repr(exc))
        self.store.close()
