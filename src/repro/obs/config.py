"""Global observability configuration — one switch, zero dependencies.

Everything in :mod:`repro.obs` reads this module's single
:class:`ObsState` at *call* time, so flipping the configuration affects
already-constructed loggers and tracers immediately:

* ``enabled`` — the master switch.  When off (the default), ``span()``
  returns a shared null context manager and loggers drop records before
  formatting them; the instrumented hot paths cost a single attribute
  check.  Metrics counters keep counting either way — a dict increment
  is cheaper than the branch to skip it would be worth.
* ``log_level`` / ``json_logs`` / ``sink`` — structured-logging knobs
  (see :mod:`repro.obs.logs`).  The default sink is the no-op
  :class:`~repro.obs.logs.NullSink`, so the test suite stays quiet even
  when a test enables tracing.
* ``clock`` / ``perf`` — injectable wall and monotonic clocks so tests
  assert on exact timestamps and span durations.

:func:`configure` returns the *previous* state; pair it with
:func:`restore` (or the :func:`overridden` context manager) to scope a
change to a test.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, replace
from typing import Callable, Iterator, Optional

#: numeric log levels (mirroring stdlib logging's spacing)
DEBUG = 10
INFO = 20
WARNING = 30
ERROR = 40
OFF = 100

LEVEL_NAMES = {DEBUG: "debug", INFO: "info", WARNING: "warning", ERROR: "error"}
LEVELS_BY_NAME = {name: value for value, name in LEVEL_NAMES.items()}
LEVELS_BY_NAME["off"] = OFF


def parse_level(name: str) -> int:
    """``"info"`` -> 20; raises ``ValueError`` on unknown names."""
    try:
        return LEVELS_BY_NAME[name.strip().lower()]
    except KeyError:
        raise ValueError(
            f"unknown log level {name!r}; pick from "
            f"{sorted(LEVELS_BY_NAME)}"
        ) from None


@dataclass
class ObsState:
    """The process-wide observability switches."""

    enabled: bool = False
    log_level: int = INFO
    json_logs: bool = False
    sink: Optional[object] = None  # logs.Sink; None -> shared NullSink
    clock: Callable[[], float] = time.time
    perf: Callable[[], float] = time.perf_counter


STATE = ObsState()


def configure(**changes: object) -> ObsState:
    """Update fields of the global state; returns the previous state."""
    previous = replace(STATE)
    for name, value in changes.items():
        if not hasattr(STATE, name):
            raise ValueError(f"unknown observability setting {name!r}")
        setattr(STATE, name, value)
    return previous


def restore(previous: ObsState) -> None:
    """Put back a state captured by :func:`configure`."""
    for name in ObsState.__dataclass_fields__:
        setattr(STATE, name, getattr(previous, name))


@contextlib.contextmanager
def overridden(**changes: object) -> Iterator[ObsState]:
    """Scope a configuration change (tests, CLI one-shots)."""
    previous = configure(**changes)
    try:
        yield STATE
    finally:
        restore(previous)


def enable(
    level: int = INFO,
    json_logs: bool = False,
    sink: Optional[object] = None,
) -> ObsState:
    """Turn the whole subsystem on (tracing + log emission)."""
    return configure(
        enabled=True, log_level=level, json_logs=json_logs, sink=sink
    )


def disable() -> ObsState:
    """Back to no-op mode: spans are free, loggers drop everything."""
    return configure(enabled=False, sink=None)


def is_enabled() -> bool:
    return STATE.enabled
