"""Declarative SLOs with multi-window, multi-burn-rate alerting.

An :class:`SLO` states an objective over the traffic the metrics
registry already counts — "99.5% of responses are non-5xx", "99% of
API requests finish under 25ms" — and an :class:`SLOTracker` evaluates
every objective continuously from rolling windows over those counters.

The alerting rule is the Google-SRE multi-window multi-burn-rate
pattern: *burn rate* is the error rate divided by the error budget
(``1 - objective``), so burn 1.0 spends exactly the budget over the
SLO period, burn 14.4 exhausts a 30-day budget in two days.  A state
is:

* ``page``  — burn >= 14.4 over BOTH the 5m and 1h windows,
* ``warn``  — burn >= 6.0 over BOTH the 30m and 6h windows,
* ``ok``    — otherwise.

Requiring both windows makes the alert fast *and* sticky-proof: the
short window arms quickly and disarms quickly once the bleeding stops,
the long window suppresses one-request blips at low traffic.

Windows are built from pairwise counter *increments* (never raw
cumulative values), so a counter reset — process restart, registry
``reset()`` in tests — re-baselines instead of producing a negative
spike.  The clock is injectable, which makes every window computation
deterministic under test: advance a fake clock, not ``time.sleep``.

Zero traffic in a window is *not* an outage: no requests means no
errors means burn rate 0 and state ``ok`` (an idle fleet should not
page anyone).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable,
    Deque,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from .metrics import (
    Histogram, MetricsRegistry, get_registry, parse_series_key,
)

__all__ = [
    "BurnRatePolicy",
    "DEFAULT_SLOS",
    "SLO",
    "SLOStatus",
    "SLOTracker",
    "good_total_from_flat",
    "route_class",
    "worst_state",
]

#: alert severities, worst last; index = the exported gauge code
SLO_STATES = ("ok", "warn", "page")

#: route-class prefixes — the bounded route labels from
#: ``repro.web.app.route_label`` collapse into three service classes
_OPS_ROUTES = frozenset(
    {
        "/metrics", "/status", "/healthz", "/trace", "/profile",
        "/fleet", "/debug/flight", "/history",
    }
)
_API_PREFIXES = ("/api/", "/agent/", "/export/")


def route_class(route: str) -> str:
    """Collapse a route label into ``api`` / ``ops`` / ``ui``.

    ``api`` is the machine-to-machine surface (federation sync, JSON
    endpoints), ``ops`` the observability endpoints, ``ui`` everything
    a person clicks.  Each class gets its own latency objective — a
    slow ``/metrics`` scrape must not page the UI SLO.
    """
    if route in _OPS_ROUTES:
        return "ops"
    if route.startswith(_API_PREFIXES):
        return "api"
    return "ui"


@dataclass(frozen=True)
class SLO:
    """One declarative objective.

    ``kind`` is ``availability`` (good = non-5xx responses, from
    ``powerplay_http_responses_total``) or ``latency`` (good = requests
    at or under ``threshold_s``, from the cumulative buckets of
    ``powerplay_http_request_seconds``).  Latency SLOs are scoped to a
    :func:`route_class`; availability is fleet-wide per node because
    the status-class counter carries no route label.

    ``threshold_s`` must sit on a histogram bucket bound — the good
    count is read straight off the cumulative bucket, which keeps the
    SLO arithmetic exact rather than interpolated.
    """

    name: str
    kind: str  # "availability" | "latency"
    objective: float  # e.g. 0.995 — fraction of events that must be good
    route_class: Optional[str] = None  # latency SLOs only
    threshold_s: Optional[float] = None  # latency SLOs only
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("availability", "latency"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must be a fraction in (0, 1)")
        if self.kind == "latency" and (
            self.route_class is None or self.threshold_s is None
        ):
            raise ValueError("latency SLOs need route_class and threshold_s")

    @property
    def budget(self) -> float:
        """The error budget: the fraction of events allowed to be bad."""
        return 1.0 - self.objective


#: the shipped objectives — availability plus a p99-style latency bound
#: per route class (thresholds sit on DEFAULT_LATENCY_BUCKETS bounds)
DEFAULT_SLOS: Tuple[SLO, ...] = (
    SLO(
        name="availability",
        kind="availability",
        objective=0.995,
        description="99.5% of responses are non-5xx.",
    ),
    SLO(
        name="latency-api",
        kind="latency",
        objective=0.99,
        route_class="api",
        threshold_s=0.025,
        description="99% of API requests finish within 25ms.",
    ),
    SLO(
        name="latency-ui",
        kind="latency",
        objective=0.99,
        route_class="ui",
        threshold_s=0.1,
        description="99% of UI requests finish within 100ms.",
    ),
    SLO(
        name="latency-ops",
        kind="latency",
        objective=0.99,
        route_class="ops",
        threshold_s=0.25,
        description="99% of ops/observability requests finish within 250ms.",
    ),
)


@dataclass(frozen=True)
class BurnRatePolicy:
    """Window lengths (seconds) and burn thresholds for each severity."""

    page_burn: float = 14.4
    page_short_s: float = 300.0  # 5m
    page_long_s: float = 3600.0  # 1h
    warn_burn: float = 6.0
    warn_short_s: float = 1800.0  # 30m
    warn_long_s: float = 21600.0  # 6h

    @property
    def longest_s(self) -> float:
        return max(
            self.page_short_s, self.page_long_s,
            self.warn_short_s, self.warn_long_s,
        )

    def windows(self) -> Dict[str, float]:
        return {
            "page_short": self.page_short_s,
            "page_long": self.page_long_s,
            "warn_short": self.warn_short_s,
            "warn_long": self.warn_long_s,
        }


@dataclass
class SLOStatus:
    """The evaluated state of one SLO at one instant."""

    slo: SLO
    state: str
    previous: str
    burn_rates: Dict[str, float] = field(default_factory=dict)
    window_total: float = 0.0  # events in the longest window
    window_bad: float = 0.0
    budget_remaining: float = 1.0  # fraction of budget left (long window)

    @property
    def changed(self) -> bool:
        return self.state != self.previous

    def to_payload(self) -> Dict[str, object]:
        return {
            "name": self.slo.name,
            "kind": self.slo.kind,
            "objective": self.slo.objective,
            "route_class": self.slo.route_class,
            "threshold_s": self.slo.threshold_s,
            "state": self.state,
            "previous": self.previous,
            "burn_rates": {
                window: round(rate, 6)
                for window, rate in sorted(self.burn_rates.items())
            },
            "window_total": self.window_total,
            "window_bad": self.window_bad,
            "budget_remaining": round(self.budget_remaining, 6),
        }


def worst_state(statuses: Sequence[SLOStatus]) -> str:
    """The most severe state across a set of statuses (``ok`` if empty)."""
    worst = 0
    for status in statuses:
        worst = max(worst, SLO_STATES.index(status.state))
    return SLO_STATES[worst]


def good_total_from_flat(
    slo: SLO, flat: Mapping[str, float],
) -> Tuple[float, float]:
    """(good, total) for one SLO from a flat ``{series key: value}``.

    The flat shape is what the telemetry history stores per sampling
    round — the same counters :meth:`SLOTracker._cumulative` reads
    live, just addressed by exposition-format series key.  This is the
    bridge that lets burn windows rehydrate from disk after a restart.
    """
    good = total = 0.0
    if slo.kind == "availability":
        for key, value in flat.items():
            try:
                name, labels = parse_series_key(key)
            except ValueError:
                continue
            if name != "powerplay_http_responses_total":
                continue
            total += value
            if labels.get("status_class") != "5xx":
                good += value
        return good, total
    threshold = float(slo.threshold_s or 0.0)
    # per route: total from _count, good from the largest qualifying
    # cumulative bucket (same bound rule as the live read)
    best_bound: Dict[str, float] = {}
    best_value: Dict[str, float] = {}
    for key, value in flat.items():
        try:
            name, labels = parse_series_key(key)
        except ValueError:
            continue
        route = labels.get("route", "")
        if route_class(route) != slo.route_class:
            continue
        if name == "powerplay_http_request_seconds_count":
            total += value
        elif name == "powerplay_http_request_seconds_bucket":
            try:
                bound = float(labels.get("le", "nan"))
            except ValueError:
                continue
            if not bound <= threshold * (1.0 + 1e-9):
                continue
            if bound >= best_bound.get(route, -1.0):
                best_bound[route] = bound
                best_value[route] = value
    good = sum(best_value.values())
    return good, total


class _WindowedSeries:
    """Rolling (good, total) sums built from cumulative counter reads.

    Each :meth:`push` turns the latest cumulative pair into an
    *increment* against the previous read.  A negative delta means the
    underlying counter restarted; the current cumulative value *is*
    the increment then (everything counted since the reset is new).
    Increments older than the horizon are pruned, so memory is bounded
    by sample rate x longest window.
    """

    __slots__ = ("_increments", "_last")

    def __init__(self) -> None:
        self._increments: Deque[Tuple[float, float, float]] = deque()
        self._last: Optional[Tuple[float, float]] = None

    def push(self, now: float, good: float, total: float) -> None:
        if self._last is None:
            dgood, dtotal = good, total
        else:
            dgood = good - self._last[0]
            dtotal = total - self._last[1]
            if dgood < 0 or dtotal < 0:  # counter reset: re-baseline
                dgood, dtotal = good, total
        self._last = (good, total)
        if dtotal > 0 or dgood > 0:
            self._increments.append((now, dgood, dtotal))

    def prune(self, now: float, horizon_s: float) -> None:
        cutoff = now - horizon_s
        while self._increments and self._increments[0][0] <= cutoff:
            self._increments.popleft()

    def window(self, now: float, length_s: float) -> Tuple[float, float]:
        """(good, total) summed over the trailing ``length_s`` seconds."""
        cutoff = now - length_s
        good = total = 0.0
        for when, dgood, dtotal in reversed(self._increments):
            if when <= cutoff:
                break
            good += dgood
            total += dtotal
        return good, total


class SLOTracker:
    """Evaluates a set of SLOs against a live metrics registry.

    ``clock`` defaults to ``time.monotonic``; tests inject a fake to
    advance windows deterministically.  :meth:`evaluate` samples the
    counters, computes burn rates, updates the ``powerplay_slo_*``
    gauges, and returns one :class:`SLOStatus` per SLO — including
    ``previous`` state so callers can react to *transitions* (the
    flight recorder snapshots on any ``-> page`` edge).
    """

    def __init__(
        self,
        slos: Sequence[SLO] = DEFAULT_SLOS,
        registry: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.monotonic,
        policy: BurnRatePolicy = BurnRatePolicy(),
    ):
        if len({slo.name for slo in slos}) != len(slos):
            raise ValueError("SLO names must be unique")
        self.slos = tuple(slos)
        self.registry = registry or get_registry()
        self.clock = clock
        self.policy = policy
        self._series: Dict[str, _WindowedSeries] = {
            slo.name: _WindowedSeries() for slo in self.slos
        }
        self._states: Dict[str, str] = {slo.name: "ok" for slo in self.slos}
        self._lock = threading.Lock()
        self._state_gauge = self.registry.gauge(
            "powerplay_slo_state",
            "SLO alert state: 0=ok, 1=warn, 2=page.",
            ("slo",),
        )
        self._burn_gauge = self.registry.gauge(
            "powerplay_slo_burn_rate",
            "SLO burn rate (error rate / error budget) per alert window.",
            ("slo", "window"),
        )
        self._budget_gauge = self.registry.gauge(
            "powerplay_slo_budget_remaining",
            "Fraction of the error budget left over the long warn window.",
            ("slo",),
        )

    # -- cumulative reads ---------------------------------------------------

    def _cumulative(self, slo: SLO) -> Tuple[float, float]:
        """(good, total) as counted since process start."""
        if slo.kind == "availability":
            counter = self.registry.get("powerplay_http_responses_total")
            if counter is None:
                return 0.0, 0.0
            good = total = 0.0
            for key, value in counter.samples().items():
                total += value
                if key and key[0] != "5xx":
                    good += value
            return good, total
        histogram = self.registry.get("powerplay_http_request_seconds")
        if not isinstance(histogram, Histogram):
            return 0.0, 0.0
        threshold = float(slo.threshold_s or 0.0)
        bucket_index = -1
        for index, bound in enumerate(histogram.bounds):
            if bound <= threshold * (1.0 + 1e-9):
                bucket_index = index
        good = total = 0.0
        for key, (cumulative, _sum, count) in histogram.state().items():
            if not key or route_class(key[0]) != slo.route_class:
                continue
            total += count
            if bucket_index >= 0:
                good += cumulative[bucket_index]
        return good, total

    # -- evaluation ---------------------------------------------------------

    def _evaluate_one(self, slo: SLO, now: float) -> SLOStatus:
        series = self._series[slo.name]
        good, total = self._cumulative(slo)
        series.push(now, good, total)
        series.prune(now, self.policy.longest_s)

        burn_rates: Dict[str, float] = {}
        for window_name, length_s in self.policy.windows().items():
            window_good, window_total = series.window(now, length_s)
            if window_total <= 0:
                burn_rates[window_name] = 0.0
            else:
                error_rate = (window_total - window_good) / window_total
                burn_rates[window_name] = error_rate / slo.budget

        if (
            burn_rates["page_short"] >= self.policy.page_burn
            and burn_rates["page_long"] >= self.policy.page_burn
        ):
            state = "page"
        elif (
            burn_rates["warn_short"] >= self.policy.warn_burn
            and burn_rates["warn_long"] >= self.policy.warn_burn
        ):
            state = "warn"
        else:
            state = "ok"

        long_good, long_total = series.window(now, self.policy.longest_s)
        status = SLOStatus(
            slo=slo,
            state=state,
            previous=self._states[slo.name],
            burn_rates=burn_rates,
            window_total=long_total,
            window_bad=long_total - long_good,
            budget_remaining=max(
                0.0, 1.0 - burn_rates["warn_long"] / 1.0
            )
            if long_total > 0
            else 1.0,
        )
        self._states[slo.name] = state
        return status

    def evaluate(self) -> List[SLOStatus]:
        """Sample counters, compute every SLO, export gauges."""
        now = self.clock()
        with self._lock:
            statuses = [self._evaluate_one(slo, now) for slo in self.slos]
        for status in statuses:
            self._state_gauge.set(
                SLO_STATES.index(status.state), slo=status.slo.name
            )
            for window, rate in status.burn_rates.items():
                self._burn_gauge.set(rate, slo=status.slo.name, window=window)
            self._budget_gauge.set(
                status.budget_remaining, slo=status.slo.name
            )
        return statuses

    def rehydrate(
        self,
        samples: Sequence[Tuple[float, Mapping[str, float]]],
        wall_now: Optional[float] = None,
        evaluate: bool = True,
    ) -> List[SLOStatus]:
        """Rebuild the burn windows from recorded history samples.

        ``samples`` is ``[(wall timestamp, flat {series key: value})]``
        as returned by ``HistoryStore.flat_recent`` — each is replayed
        through the same increment pipeline a live evaluation uses, at
        a tracker-clock time shifted by its wall age, so a paging
        condition from before a restart is still burning afterwards.

        The registry's own (freshly reset) counters are then one more
        negative delta: the reset path re-baselines and post-restart
        traffic counts exactly once.  Call this *before* the tracker's
        first live evaluation.
        """
        if wall_now is None:
            wall_now = time.time()
        now = self.clock()
        with self._lock:
            for wall_t, flat in sorted(samples, key=lambda item: item[0]):
                age = wall_now - float(wall_t)
                if age < 0:
                    continue
                when = now - age
                for slo in self.slos:
                    good, total = good_total_from_flat(slo, flat)
                    self._series[slo.name].push(when, good, total)
            for slo in self.slos:
                self._series[slo.name].prune(now, self.policy.longest_s)
        return self.evaluate() if evaluate else []

    def states(self) -> Dict[str, str]:
        """Current state per SLO name (without re-evaluating)."""
        with self._lock:
            return dict(self._states)

    @staticmethod
    def payload(statuses: Sequence[SLOStatus]) -> Dict[str, object]:
        """The JSON shape /healthz and /fleet embed."""
        return {
            "state": worst_state(statuses),
            "objectives": [status.to_payload() for status in statuses],
        }
