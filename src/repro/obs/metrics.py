"""Counters, gauges and histograms with Prometheus text exposition.

A :class:`MetricsRegistry` is a named collection of metrics; the
process-wide default (:func:`get_registry`) is what the instrumented
code increments and what ``GET /metrics`` renders.  Everything is
in-memory, thread-safe, and dependency-free; the exposition follows the
Prometheus text format (version 0.0.4) so any scraper — or ``curl`` —
can read it::

    # HELP powerplay_http_requests_total HTTP requests routed.
    # TYPE powerplay_http_requests_total counter
    powerplay_http_requests_total{method="GET",route="/menu"} 4

Metrics always count, even in no-op observability mode: an increment is
a dict update under a small lock, cheaper than a feature flag would be
worth, and it means ``/metrics`` is truthful from process start.

Labels are declared per metric (``labelnames``) and passed as keyword
arguments to ``inc``/``set``/``observe``; a metric with no labels has a
single implicit series.  Histograms use fixed cumulative buckets (the
Prometheus convention) chosen at creation.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
]

#: seconds — tuned for "virtually instantaneous" request handling
DEFAULT_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)

LabelKey = Tuple[str, ...]


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _series(name: str, labels: Mapping[str, str], value: float) -> str:
    if labels:
        inner = ",".join(
            f'{key}="{_escape_label(str(val))}"'
            for key, val in sorted(labels.items())
        )
        return f"{name}{{{inner}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


class _Metric:
    """Shared bookkeeping: name, help text, declared label names."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, labelnames: Sequence[str]):
        self.name = name
        self.help_text = help_text
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()

    def _key(self, labels: Mapping[str, object]) -> LabelKey:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def _labels_of(self, key: LabelKey) -> Dict[str, str]:
        return dict(zip(self.labelnames, key))

    def header(self) -> List[str]:
        return [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.kind}",
        ]

    def render(self) -> List[str]:  # pragma: no cover - overridden
        raise NotImplementedError

    def reset(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically increasing count (per label set)."""

    kind = "counter"

    def __init__(self, name: str, help_text: str, labelnames: Sequence[str] = ()):
        super().__init__(name, help_text, labelnames)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        return self._values.get(self._key(labels), 0.0)

    def total(self) -> float:
        """Sum across every label set."""
        with self._lock:
            return sum(self._values.values())

    def samples(self) -> Dict[LabelKey, float]:
        with self._lock:
            return dict(self._values)

    def render(self) -> List[str]:
        lines = self.header()
        with self._lock:
            for key in sorted(self._values):
                lines.append(
                    _series(self.name, self._labels_of(key), self._values[key])
                )
        return lines

    def reset(self) -> None:
        with self._lock:
            self._values.clear()


class Gauge(_Metric):
    """A value that can go anywhere (state codes, queue depths, uptime)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str, labelnames: Sequence[str] = ()):
        super().__init__(name, help_text, labelnames)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        return self._values.get(self._key(labels), 0.0)

    def samples(self) -> Dict[LabelKey, float]:
        with self._lock:
            return dict(self._values)

    def render(self) -> List[str]:
        lines = self.header()
        with self._lock:
            for key in sorted(self._values):
                lines.append(
                    _series(self.name, self._labels_of(key), self._values[key])
                )
        return lines

    def reset(self) -> None:
        with self._lock:
            self._values.clear()


class Histogram(_Metric):
    """Fixed-bucket distribution (Prometheus cumulative convention).

    ``observe(v)`` adds to every bucket whose upper bound is >= v plus
    the implicit ``+Inf`` bucket, and accumulates ``_sum``/``_count``.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        super().__init__(name, help_text, labelnames)
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if bounds != sorted(set(bounds)):
            raise ValueError("histogram bucket bounds must be unique")
        self.bounds: Tuple[float, ...] = tuple(bounds)
        #: per label set: [count per finite bucket] + inf count
        self._buckets: Dict[LabelKey, List[int]] = {}
        self._sums: Dict[LabelKey, float] = {}
        self._counts: Dict[LabelKey, int] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            counts = self._buckets.get(key)
            if counts is None:
                counts = [0] * (len(self.bounds) + 1)
                self._buckets[key] = counts
            # non-cumulative internally; cumulated at render time
            placed = len(self.bounds)  # +Inf slot
            for index, bound in enumerate(self.bounds):
                if value <= bound:
                    placed = index
                    break
            counts[placed] += 1
            self._sums[key] = self._sums.get(key, 0.0) + value
            self._counts[key] = self._counts.get(key, 0) + 1

    def count(self, **labels: object) -> int:
        return self._counts.get(self._key(labels), 0)

    def sum(self, **labels: object) -> float:
        return self._sums.get(self._key(labels), 0.0)

    def total_count(self) -> int:
        with self._lock:
            return sum(self._counts.values())

    def render(self) -> List[str]:
        lines = self.header()
        with self._lock:
            for key in sorted(self._buckets):
                labels = self._labels_of(key)
                cumulative = 0
                for index, bound in enumerate(self.bounds):
                    cumulative += self._buckets[key][index]
                    lines.append(
                        _series(
                            f"{self.name}_bucket",
                            {**labels, "le": _format_value(bound)},
                            cumulative,
                        )
                    )
                cumulative += self._buckets[key][-1]
                lines.append(
                    _series(
                        f"{self.name}_bucket",
                        {**labels, "le": "+Inf"},
                        cumulative,
                    )
                )
                lines.append(
                    _series(f"{self.name}_sum", labels, self._sums[key])
                )
                lines.append(
                    _series(f"{self.name}_count", labels, self._counts[key])
                )
        return lines

    def reset(self) -> None:
        with self._lock:
            self._buckets.clear()
            self._sums.clear()
            self._counts.clear()


class MetricsRegistry:
    """A named set of metrics with get-or-create semantics.

    Creation is idempotent: asking twice for the same name returns the
    same object, and asking with a conflicting type or label set is an
    error (a typo'd labelname should fail loudly, not fork a metric).
    """

    def __init__(self, namespace: str = "powerplay"):
        self.namespace = namespace
        self._metrics: Dict[str, _Metric] = {}
        self._lock = threading.Lock()

    # -- get-or-create ------------------------------------------------------

    def _get_or_create(
        self, cls, name: str, help_text: str, labelnames: Sequence[str], **kwargs
    ):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                if existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.labelnames}, not {tuple(labelnames)}"
                    )
                return existing
            metric = cls(name, help_text, labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help_text, labelnames)

    def gauge(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, labelnames)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help_text, labelnames, buckets=buckets
        )

    # -- introspection ------------------------------------------------------

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def __contains__(self, name: object) -> bool:
        return name in self._metrics

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def metrics(self) -> List[_Metric]:
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def snapshot(self) -> Dict[str, Dict[LabelKey, float]]:
        """``{metric name: {label-value tuple: value}}`` for dashboards.

        Histograms contribute ``<name>_count`` and ``<name>_sum``.
        """
        result: Dict[str, Dict[LabelKey, float]] = {}
        for metric in self.metrics():
            if isinstance(metric, (Counter, Gauge)):
                result[metric.name] = metric.samples()
            elif isinstance(metric, Histogram):
                with metric._lock:
                    result[f"{metric.name}_count"] = {
                        key: float(value)
                        for key, value in metric._counts.items()
                    }
                    result[f"{metric.name}_sum"] = dict(metric._sums)
        return result

    def render(self) -> str:
        """The whole registry in Prometheus text exposition format."""
        lines: List[str] = []
        for metric in self.metrics():
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Zero every sample; definitions (and held handles) survive.

        Tests reset the shared registry between scenarios instead of
        re-plumbing a fresh one through every instrumented module.
        """
        for metric in self.metrics():
            metric.reset()


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (what ``/metrics`` exposes)."""
    return _REGISTRY
