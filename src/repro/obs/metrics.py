"""Counters, gauges and histograms with Prometheus text exposition.

A :class:`MetricsRegistry` is a named collection of metrics; the
process-wide default (:func:`get_registry`) is what the instrumented
code increments and what ``GET /metrics`` renders.  Everything is
in-memory, thread-safe, and dependency-free; the exposition follows the
Prometheus text format (version 0.0.4) so any scraper — or ``curl`` —
can read it::

    # HELP powerplay_http_requests_total HTTP requests routed.
    # TYPE powerplay_http_requests_total counter
    powerplay_http_requests_total{method="GET",route="/menu"} 4

Metrics always count, even in no-op observability mode: an increment is
a dict update under a small lock, cheaper than a feature flag would be
worth, and it means ``/metrics`` is truthful from process start.

Labels are declared per metric (``labelnames``) and passed as keyword
arguments to ``inc``/``set``/``observe``; a metric with no labels has a
single implicit series.  Histograms use fixed cumulative buckets (the
Prometheus convention) chosen at creation.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "merge_states",
    "parse_series_key",
]

#: seconds — tuned for "virtually instantaneous" request handling
DEFAULT_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)

LabelKey = Tuple[str, ...]


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _series_key(name: str, labels: Mapping[str, str]) -> str:
    """Canonical series identity: ``name{label="value",...}``.

    Exactly the exposition-format series string (labels sorted), so the
    same key identifies the same series whether it came from a local
    registry (:meth:`MetricsRegistry.export_state`) or from parsing a
    peer's ``/metrics`` text — which is what makes fleet merging a
    plain dict-join.
    """
    if labels:
        inner = ",".join(
            f'{key}="{_escape_label(str(val))}"'
            for key, val in sorted(labels.items())
        )
        return f"{name}{{{inner}}}"
    return name


def _series(name: str, labels: Mapping[str, str], value: float) -> str:
    return f"{_series_key(name, labels)} {_format_value(value)}"


def parse_series_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Inverse of :func:`_series_key`: ``name{a="b"}`` -> ``(name, {a: b})``.

    The history store and query layer address series by their canonical
    exposition string; label-subset selection needs the parts back.
    Raises :class:`ValueError` on malformed keys (unbalanced braces,
    unterminated quotes) — corrupt segment data must not parse silently.
    """
    brace = key.find("{")
    if brace < 0:
        return key, {}
    if not key.endswith("}"):
        raise ValueError(f"malformed series key: {key!r}")
    name = key[:brace]
    inner = key[brace + 1:-1]
    labels: Dict[str, str] = {}
    index = 0
    while index < len(inner):
        eq = inner.find('="', index)
        if eq < 0:
            raise ValueError(f"malformed series key: {key!r}")
        label = inner[index:eq]
        index = eq + 2
        out: List[str] = []
        while True:
            if index >= len(inner):
                raise ValueError(f"malformed series key: {key!r}")
            char = inner[index]
            if char == "\\":
                if index + 1 >= len(inner):
                    raise ValueError(f"malformed series key: {key!r}")
                nxt = inner[index + 1]
                out.append({"n": "\n"}.get(nxt, nxt))
                index += 2
            elif char == '"':
                index += 1
                break
            else:
                out.append(char)
                index += 1
        labels[label] = "".join(out)
        if index < len(inner):
            if inner[index] != ",":
                raise ValueError(f"malformed series key: {key!r}")
            index += 1
    return name, labels


class _Metric:
    """Shared bookkeeping: name, help text, declared label names."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, labelnames: Sequence[str]):
        self.name = name
        self.help_text = help_text
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()

    def _key(self, labels: Mapping[str, object]) -> LabelKey:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def _labels_of(self, key: LabelKey) -> Dict[str, str]:
        return dict(zip(self.labelnames, key))

    def header(self) -> List[str]:
        return [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.kind}",
        ]

    def render(self) -> List[str]:  # pragma: no cover - overridden
        raise NotImplementedError

    def reset(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def export_samples(self) -> List[Tuple[str, float]]:
        """``[(series key, value), ...]`` in deterministic order.

        Histograms expand to their ``_bucket``/``_sum``/``_count``
        series with cumulative bucket counts — the same numbers the
        exposition text carries.
        """
        raise NotImplementedError  # pragma: no cover - overridden


class Counter(_Metric):
    """A monotonically increasing count (per label set)."""

    kind = "counter"

    def __init__(self, name: str, help_text: str, labelnames: Sequence[str] = ()):
        super().__init__(name, help_text, labelnames)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        return self._values.get(self._key(labels), 0.0)

    def total(self) -> float:
        """Sum across every label set."""
        with self._lock:
            return sum(self._values.values())

    def samples(self) -> Dict[LabelKey, float]:
        with self._lock:
            return dict(self._values)

    def render(self) -> List[str]:
        lines = self.header()
        with self._lock:
            for key in sorted(self._values):
                lines.append(
                    _series(self.name, self._labels_of(key), self._values[key])
                )
        return lines

    def export_samples(self) -> List[Tuple[str, float]]:
        with self._lock:
            return [
                (_series_key(self.name, self._labels_of(key)), self._values[key])
                for key in sorted(self._values)
            ]

    def reset(self) -> None:
        with self._lock:
            self._values.clear()


class Gauge(_Metric):
    """A value that can go anywhere (state codes, queue depths, uptime)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str, labelnames: Sequence[str] = ()):
        super().__init__(name, help_text, labelnames)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        return self._values.get(self._key(labels), 0.0)

    def samples(self) -> Dict[LabelKey, float]:
        with self._lock:
            return dict(self._values)

    def render(self) -> List[str]:
        lines = self.header()
        with self._lock:
            for key in sorted(self._values):
                lines.append(
                    _series(self.name, self._labels_of(key), self._values[key])
                )
        return lines

    def export_samples(self) -> List[Tuple[str, float]]:
        with self._lock:
            return [
                (_series_key(self.name, self._labels_of(key)), self._values[key])
                for key in sorted(self._values)
            ]

    def reset(self) -> None:
        with self._lock:
            self._values.clear()


class Histogram(_Metric):
    """Fixed-bucket distribution (Prometheus cumulative convention).

    ``observe(v)`` adds to every bucket whose upper bound is >= v plus
    the implicit ``+Inf`` bucket, and accumulates ``_sum``/``_count``.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        super().__init__(name, help_text, labelnames)
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if bounds != sorted(set(bounds)):
            raise ValueError("histogram bucket bounds must be unique")
        self.bounds: Tuple[float, ...] = tuple(bounds)
        #: per label set: [count per finite bucket] + inf count
        self._buckets: Dict[LabelKey, List[int]] = {}
        self._sums: Dict[LabelKey, float] = {}
        self._counts: Dict[LabelKey, int] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            counts = self._buckets.get(key)
            if counts is None:
                counts = [0] * (len(self.bounds) + 1)
                self._buckets[key] = counts
            # non-cumulative internally; cumulated at render time
            placed = len(self.bounds)  # +Inf slot
            for index, bound in enumerate(self.bounds):
                if value <= bound:
                    placed = index
                    break
            counts[placed] += 1
            self._sums[key] = self._sums.get(key, 0.0) + value
            self._counts[key] = self._counts.get(key, 0) + 1

    def count(self, **labels: object) -> int:
        return self._counts.get(self._key(labels), 0)

    def sum(self, **labels: object) -> float:
        return self._sums.get(self._key(labels), 0.0)

    def total_count(self) -> int:
        with self._lock:
            return sum(self._counts.values())

    def state(self) -> Dict[LabelKey, Tuple[List[int], float, int]]:
        """``{label key: (cumulative bucket counts incl +Inf, sum, count)}``.

        The cumulative view (what the exposition text carries) is what
        consumers want: ``counts[i]`` is the number of observations
        ``<= bounds[i]``, which makes "fraction of requests under the
        SLO threshold" a single division.
        """
        out: Dict[LabelKey, Tuple[List[int], float, int]] = {}
        with self._lock:
            for key, counts in self._buckets.items():
                cumulative: List[int] = []
                running = 0
                for count in counts:
                    running += count
                    cumulative.append(running)
                out[key] = (
                    cumulative,
                    self._sums.get(key, 0.0),
                    self._counts.get(key, 0),
                )
        return out

    def render(self) -> List[str]:
        lines = self.header()
        with self._lock:
            for key in sorted(self._buckets):
                labels = self._labels_of(key)
                cumulative = 0
                for index, bound in enumerate(self.bounds):
                    cumulative += self._buckets[key][index]
                    lines.append(
                        _series(
                            f"{self.name}_bucket",
                            {**labels, "le": _format_value(bound)},
                            cumulative,
                        )
                    )
                cumulative += self._buckets[key][-1]
                lines.append(
                    _series(
                        f"{self.name}_bucket",
                        {**labels, "le": "+Inf"},
                        cumulative,
                    )
                )
                lines.append(
                    _series(f"{self.name}_sum", labels, self._sums[key])
                )
                lines.append(
                    _series(f"{self.name}_count", labels, self._counts[key])
                )
        return lines

    def export_samples(self) -> List[Tuple[str, float]]:
        samples: List[Tuple[str, float]] = []
        with self._lock:
            for key in sorted(self._buckets):
                labels = self._labels_of(key)
                cumulative = 0
                for index, bound in enumerate(self.bounds):
                    cumulative += self._buckets[key][index]
                    samples.append(
                        (
                            _series_key(
                                f"{self.name}_bucket",
                                {**labels, "le": _format_value(bound)},
                            ),
                            float(cumulative),
                        )
                    )
                cumulative += self._buckets[key][-1]
                samples.append(
                    (
                        _series_key(
                            f"{self.name}_bucket", {**labels, "le": "+Inf"}
                        ),
                        float(cumulative),
                    )
                )
                samples.append(
                    (
                        _series_key(f"{self.name}_sum", labels),
                        self._sums[key],
                    )
                )
                samples.append(
                    (
                        _series_key(f"{self.name}_count", labels),
                        float(self._counts[key]),
                    )
                )
        return samples

    def reset(self) -> None:
        with self._lock:
            self._buckets.clear()
            self._sums.clear()
            self._counts.clear()


class MetricsRegistry:
    """A named set of metrics with get-or-create semantics.

    Creation is idempotent: asking twice for the same name returns the
    same object, and asking with a conflicting type or label set is an
    error (a typo'd labelname should fail loudly, not fork a metric).
    """

    def __init__(self, namespace: str = "powerplay"):
        self.namespace = namespace
        self._metrics: Dict[str, _Metric] = {}
        self._lock = threading.Lock()

    # -- get-or-create ------------------------------------------------------

    def _get_or_create(
        self, cls, name: str, help_text: str, labelnames: Sequence[str], **kwargs
    ):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                if existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.labelnames}, not {tuple(labelnames)}"
                    )
                return existing
            metric = cls(name, help_text, labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help_text, labelnames)

    def gauge(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, labelnames)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help_text, labelnames, buckets=buckets
        )

    # -- introspection ------------------------------------------------------

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def __contains__(self, name: object) -> bool:
        return name in self._metrics

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def metrics(self) -> List[_Metric]:
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def snapshot(self) -> Dict[str, Dict[LabelKey, float]]:
        """``{metric name: {label-value tuple: value}}`` for dashboards.

        Histograms contribute ``<name>_count`` and ``<name>_sum``.
        """
        result: Dict[str, Dict[LabelKey, float]] = {}
        for metric in self.metrics():
            if isinstance(metric, (Counter, Gauge)):
                result[metric.name] = metric.samples()
            elif isinstance(metric, Histogram):
                with metric._lock:
                    result[f"{metric.name}_count"] = {
                        key: float(value)
                        for key, value in metric._counts.items()
                    }
                    result[f"{metric.name}_sum"] = dict(metric._sums)
        return result

    def export_state(self) -> Dict[str, Dict[str, object]]:
        """A JSON-able structured snapshot keyed by series identity.

        ``{metric name: {"kind": ..., "series": {series key: value}}}``
        where each series key is the exposition-format series string
        (labels sorted, histograms expanded to ``_bucket``/``_sum``/
        ``_count``).  The same shape comes out of
        :func:`repro.obs.fleet.parse_exposition`, so local state and a
        scraped peer merge through :func:`merge_states` identically.
        """
        state: Dict[str, Dict[str, object]] = {}
        for metric in self.metrics():
            state[metric.name] = {
                "kind": metric.kind,
                "series": dict(metric.export_samples()),
            }
        return state

    def render(self) -> str:
        """The whole registry in Prometheus text exposition format."""
        lines: List[str] = []
        for metric in self.metrics():
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Zero every sample; definitions (and held handles) survive.

        Tests reset the shared registry between scenarios instead of
        re-plumbing a fresh one through every instrumented module.
        """
        for metric in self.metrics():
            metric.reset()


_LE_RE_FRAGMENT = 'le="'


def _bucket_bounds_of(family: Mapping[str, object]) -> Tuple[str, ...]:
    """The sorted set of ``le`` label values a histogram family uses."""
    bounds = set()
    for key in family.get("series", {}):  # type: ignore[union-attr]
        start = key.find(_LE_RE_FRAGMENT)
        if start < 0:
            continue
        start += len(_LE_RE_FRAGMENT)
        end = key.find('"', start)
        if end > start:
            bounds.add(key[start:end])
    return tuple(sorted(bounds))


def merge_states(
    states: Iterable[Mapping[str, Mapping[str, object]]],
) -> Dict[str, Dict[str, object]]:
    """Deterministically merge :meth:`MetricsRegistry.export_state` dicts.

    Counters and histogram series are *summed* per series key (the
    fleet total is the sum of what each node counted); gauges take the
    *max* (our gauges encode state codes and depths where worst/largest
    wins — a fleet is as unhealthy as its sickest node).  Histograms
    must be bucket-aligned: if two nodes expose the same histogram with
    different bounds, the merge raises ``ValueError`` rather than
    silently producing cumulative counts that mean nothing.

    The caller fixes the iteration order (fleet sorts nodes by name),
    which — together with per-key dict sums — makes the merged dict
    byte-identical under ``json.dumps(sort_keys=True)`` regardless of
    scrape arrival order.
    """
    merged: Dict[str, Dict[str, object]] = {}
    for state in states:
        for name in sorted(state):
            family = state[name]
            kind = str(family.get("kind", "untyped"))
            series = family.get("series", {})
            entry = merged.get(name)
            if entry is None:
                entry = {"kind": kind, "series": {}}
                merged[name] = entry
            elif entry["kind"] != kind:
                raise ValueError(
                    f"metric {name!r} is {entry['kind']} on one node "
                    f"and {kind} on another"
                )
            if kind == "histogram":
                seen = _bucket_bounds_of(entry)
                incoming = _bucket_bounds_of(family)
                if seen and incoming and seen != incoming:
                    raise ValueError(
                        f"histogram {name!r} bucket bounds differ "
                        f"across nodes: {seen} vs {incoming}"
                    )
            target: Dict[str, float] = entry["series"]  # type: ignore[assignment]
            for key, value in series.items():  # type: ignore[union-attr]
                numeric = float(value)  # type: ignore[arg-type]
                if kind == "gauge":
                    previous = target.get(key)
                    target[key] = (
                        numeric if previous is None else max(previous, numeric)
                    )
                else:
                    target[key] = target.get(key, 0.0) + numeric
    return {
        name: {
            "kind": merged[name]["kind"],
            "series": {
                key: merged[name]["series"][key]  # type: ignore[index]
                for key in sorted(merged[name]["series"])  # type: ignore[arg-type]
            },
        }
        for name in sorted(merged)
    }


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (what ``/metrics`` exposes)."""
    return _REGISTRY
