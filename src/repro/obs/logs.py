"""Structured, line-oriented logging — key=value or JSON, no deps.

The 1996 httpd wrote one access line per request; PowerPlay's
reproduction writes one *structured* line per event, machine-parseable
either as ``key=value`` pairs or as JSON objects (``json_logs=True``)::

    ts=2026-08-07T12:00:00 level=info component=web.access event=request \
        method=GET route=/menu status=200 duration_ms=1.42

* A :class:`StructuredLogger` is per-component (``get_logger("web")``)
  and nearly stateless: level, format, sink and clock are read from
  :mod:`repro.obs.config` at emit time, so ``repro --log-level debug``
  reconfigures every logger in the process at once.
* Sinks are tiny: :class:`NullSink` (the default — the test suite stays
  silent), :class:`StreamSink` (stderr for the CLI/server), and
  :class:`MemorySink` (assertions in tests).
* When the subsystem is disabled, :meth:`StructuredLogger.log` returns
  before formatting anything — logging in a hot path costs one branch.
"""

from __future__ import annotations

import json
import os
import sys
import threading
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Optional, TextIO

from .config import (
    DEBUG,
    ERROR,
    INFO,
    LEVEL_NAMES,
    STATE,
    WARNING,
)

__all__ = [
    "MemorySink",
    "NullSink",
    "RotatingFileSink",
    "StreamSink",
    "StructuredLogger",
    "format_kv",
    "get_logger",
]


class NullSink:
    """Discards everything — the quiet default."""

    def emit(self, line: str, record: Dict[str, object]) -> None:
        pass


class StreamSink:
    """Writes one line per record to a text stream (stderr by default)."""

    def __init__(self, stream: Optional[TextIO] = None):
        self._stream = stream
        self._lock = threading.Lock()

    @property
    def stream(self) -> TextIO:
        return self._stream if self._stream is not None else sys.stderr

    def emit(self, line: str, record: Dict[str, object]) -> None:
        with self._lock:
            print(line, file=self.stream)


class MemorySink:
    """Keeps every record — the test-assertion sink."""

    def __init__(self):
        self.lines: List[str] = []
        self.records: List[Dict[str, object]] = []
        self._lock = threading.Lock()

    def emit(self, line: str, record: Dict[str, object]) -> None:
        with self._lock:
            self.lines.append(line)
            self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def events(self, event: Optional[str] = None) -> List[Dict[str, object]]:
        """Records, optionally filtered by their ``event`` field."""
        if event is None:
            return list(self.records)
        return [r for r in self.records if r.get("event") == event]

    def clear(self) -> None:
        with self._lock:
            self.lines.clear()
            self.records.clear()


class RotatingFileSink:
    """A size-bounded log file with atomic-rename rotation.

    A long soak must not fill the disk with access-log lines: when the
    live file would exceed ``max_bytes``, it is renamed aside
    (``access.log`` -> ``access.log.1``, shifting ``.1`` -> ``.2`` and
    so on, dropping anything past ``keep``) and a fresh file is opened.
    Rotation uses ``os.replace`` — a reader never sees a half-renamed
    chain, and a crash mid-rotation leaves complete files only.

    Total disk usage is bounded by roughly ``max_bytes * (keep + 1)``
    plus one line of overshoot (the line that triggered rotation is
    written to the *new* file, never split).
    """

    def __init__(
        self,
        path: Path,
        max_bytes: int = 1 << 20,
        keep: int = 3,
    ):
        if max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        if keep < 0:
            raise ValueError("keep cannot be negative")
        self.path = Path(path)
        self.max_bytes = max_bytes
        self.keep = keep
        self._lock = threading.Lock()
        self._handle: Optional[TextIO] = None
        self._size = 0
        self.rotations = 0

    def _open(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")
        self._size = self._handle.tell()

    def _rotate(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        # shift the chain from the oldest end so each os.replace lands
        # on a name that is either free or about to be overwritten
        oldest = self.path.with_name(f"{self.path.name}.{self.keep}")
        if self.keep == 0:
            try:
                os.unlink(self.path)
            except OSError:
                pass
        else:
            try:
                os.unlink(oldest)
            except OSError:
                pass
            for index in range(self.keep - 1, 0, -1):
                source = self.path.with_name(f"{self.path.name}.{index}")
                if source.exists():
                    os.replace(
                        source,
                        self.path.with_name(f"{self.path.name}.{index + 1}"),
                    )
            if self.path.exists():
                os.replace(
                    self.path, self.path.with_name(f"{self.path.name}.1")
                )
        self.rotations += 1

    def emit(self, line: str, record: Dict[str, object]) -> None:
        encoded_len = len(line.encode("utf-8")) + 1
        with self._lock:
            try:
                if self._handle is None:
                    self._open()
                if self._size > 0 and self._size + encoded_len > self.max_bytes:
                    self._rotate()
                    self._open()
                assert self._handle is not None
                self._handle.write(line + "\n")
                self._handle.flush()
                self._size += encoded_len
            except (OSError, ValueError):
                # logging must never take the server down; ValueError
                # covers a handle closed underneath us.  Dropping the
                # handle makes the next emit retry a fresh open.
                self._handle = None

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def files(self) -> List[Path]:
        """The live file plus rotated generations, newest first."""
        out = [self.path] if self.path.exists() else []
        for index in range(1, self.keep + 1):
            candidate = self.path.with_name(f"{self.path.name}.{index}")
            if candidate.exists():
                out.append(candidate)
        return out


_NULL_SINK = NullSink()
_STDERR_SINK = StreamSink()


def _active_sink():
    """The sink records go to *right now* (config-resolved)."""
    if STATE.sink is not None:
        return STATE.sink
    return _STDERR_SINK if STATE.enabled else _NULL_SINK


def _needs_quoting(text: str) -> bool:
    return any(ch in text for ch in (' ', '"', '=', '\n', '\t'))


def format_kv(record: Dict[str, object]) -> str:
    """``{"a": 1, "b": "x y"}`` -> ``a=1 b="x y"`` (insertion order)."""
    parts: List[str] = []
    for key, value in record.items():
        if isinstance(value, float):
            text = f"{value:g}"
        else:
            text = str(value)
        if _needs_quoting(text):
            text = '"' + text.replace('"', '\\"') + '"'
        parts.append(f"{key}={text}")
    return " ".join(parts)


def _timestamp() -> str:
    moment = datetime.fromtimestamp(STATE.clock(), tz=timezone.utc)
    return moment.strftime("%Y-%m-%dT%H:%M:%S.%f")[:-3] + "Z"


class StructuredLogger:
    """One component's handle on the shared logging configuration."""

    def __init__(self, component: str):
        self.component = component

    def child(self, suffix: str) -> "StructuredLogger":
        return get_logger(f"{self.component}.{suffix}")

    def enabled_for(self, level: int) -> bool:
        return STATE.enabled and level >= STATE.log_level

    def log(self, level: int, event: str, **fields: object) -> None:
        if not STATE.enabled or level < STATE.log_level:
            return
        record: Dict[str, object] = {
            "ts": _timestamp(),
            "level": LEVEL_NAMES.get(level, str(level)),
            "component": self.component,
            "event": event,
        }
        record.update(fields)
        if STATE.json_logs:
            line = json.dumps(record, default=str, separators=(",", ":"))
        else:
            line = format_kv(record)
        _active_sink().emit(line, record)

    def debug(self, event: str, **fields: object) -> None:
        self.log(DEBUG, event, **fields)

    def info(self, event: str, **fields: object) -> None:
        self.log(INFO, event, **fields)

    def warning(self, event: str, **fields: object) -> None:
        self.log(WARNING, event, **fields)

    def error(self, event: str, **fields: object) -> None:
        self.log(ERROR, event, **fields)

    def __repr__(self) -> str:
        return f"StructuredLogger({self.component!r})"


_loggers: Dict[str, StructuredLogger] = {}
_loggers_lock = threading.Lock()


def get_logger(component: str) -> StructuredLogger:
    """The (cached) logger for a dotted component name."""
    logger = _loggers.get(component)
    if logger is None:
        with _loggers_lock:
            logger = _loggers.setdefault(
                component, StructuredLogger(component)
            )
    return logger
