"""Structured observability: logging, metrics, and trace spans.

The 1996 PowerPlay was observable by accident — every CGI hit left an
httpd access-log line.  This package makes the reproduction observable
on purpose, with three dependency-free pillars sharing one global
configuration (:mod:`repro.obs.config`):

* :mod:`repro.obs.logs` — structured per-component loggers emitting
  ``key=value`` lines or JSON to pluggable sinks;
* :mod:`repro.obs.metrics` — counters/gauges/histograms with label
  support, rendered in Prometheus text format at ``GET /metrics`` and
  as the ``GET /status`` dashboard;
* :mod:`repro.obs.trace` — nested, thread-local timing spans over the
  estimator, simulator and web stack.

Defaults are chosen for the test suite: the subsystem starts
**disabled** (spans are a shared no-op, loggers drop records before
formatting) and the log sink is a no-op, so nothing prints and the hot
paths pay one branch.  ``repro --log-level info serve`` (or
:func:`enable`) turns everything on at runtime.
"""

from .config import (
    DEBUG,
    ERROR,
    INFO,
    OFF,
    ObsState,
    WARNING,
    configure,
    disable,
    enable,
    is_enabled,
    overridden,
    parse_level,
    restore,
)
from .logs import (
    MemorySink,
    NullSink,
    StreamSink,
    StructuredLogger,
    format_kv,
    get_logger,
)
from .metrics import (
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from .trace import (
    Span,
    clear_traces,
    last_trace,
    recent_traces,
    render_trace,
    span,
)

__all__ = [
    "Counter",
    "DEBUG",
    "DEFAULT_LATENCY_BUCKETS",
    "ERROR",
    "Gauge",
    "Histogram",
    "INFO",
    "MemorySink",
    "MetricsRegistry",
    "NullSink",
    "OFF",
    "ObsState",
    "Span",
    "StreamSink",
    "StructuredLogger",
    "WARNING",
    "clear_traces",
    "configure",
    "disable",
    "enable",
    "format_kv",
    "get_logger",
    "get_registry",
    "is_enabled",
    "last_trace",
    "overridden",
    "parse_level",
    "recent_traces",
    "render_trace",
    "restore",
    "span",
]
