"""Structured observability: logging, metrics, and trace spans.

The 1996 PowerPlay was observable by accident — every CGI hit left an
httpd access-log line.  This package makes the reproduction observable
on purpose, with three dependency-free pillars sharing one global
configuration (:mod:`repro.obs.config`):

* :mod:`repro.obs.logs` — structured per-component loggers emitting
  ``key=value`` lines or JSON to pluggable sinks;
* :mod:`repro.obs.metrics` — counters/gauges/histograms with label
  support, rendered in Prometheus text format at ``GET /metrics`` and
  as the ``GET /status`` dashboard;
* :mod:`repro.obs.trace` — nested, thread-local timing spans over the
  estimator, simulator and web stack.

Defaults are chosen for the test suite: the subsystem starts
**disabled** (spans are a shared no-op, loggers drop records before
formatting) and the log sink is a no-op, so nothing prints and the hot
paths pay one branch.  ``repro --log-level info serve`` (or
:func:`enable`) turns everything on at runtime.
"""

from .config import (
    DEBUG,
    ERROR,
    INFO,
    OFF,
    ObsState,
    WARNING,
    configure,
    disable,
    enable,
    is_enabled,
    overridden,
    parse_level,
    restore,
)
from .logs import (
    MemorySink,
    NullSink,
    StreamSink,
    StructuredLogger,
    format_kv,
    get_logger,
)
from .metrics import (
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from .trace import (
    Span,
    annotate,
    clear_traces,
    current_span,
    graft_remote,
    last_trace,
    recent_traces,
    render_trace,
    span,
    traced,
)
from . import profile, propagate
from .profile import (
    ProfileNode,
    aggregate,
    hot_paths,
    profile_payload,
    render_flamegraph,
    render_profile,
)
from .propagate import (
    REQUEST_HEADER,
    SPAN_HEADER,
    TRACE_HEADER,
    TraceContext,
    current_context,
    decode_span_header,
    encode_span_header,
    extract_context,
    outbound_headers,
    parse_trace_header,
)

__all__ = [
    "Counter",
    "DEBUG",
    "DEFAULT_LATENCY_BUCKETS",
    "ERROR",
    "Gauge",
    "Histogram",
    "INFO",
    "MemorySink",
    "MetricsRegistry",
    "NullSink",
    "OFF",
    "ObsState",
    "ProfileNode",
    "REQUEST_HEADER",
    "SPAN_HEADER",
    "Span",
    "TRACE_HEADER",
    "TraceContext",
    "StreamSink",
    "StructuredLogger",
    "WARNING",
    "aggregate",
    "annotate",
    "clear_traces",
    "configure",
    "current_context",
    "current_span",
    "decode_span_header",
    "disable",
    "enable",
    "encode_span_header",
    "extract_context",
    "format_kv",
    "get_logger",
    "get_registry",
    "graft_remote",
    "hot_paths",
    "is_enabled",
    "last_trace",
    "outbound_headers",
    "overridden",
    "parse_level",
    "parse_trace_header",
    "profile",
    "profile_payload",
    "propagate",
    "recent_traces",
    "render_flamegraph",
    "render_profile",
    "render_trace",
    "restore",
    "span",
    "traced",
]
