"""Structured observability: logging, metrics, and trace spans.

The 1996 PowerPlay was observable by accident — every CGI hit left an
httpd access-log line.  This package makes the reproduction observable
on purpose, with three dependency-free pillars sharing one global
configuration (:mod:`repro.obs.config`):

* :mod:`repro.obs.logs` — structured per-component loggers emitting
  ``key=value`` lines or JSON to pluggable sinks;
* :mod:`repro.obs.metrics` — counters/gauges/histograms with label
  support, rendered in Prometheus text format at ``GET /metrics`` and
  as the ``GET /status`` dashboard;
* :mod:`repro.obs.trace` — nested, thread-local timing spans over the
  estimator, simulator and web stack.

Defaults are chosen for the test suite: the subsystem starts
**disabled** (spans are a shared no-op, loggers drop records before
formatting) and the log sink is a no-op, so nothing prints and the hot
paths pay one branch.  ``repro --log-level info serve`` (or
:func:`enable`) turns everything on at runtime.
"""

from .config import (
    DEBUG,
    ERROR,
    INFO,
    OFF,
    ObsState,
    WARNING,
    configure,
    disable,
    enable,
    is_enabled,
    overridden,
    parse_level,
    restore,
)
from .logs import (
    MemorySink,
    NullSink,
    RotatingFileSink,
    StreamSink,
    StructuredLogger,
    format_kv,
    get_logger,
)
from .metrics import (
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    merge_states,
    parse_series_key,
)
from .trace import (
    Span,
    add_root_hook,
    annotate,
    clear_traces,
    current_span,
    graft_remote,
    last_trace,
    recent_traces,
    remove_root_hook,
    render_trace,
    span,
    traced,
)
from .slo import (
    BurnRatePolicy,
    DEFAULT_SLOS,
    SLO,
    SLOStatus,
    SLOTracker,
    good_total_from_flat,
    route_class,
    worst_state,
)
from .fleet import (
    FleetNode,
    FleetReport,
    FleetScraper,
    family_quantile,
    parse_exposition,
    validate_peer_url,
)
from .recorder import (
    FlightRecord,
    FlightRecorder,
    load_snapshots,
)
from .history import (
    HistoryConfig,
    HistoryError,
    HistoryRecorder,
    HistoryStore,
    QueryResult,
    render_sparkline,
)
from .capacity import (
    CapacityReport,
    RouteCapacity,
    build_capacity_report,
)
from .process import refresh_process_metrics
from . import profile, propagate
from .profile import (
    ProfileNode,
    aggregate,
    hot_paths,
    profile_payload,
    render_flamegraph,
    render_profile,
)
from .propagate import (
    REQUEST_HEADER,
    SPAN_HEADER,
    TRACE_HEADER,
    TraceContext,
    current_context,
    decode_span_header,
    encode_span_header,
    extract_context,
    outbound_headers,
    parse_trace_header,
)

__all__ = [
    "BurnRatePolicy",
    "CapacityReport",
    "Counter",
    "DEBUG",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SLOS",
    "ERROR",
    "FleetNode",
    "FleetReport",
    "FleetScraper",
    "FlightRecord",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "HistoryConfig",
    "HistoryError",
    "HistoryRecorder",
    "HistoryStore",
    "INFO",
    "MemorySink",
    "MetricsRegistry",
    "NullSink",
    "OFF",
    "ObsState",
    "ProfileNode",
    "QueryResult",
    "REQUEST_HEADER",
    "RotatingFileSink",
    "RouteCapacity",
    "SLO",
    "SLOStatus",
    "SLOTracker",
    "SPAN_HEADER",
    "Span",
    "TRACE_HEADER",
    "TraceContext",
    "StreamSink",
    "StructuredLogger",
    "WARNING",
    "add_root_hook",
    "aggregate",
    "annotate",
    "build_capacity_report",
    "clear_traces",
    "configure",
    "current_context",
    "current_span",
    "decode_span_header",
    "disable",
    "enable",
    "encode_span_header",
    "extract_context",
    "family_quantile",
    "format_kv",
    "get_logger",
    "get_registry",
    "good_total_from_flat",
    "graft_remote",
    "hot_paths",
    "is_enabled",
    "last_trace",
    "load_snapshots",
    "merge_states",
    "outbound_headers",
    "overridden",
    "parse_level",
    "parse_trace_header",
    "profile",
    "profile_payload",
    "propagate",
    "parse_exposition",
    "parse_series_key",
    "recent_traces",
    "refresh_process_metrics",
    "remove_root_hook",
    "render_flamegraph",
    "render_profile",
    "render_sparkline",
    "render_trace",
    "restore",
    "route_class",
    "span",
    "traced",
    "validate_peer_url",
    "worst_state",
]
