"""An always-on bounded flight recorder for the request path.

Aircraft keep a flight recorder running at all times precisely because
nobody knows in advance which thirty seconds will matter.  The web
tier does the same here: every handled request appends one small
:class:`FlightRecord` — route, status, latency, trace id, the finished
span tree if tracing was on, and whichever SLO alerts were active — to
a fixed-size ring.  Memory is bounded by ``capacity`` regardless of
traffic, and the append is a deque push under a lock, cheap enough to
leave on in production (``bench_fleet.py`` gates the whole recorder +
SLO path at <2% of loopback request latency).

When something goes wrong — any 5xx response, or an SLO transitioning
to ``page`` — the ring is *snapshotted to disk*: the last N requests
leading up to the incident, written crash-safely (mkstemp + fsync +
atomic rename + directory fsync, the same discipline as the session
and mirror stores).  Snapshots are rate-limited so an error storm
produces a handful of files, not thousands; reading them back
quarantines corrupt files aside as ``*.corrupt`` instead of failing
the whole dump (the pattern from ``registry/store.py``).

``/debug/flight`` serves the live ring and the snapshot inventory;
``repro flight dump | show`` works against a state directory offline.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..state import fsio
from .logs import get_logger
from .metrics import get_registry

__all__ = [
    "FlightRecord",
    "FlightRecorder",
    "consume_root",
    "install_trace_hook",
    "load_snapshots",
]

_LOG = get_logger("obs.recorder")

#: default ring size — enough context around an incident without
#: holding minutes of traffic in memory
DEFAULT_CAPACITY = 256

#: default ceiling on snapshot files kept on disk (oldest pruned)
DEFAULT_MAX_SNAPSHOTS = 16

#: minimum seconds between automatic snapshots — an error storm must
#: not turn into a disk-write storm
DEFAULT_SNAPSHOT_INTERVAL_S = 2.0

#: schema version stamped into every snapshot file
SNAPSHOT_VERSION = 1


def _metric_records():
    return get_registry().counter(
        "powerplay_flight_records_total",
        "Requests captured by the flight recorder.",
    )


def _metric_snapshots():
    return get_registry().counter(
        "powerplay_flight_snapshots_total",
        "Flight-recorder snapshots written to disk, by trigger.",
        ("trigger",),
    )


#: thread-local stash fed by the tracer's root hook: the last finished
#: root span on this thread, waiting for the web layer to attach it to
#: a flight record.  Module-level (one hook for the whole process, no
#: matter how many Applications exist), consumed exactly once.
_trace_stash = threading.local()


def _stash_root(root) -> None:
    _trace_stash.root = root


def install_trace_hook() -> None:
    """Register the recorder's root-span hook with the tracer.

    Idempotent: the tracer deduplicates hooks, so every Application in
    the process shares one stash instead of stacking one hook each.
    """
    from .trace import add_root_hook

    add_root_hook(_stash_root)


def consume_root():
    """Pop the finished root span stashed by the trace hook (or None).

    Consuming clears the stash, so a request handled with tracing
    disabled can never pick up a stale tree from an earlier request on
    the same thread.
    """
    root = getattr(_trace_stash, "root", None)
    _trace_stash.root = None
    return root


@dataclass
class FlightRecord:
    """One request as the flight recorder saw it."""

    route: str
    method: str
    status: int
    duration_ms: float
    request_id: str = ""
    trace_id: str = ""
    user: str = ""
    spans: Optional[Dict[str, object]] = None  # finished root span payload
    alerts: Tuple[str, ...] = ()  # SLO names not in "ok" at record time
    at: float = 0.0  # wall-clock seconds (epoch)
    seq: int = 0  # monotonically increasing per recorder

    def to_payload(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "seq": self.seq,
            "at": self.at,
            "route": self.route,
            "method": self.method,
            "status": self.status,
            "duration_ms": round(self.duration_ms, 3),
            "request_id": self.request_id,
            "trace_id": self.trace_id,
        }
        if self.user:
            payload["user"] = self.user
        if self.alerts:
            payload["alerts"] = list(self.alerts)
        if self.spans is not None:
            payload["spans"] = self.spans
        return payload


@dataclass
class Snapshot:
    """A snapshot file's parsed contents (see :func:`load_snapshots`)."""

    path: Path
    reason: str
    trigger: str
    written_at: float
    records: List[Dict[str, object]] = field(default_factory=list)
    slo: Optional[Dict[str, object]] = None


class FlightRecorder:
    """The bounded ring plus its snapshot-to-disk machinery.

    ``snapshot_dir=None`` keeps the recorder purely in-memory (tests,
    embedded use); the web server points it at ``<state>/flight/``.
    ``clock`` (wall) and ``monotonic`` are injectable for deterministic
    tests.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        snapshot_dir: Optional[Path] = None,
        max_snapshots: int = DEFAULT_MAX_SNAPSHOTS,
        snapshot_interval_s: float = DEFAULT_SNAPSHOT_INTERVAL_S,
        clock: Callable[[], float] = time.time,
        monotonic: Callable[[], float] = time.monotonic,
    ):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.snapshot_dir = Path(snapshot_dir) if snapshot_dir else None
        self.max_snapshots = max_snapshots
        self.snapshot_interval_s = snapshot_interval_s
        self._clock = clock
        self._monotonic = monotonic
        self._ring: List[FlightRecord] = []
        self._start = 0  # ring read head
        self._seq = 0
        self._lock = threading.Lock()
        self._last_snapshot_mono: Optional[float] = None
        self._snapshot_seq = 0
        #: (filename, reason) pairs for snapshots written this process
        self.snapshots_written: List[Tuple[str, str]] = []

    # -- capture ------------------------------------------------------------

    def record(
        self,
        route: str,
        method: str,
        status: int,
        duration_ms: float,
        request_id: str = "",
        trace_id: str = "",
        user: str = "",
        spans: Optional[Dict[str, object]] = None,
        alerts: Sequence[str] = (),
    ) -> FlightRecord:
        """Append one request to the ring (and maybe snapshot on 5xx)."""
        with self._lock:
            self._seq += 1
            record = FlightRecord(
                route=route,
                method=method,
                status=status,
                duration_ms=duration_ms,
                request_id=request_id,
                trace_id=trace_id,
                user=user,
                spans=spans,
                alerts=tuple(alerts),
                at=self._clock(),
                seq=self._seq,
            )
            if len(self._ring) < self.capacity:
                self._ring.append(record)
            else:
                self._ring[self._start] = record
                self._start = (self._start + 1) % self.capacity
        _metric_records().inc()
        if status >= 500:
            self.snapshot(reason=f"5xx on {route}", trigger="5xx")
        return record

    def records(self, limit: Optional[int] = None) -> List[FlightRecord]:
        """Ring contents, oldest first (a copy; safe to iterate)."""
        with self._lock:
            ordered = self._ring[self._start:] + self._ring[: self._start]
        if limit is not None and limit >= 0:
            ordered = ordered[-limit:]
        return ordered

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    # -- snapshots ----------------------------------------------------------

    def snapshot(
        self,
        reason: str,
        trigger: str = "manual",
        slo_payload: Optional[Dict[str, object]] = None,
        force: bool = False,
    ) -> Optional[Path]:
        """Write the current ring to disk (rate-limited unless forced).

        Returns the written path, or ``None`` when there is no snapshot
        directory or the rate limiter suppressed the write.  SLO page
        transitions pass ``force=True``: the transition snapshot is the
        one a responder reads first, it must never be suppressed by an
        earlier 5xx snapshot.
        """
        if self.snapshot_dir is None:
            return None
        now_mono = self._monotonic()
        with self._lock:
            if (
                not force
                and self._last_snapshot_mono is not None
                and now_mono - self._last_snapshot_mono
                < self.snapshot_interval_s
            ):
                return None
            self._last_snapshot_mono = now_mono
            self._snapshot_seq += 1
            sequence = self._snapshot_seq
            ordered = self._ring[self._start:] + self._ring[: self._start]
        payload = {
            "version": SNAPSHOT_VERSION,
            "reason": reason,
            "trigger": trigger,
            "written_at": self._clock(),
            "records": [record.to_payload() for record in ordered],
        }
        if slo_payload is not None:
            payload["slo"] = slo_payload
        name = f"flight-{sequence:04d}-{_slug(trigger)}.json"
        path = self.snapshot_dir / name
        try:
            self.snapshot_dir.mkdir(parents=True, exist_ok=True)
            _atomic_write(
                path, json.dumps(payload, sort_keys=True, indent=1)
            )
        except OSError as exc:  # disk trouble must not fail the request
            _LOG.warning("snapshot_failed", reason=reason, error=str(exc))
            return None
        self.snapshots_written.append((name, reason))
        _metric_snapshots().inc(trigger=trigger)
        _LOG.info(
            "snapshot", file=name, reason=reason, trigger=trigger,
            records=len(payload["records"]),
        )
        self._prune_snapshots()
        return path

    def _prune_snapshots(self) -> None:
        if self.snapshot_dir is None or self.max_snapshots < 1:
            return
        try:
            files = sorted(self.snapshot_dir.glob("flight-*.json"))
        except OSError:  # pragma: no cover - directory vanished
            return
        for stale in files[: max(0, len(files) - self.max_snapshots)]:
            try:
                stale.unlink()
            except OSError:  # pragma: no cover - concurrent cleanup
                pass

    def to_payload(self, limit: Optional[int] = None) -> Dict[str, object]:
        """The JSON shape ``/debug/flight`` serves."""
        records = self.records(limit)
        snapshots: List[str] = []
        if self.snapshot_dir is not None and self.snapshot_dir.is_dir():
            snapshots = sorted(
                path.name for path in self.snapshot_dir.glob("flight-*.json")
            )
        return {
            "capacity": self.capacity,
            "recorded_total": self._seq,
            "records": [record.to_payload() for record in records],
            "snapshots": snapshots,
        }


def _slug(text: str) -> str:
    cleaned = "".join(
        ch if ch.isalnum() or ch == "-" else "-" for ch in text.lower()
    )
    return cleaned.strip("-")[:40] or "snapshot"


def _atomic_write(path: Path, text: str) -> None:
    """mkstemp + fsync + atomic rename + directory fsync (state.fsio)."""
    fsio.atomic_write_text(path, text)


def _quarantine(path: Path, reason: str) -> Path:
    """Move a corrupt snapshot aside (never silently use or delete it)."""
    target = fsio.quarantine_file(path)
    _LOG.warning(
        "snapshot_quarantine", file=path.name, moved_to=target.name,
        reason=reason,
    )
    return target


def load_snapshots(
    snapshot_dir: Path, quarantine: bool = True
) -> List[Snapshot]:
    """Read every snapshot in a directory, oldest first.

    A file that is not valid JSON — torn by a crash predating the
    atomic writer, or hand-damaged — is quarantined aside (``.corrupt``
    suffix) and skipped, so one bad file cannot hide the good ones.
    """
    snapshot_dir = Path(snapshot_dir)
    if not snapshot_dir.is_dir():
        return []
    out: List[Snapshot] = []
    for path in sorted(snapshot_dir.glob("flight-*.json")):
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            if not isinstance(payload, dict) or "records" not in payload:
                raise ValueError("not a flight snapshot")
        except (OSError, ValueError) as exc:
            if quarantine:
                try:
                    _quarantine(path, str(exc))
                except OSError:  # pragma: no cover - concurrent cleanup
                    pass
            continue
        out.append(
            Snapshot(
                path=path,
                reason=str(payload.get("reason", "")),
                trigger=str(payload.get("trigger", "")),
                written_at=float(payload.get("written_at", 0.0)),
                records=list(payload.get("records", [])),
                slo=payload.get("slo"),
            )
        )
    return out
