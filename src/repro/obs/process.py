"""Process self-metrics: uptime, resident set size, open fds.

Host-level gauges the telemetry history records alongside the request
counters — a memory leak or fd leak over a multi-day soak shows up as a
trend in ``/history`` long before it kills the process.

Everything is best-effort and stdlib-only: ``/proc`` where it exists
(Linux), :mod:`resource` as the fallback, and a gauge is simply not set
when the platform offers no way to measure it — absent is honest,
zero would be a lie.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Dict, Optional

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX
    resource = None  # type: ignore[assignment]

__all__ = ["refresh_process_metrics"]

#: process epoch for the uptime gauge (module import ~= process start)
_STARTED = time.monotonic()


def _rss_bytes() -> Optional[float]:
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as handle:
            fields = handle.read().split()
        return float(fields[1]) * os.sysconf("SC_PAGESIZE")
    except (OSError, IndexError, ValueError):
        pass
    if resource is not None:
        try:
            peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        except OSError:  # pragma: no cover - exotic platforms
            return None
        # ru_maxrss is KiB on Linux, bytes on macOS; either way it is
        # the peak, which is the honest fallback when live RSS is
        # unavailable
        import sys

        scale = 1 if sys.platform == "darwin" else 1024
        return float(peak) * scale
    return None  # pragma: no cover - non-POSIX without /proc


def _open_fds() -> Optional[float]:
    for fd_dir in ("/proc/self/fd", "/dev/fd"):
        try:
            return float(len(os.listdir(fd_dir)))
        except OSError:
            continue
    return None


def refresh_process_metrics(
    registry=None,
    clock: Callable[[], float] = time.monotonic,
) -> Dict[str, float]:
    """Set the process gauges to current values; returns what was set.

    Gauges are get-or-create, so calling this from every sampling site
    (``/metrics`` render, fleet sample, history round) is idempotent
    registration plus a cheap refresh.
    """
    if registry is None:
        from . import metrics as m

        registry = m.get_registry()
    values: Dict[str, float] = {
        "powerplay_process_uptime_seconds": max(0.0, clock() - _STARTED),
    }
    rss = _rss_bytes()
    if rss is not None:
        values["powerplay_process_rss_bytes"] = rss
    fds = _open_fds()
    if fds is not None:
        values["powerplay_process_open_fds"] = fds
    help_texts = {
        "powerplay_process_uptime_seconds":
            "Seconds since this process started.",
        "powerplay_process_rss_bytes":
            "Resident set size of this process in bytes.",
        "powerplay_process_open_fds":
            "Open file descriptors held by this process.",
    }
    for name, value in values.items():
        registry.gauge(name, help_texts[name]).set(value)
    return values
