"""Span-based profiling: where did the time actually go?

ROADMAP's "fast as the hardware allows" needs attribution before
optimisation: Coburn et al. and HL-Pow both stress that estimation
throughput only improves once you can *see* the hot path.  This module
turns the trace ring (:func:`repro.obs.trace.recent_traces`) into a
call-tree profile:

* **self time** — a span's duration minus its children's, the share it
  spent in its own code rather than delegating;
* **aggregation** — recent root spans merged by call path
  (``evaluate_power/design/design``...) into one tree of
  count / total / self / min / max per node;
* **rendering** — a deterministic top-N hot-path table (sorted by self
  time, ties broken by path) and a text flamegraph whose bar widths are
  proportional to total time;
* **export** — a JSON payload for ``GET /profile?fmt=json`` and the CI
  artifact.

Everything here is read-only over finished spans: profiling adds zero
cost to traced code, and nothing at all when tracing is off.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .trace import Span

__all__ = [
    "ProfileNode",
    "aggregate",
    "hot_paths",
    "profile_payload",
    "render_flamegraph",
    "render_profile",
    "self_seconds",
]


def self_seconds(node: Span) -> float:
    """A span's self time: duration minus children, floored at zero.

    Remote (grafted) children are subtracted too — their wall time
    elapsed inside the local fetch span, even though it was measured on
    the provider's clock.  The floor guards against clock skew making
    children sum past the parent.
    """
    return max(0.0, node.duration - sum(c.duration for c in node.children))


@dataclass
class ProfileNode:
    """Aggregated statistics for one call path across many traces."""

    name: str
    count: int = 0
    total_s: float = 0.0
    self_s: float = 0.0
    min_s: float = math.inf
    max_s: float = 0.0
    remote: bool = False
    children: Dict[str, "ProfileNode"] = field(default_factory=dict)

    def observe(self, node: Span) -> None:
        self.count += 1
        self.total_s += node.duration
        self.self_s += self_seconds(node)
        self.min_s = min(self.min_s, node.duration)
        self.max_s = max(self.max_s, node.duration)
        self.remote = self.remote or node.remote

    def child(self, name: str) -> "ProfileNode":
        existing = self.children.get(name)
        if existing is None:
            existing = self.children[name] = ProfileNode(name)
        return existing

    def walk(self, path: Tuple[str, ...] = ()) -> Iterator[Tuple[Tuple[str, ...], "ProfileNode"]]:
        """(path, node) over the whole tree, children sorted by name."""
        here = path + (self.name,)
        yield here, self
        for name in sorted(self.children):
            yield from self.children[name].walk(here)

    @property
    def self_total(self) -> float:
        """Sum of self time over this subtree (== ``total_s`` up to the
        zero-floor tolerance — the invariant ``/profile`` asserts)."""
        return self.self_s + sum(
            child.self_total for child in self.children.values()
        )


def aggregate(roots: Sequence[Span]) -> ProfileNode:
    """Merge finished root spans into one call-tree profile.

    Spans are grouped by *path* — the sequence of span names from the
    root down — so ``design`` under ``evaluate_power`` and ``design``
    under another ``design`` stay separate rows, exactly like a
    conventional profiler's call tree.  The synthetic top node's totals
    are the sum over all observed roots.
    """
    top = ProfileNode("(traces)")
    for root in roots:
        top.count += 1
        top.total_s += root.duration
        top.min_s = min(top.min_s, root.duration)
        top.max_s = max(top.max_s, root.duration)
        _merge(top.child(root.name), root)
    if top.count == 0:
        top.min_s = 0.0
    return top


def _merge(profile: ProfileNode, node: Span) -> None:
    profile.observe(node)
    for child in node.children:
        _merge(profile.child(child.name), child)


def hot_paths(
    profile: ProfileNode, top: int = 10
) -> List[Tuple[str, ProfileNode]]:
    """The ``top`` hottest call paths by aggregate self time.

    Deterministic: sorted by self time descending, then path ascending,
    so equal-cost paths (common with coarse clocks) always list in the
    same order.
    """
    rows: List[Tuple[str, ProfileNode]] = []
    for path, node in profile.walk():
        if len(path) < 2:  # skip the synthetic "(traces)" top node
            continue
        rows.append(("/".join(path[1:]), node))
    rows.sort(key=lambda item: (-item[1].self_s, item[0]))
    return rows[: max(0, top)]


def render_profile(profile: ProfileNode, top: int = 10) -> str:
    """The deterministic top-N hot-path table, humans first::

        path                          count   total    self    min     max
        evaluate_power/design             5  4.1ms   0.3ms  0.7ms   0.9ms
    """
    rows = hot_paths(profile, top)
    if not rows:
        return "(no traces collected — enable tracing and run a workload)"
    width = max(4, max(len(path) for path, _node in rows))
    total = profile.total_s

    def ms(seconds: float) -> str:
        return f"{seconds * 1e3:9.3f}"

    lines = [
        f"{'path':<{width}}  {'count':>5}  {'total ms':>9}  {'self ms':>9}"
        f"  {'self %':>6}  {'min ms':>9}  {'max ms':>9}"
    ]
    for path, node in rows:
        share = 100.0 * node.self_s / total if total > 0 else 0.0
        marker = "~" if node.remote else " "
        lines.append(
            f"{path:<{width}} {marker}{node.count:>5}  {ms(node.total_s)}"
            f"  {ms(node.self_s)}  {share:>5.1f}%"
            f"  {ms(node.min_s if node.count else 0.0)}  {ms(node.max_s)}"
        )
    lines.append(
        f"{profile.count} trace(s), {profile.total_s * 1e3:.3f} ms total"
        " ('~' marks paths including remote spans)"
    )
    return "\n".join(lines)


def render_flamegraph(profile: ProfileNode, width: int = 60) -> str:
    """A text flamegraph: one line per call path, bar length
    proportional to the path's share of total traced time::

        evaluate_power            ################################ 4.1ms
          design                  ############################     3.8ms

    Children are ordered by total time (then name) so the hottest
    subtree always reads first; the layout is deterministic for a
    deterministic trace ring.
    """
    total = profile.total_s
    if total <= 0 or not profile.children:
        return "(no traced time to draw)"
    label_width = _max_label_width(profile, 0)
    lines: List[str] = []

    def emit(node: ProfileNode, depth: int) -> None:
        bar = max(1, round(width * node.total_s / total))
        label = "  " * depth + node.name + (" ~" if node.remote else "")
        lines.append(
            f"{label:<{label_width}} {'#' * bar:<{width}} "
            f"{node.total_s * 1e3:9.3f}ms"
            f" ({100.0 * node.total_s / total:5.1f}%)"
        )
        ordered = sorted(
            node.children.values(), key=lambda c: (-c.total_s, c.name)
        )
        for child in ordered:
            emit(child, depth + 1)

    ordered_roots = sorted(
        profile.children.values(), key=lambda c: (-c.total_s, c.name)
    )
    for root in ordered_roots:
        emit(root, 0)
    return "\n".join(lines)


def _max_label_width(profile: ProfileNode, depth: int) -> int:
    widest = 0
    for name, child in profile.children.items():
        label = 2 * depth + len(name) + (2 if child.remote else 0)
        widest = max(widest, label, _max_label_width(child, depth + 1))
    return max(widest, 8)


def profile_payload(profile: ProfileNode, top: int = 20) -> Dict[str, object]:
    """The JSON shape ``GET /profile?fmt=json`` and CI artifacts use."""

    def node_payload(node: ProfileNode) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "name": node.name,
            "count": node.count,
            "total_s": node.total_s,
            "self_s": node.self_s,
            "min_s": node.min_s if node.count else 0.0,
            "max_s": node.max_s,
            "children": [
                node_payload(node.children[name])
                for name in sorted(node.children)
            ],
        }
        if node.remote:
            payload["remote"] = True
        return payload

    return {
        "traces": profile.count,
        "total_s": profile.total_s,
        "self_total_s": profile.self_total,
        "hot_paths": [
            {
                "path": path,
                "count": node.count,
                "total_s": node.total_s,
                "self_s": node.self_s,
                "min_s": node.min_s if node.count else 0.0,
                "max_s": node.max_s,
            }
            for path, node in hot_paths(profile, top)
        ],
        "tree": node_payload(profile),
    }
