"""Cross-server trace propagation: the PowerPlay federation wire format.

The paper's model libraries "may even live on *remote* servers, fetched
on demand" — so a slow federated ``resolve()`` crosses an HTTP boundary
and, without propagation, its trace stops dead at the socket.  This
module carries trace identity across that boundary, W3C-traceparent
style, over two headers:

``X-PowerPlay-Trace`` (request, requester -> provider)
    ``00-<trace_id>-<span_id>`` — protocol version, the requester's
    32-hex trace ID, and the span ID of the requester's currently open
    span.  The provider's request-handler root span *adopts* this
    context, so both sides of the fetch share one trace.

``X-PowerPlay-Span`` (response, provider -> requester)
    The provider's finished handler span as one line of compact JSON
    (the :meth:`~repro.obs.trace.Span.to_payload` shape).  The
    requester grafts the decoded tree under its local fetch span —
    one hierarchical trace for the whole federated call.

Parsing is defensive on both headers: anything malformed, oversized,
wrongly-charactered or too deep is **ignored**, never an error — a
hostile or buggy peer can at worst opt out of tracing.  Trace and span
IDs are restricted to lowercase hex, so a crafted ID can never smuggle
CR/LF (header injection) into an outbound request.

Every decision is counted in ``powerplay_trace_propagation_total``
(ops: ``inject``, ``extract_ok``, ``extract_ignored``, ``graft``,
``graft_ignored``) so a federation that silently loses trace context is
visible on ``GET /metrics``.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from .config import STATE
from .metrics import get_registry
from .trace import Span, TRACER

__all__ = [
    "REQUEST_HEADER",
    "SPAN_HEADER",
    "TRACE_HEADER",
    "TraceContext",
    "current_context",
    "decode_span_header",
    "encode_span_header",
    "extract_context",
    "format_trace_header",
    "outbound_headers",
    "parse_trace_header",
    "span_from_payload",
]

#: the propagation headers (request, response, and the log-join key)
TRACE_HEADER = "X-PowerPlay-Trace"
SPAN_HEADER = "X-PowerPlay-Span"
REQUEST_HEADER = "X-PowerPlay-Request"

#: wire-format protocol version (the W3C-traceparent convention)
VERSION = "00"

#: hard ceilings — anything beyond them is ignored, never parsed
MAX_TRACE_HEADER_BYTES = 128
MAX_SPAN_HEADER_BYTES = 16384
MAX_SPAN_NODES = 256
MAX_SPAN_DEPTH = 24
MAX_NAME_LENGTH = 120
MAX_ATTRIBUTES = 32
MAX_ATTRIBUTE_TEXT = 256

_HEX_RE = re.compile(r"[0-9a-f]+\Z")


_counter_cache = (None, None)  # (registry, counter)


def _metric_propagation():
    # resolved once per registry: inject/extract run on every federated
    # request, and the registry's creation lock is not free
    global _counter_cache
    registry = get_registry()
    cached_registry, counter = _counter_cache
    if registry is not cached_registry:
        counter = registry.counter(
            "powerplay_trace_propagation_total",
            "Trace-context propagation operations by outcome.",
            ("op",),
        )
        _counter_cache = (registry, counter)
    return counter


def _is_hex_id(value: object, min_len: int, max_len: int) -> bool:
    """Lowercase-hex-only IDs: the charset check that makes header
    injection through a trace ID structurally impossible.  (``\\Z``,
    not ``$`` — ``$`` would admit a trailing newline.)"""
    return (
        isinstance(value, str)
        and min_len <= len(value) <= max_len
        and _HEX_RE.match(value) is not None
    )


@dataclass(frozen=True)
class TraceContext:
    """The identity one hop of a federated call carries across HTTP."""

    trace_id: str  # 32 lowercase hex chars
    span_id: str   # 1..16 lowercase hex chars (the caller's open span)

    def header_value(self) -> str:
        return f"{VERSION}-{self.trace_id}-{self.span_id}"


def format_trace_header(context: TraceContext) -> str:
    """``TraceContext`` -> the ``X-PowerPlay-Trace`` value."""
    return context.header_value()


def parse_trace_header(value: object) -> Optional[TraceContext]:
    """Parse an ``X-PowerPlay-Trace`` value; ``None`` on *any* problem.

    Malformed, oversized, wrong-version, or wrong-charset headers are
    ignored — the request proceeds untraced rather than erroring.
    """
    if not isinstance(value, str) or not value:
        return None
    if len(value) > MAX_TRACE_HEADER_BYTES:
        _metric_propagation().inc(op="extract_ignored")
        return None
    parts = value.split("-")
    if len(parts) != 3:
        _metric_propagation().inc(op="extract_ignored")
        return None
    version, trace_id, span_id = parts
    if (
        version != VERSION
        or not _is_hex_id(trace_id, 32, 32)
        or not _is_hex_id(span_id, 1, 16)
    ):
        _metric_propagation().inc(op="extract_ignored")
        return None
    _metric_propagation().inc(op="extract_ok")
    return TraceContext(trace_id, span_id)


def extract_context(headers: Optional[Mapping[str, str]]) -> Optional[TraceContext]:
    """Pull a :class:`TraceContext` out of a request-header mapping."""
    if headers is None:
        return None
    value = headers.get(TRACE_HEADER)
    if value is None:  # http.server's Message and plain dicts both .get
        return None
    return parse_trace_header(value)


def current_context() -> Optional[TraceContext]:
    """The context an outbound fetch should carry right now.

    ``None`` when tracing is disabled or no span is open — the fetch
    goes out untraced, exactly as before this layer existed.
    """
    if not STATE.enabled:
        return None
    node = TRACER.current()
    if node is None:
        return None
    trace_id = TRACER.current_trace_id()
    # no re-validation: local IDs are hex by construction (minted as
    # {n:x} or adopted only after parse_trace_header vetted them)
    if not trace_id:
        return None
    return TraceContext(trace_id, node.span_id)


def outbound_headers() -> Dict[str, str]:
    """Headers to add to an outbound fetch (``{}`` when untraced)."""
    context = current_context()
    if context is None:
        return {}
    _metric_propagation().inc(op="inject")
    return {TRACE_HEADER: context.header_value()}


# ---------------------------------------------------------------------------
# the response leg: finished sub-span payloads
# ---------------------------------------------------------------------------


def encode_span_header(node: Span) -> str:
    """A finished span tree as one compact JSON line for
    ``X-PowerPlay-Span``.

    Compact JSON never contains raw newlines (they are escaped), so the
    value is header-safe.  If the full tree exceeds the size ceiling,
    the children are dropped and the root alone is sent with
    ``truncated=true`` — a bounded header beats a complete one.
    """
    encoded = json.dumps(
        node.to_payload(), separators=(",", ":"), sort_keys=True
    )
    if len(encoded) <= MAX_SPAN_HEADER_BYTES:
        return encoded
    stub = dict(node.to_payload())
    stub["children"] = []
    attributes = dict(stub.get("attributes", {}))
    attributes["truncated"] = True
    stub["attributes"] = attributes
    encoded = json.dumps(stub, separators=(",", ":"), sort_keys=True)
    if len(encoded) <= MAX_SPAN_HEADER_BYTES:
        return encoded
    return ""  # pathological attributes: send nothing rather than junk


def span_from_payload(payload: object) -> Optional[Span]:
    """Rebuild a :class:`Span` tree from a ``to_payload()`` dict.

    Every node is validated (types, lengths, counts) and marked
    ``remote``; anything out of shape returns ``None`` for the whole
    tree — a half-trusted subtree is worse than none.
    """
    budget = [MAX_SPAN_NODES]
    return _node_from_payload(payload, 0, budget)


def _node_from_payload(payload: object, depth: int, budget: list) -> Optional[Span]:
    if depth > MAX_SPAN_DEPTH or budget[0] <= 0:
        return None
    if not isinstance(payload, dict):
        return None
    name = payload.get("name")
    span_id = payload.get("span_id")
    duration = payload.get("duration_s")
    attributes = payload.get("attributes", {})
    children = payload.get("children", [])
    if not isinstance(name, str) or not 0 < len(name) <= MAX_NAME_LENGTH:
        return None
    if not isinstance(span_id, str) or not 0 < len(span_id) <= 64:
        return None
    if not isinstance(duration, (int, float)) or duration < 0:
        return None
    if not isinstance(attributes, dict) or len(attributes) > MAX_ATTRIBUTES:
        return None
    if not isinstance(children, list) or len(children) > MAX_SPAN_NODES:
        return None
    budget[0] -= 1
    safe_attributes: Dict[str, object] = {}
    for key, value in attributes.items():
        if not isinstance(key, str) or len(key) > MAX_NAME_LENGTH:
            return None
        if isinstance(value, (int, float, bool)) or value is None:
            safe_attributes[key] = value
        else:
            safe_attributes[key] = str(value)[:MAX_ATTRIBUTE_TEXT]
    node = Span(name, span_id, safe_attributes)
    node.duration = float(duration)
    node.remote = True
    trace_id = payload.get("trace_id", "")
    if isinstance(trace_id, str) and _is_hex_id(trace_id, 32, 32):
        node.trace_id = trace_id
    parent_id = payload.get("parent_id", "")
    if isinstance(parent_id, str) and _is_hex_id(parent_id, 1, 16):
        node.parent_id = parent_id
    for child_payload in children:
        child = _node_from_payload(child_payload, depth + 1, budget)
        if child is None:
            return None
        node.children.append(child)
    return node


def decode_span_header(value: object) -> Optional[Span]:
    """Parse an ``X-PowerPlay-Span`` value; ``None`` on any problem."""
    if not isinstance(value, str) or not value:
        return None
    if len(value) > MAX_SPAN_HEADER_BYTES:
        _metric_propagation().inc(op="graft_ignored")
        return None
    try:
        payload = json.loads(value)
    except (ValueError, RecursionError):
        _metric_propagation().inc(op="graft_ignored")
        return None
    node = span_from_payload(payload)
    if node is None:
        _metric_propagation().inc(op="graft_ignored")
        return None
    _metric_propagation().inc(op="graft")
    return node
