"""Trace spans: nested timing trees for profiling and request tracing.

``span("evaluate_power", design="infopad")`` opens a timed region;
spans opened inside it become children, so one PLAY on a hierarchical
design yields a tree mirroring the design hierarchy, each node carrying
its wall time and attributes::

    evaluate_power [0001] 2.41ms  design=infopad
      design [0002] 2.39ms  name=infopad rows=12
        design [0003] 0.52ms  name=video_decoder rows=5

* Span IDs are sequential (``0001``…), not random — deterministic runs
  produce deterministic traces, and nothing here needs global
  uniqueness.
* The span stack is thread-local: concurrent HTTP requests trace
  independently.
* Finished root spans land in :func:`last_trace` (per thread) and a
  small shared ring buffer (:func:`recent_traces`) that ``/status`` and
  the CLI read.
* In no-op mode (the default) :func:`span` returns one shared null
  context manager — entering it allocates nothing, so instrumented hot
  paths stay hot (see ``benchmarks/bench_observability.py``).
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Optional

from .config import STATE

__all__ = [
    "Span",
    "clear_traces",
    "last_trace",
    "recent_traces",
    "render_trace",
    "span",
]

#: finished root spans kept for /status and the CLI
_RING_SIZE = 32


class Span:
    """One timed region; a finished span is an immutable-ish record."""

    __slots__ = (
        "name", "span_id", "attributes", "children",
        "start", "duration",
    )

    def __init__(self, name: str, span_id: str, attributes: Dict[str, object]):
        self.name = name
        self.span_id = span_id
        self.attributes = attributes
        self.children: List["Span"] = []
        self.start = 0.0
        self.duration = 0.0

    def set(self, **attributes: object) -> None:
        """Attach/overwrite attributes mid-span."""
        self.attributes.update(attributes)

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        for node in self.walk():
            if node.name == name:
                return node
        return None

    def to_payload(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "duration_s": self.duration,
            "attributes": dict(self.attributes),
            "children": [child.to_payload() for child in self.children],
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"{self.duration * 1e3:.3f}ms, {len(self.children)} children)"
        )


class _NullSpan:
    """The do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def set(self, **attributes: object) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Thread-local span stacks + a shared ring of finished roots."""

    def __init__(self):
        self._local = threading.local()
        self._lock = threading.Lock()
        self._recent: List[Span] = []
        self._counter = 0

    def _next_id(self) -> str:
        with self._lock:
            self._counter += 1
            return f"{self._counter:04x}"

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def begin(self, name: str, attributes: Dict[str, object]) -> Span:
        node = Span(name, self._next_id(), attributes)
        node.start = STATE.perf()
        stack = self._stack()
        if stack:
            stack[-1].children.append(node)
        stack.append(node)
        return node

    def end(self, node: Span) -> None:
        node.duration = STATE.perf() - node.start
        stack = self._stack()
        # tolerate mispaired exits (an exception mid-span teardown)
        while stack and stack[-1] is not node:
            stack.pop()
        if stack:
            stack.pop()
        if not stack:  # a root finished
            self._local.last = node
            with self._lock:
                self._recent.append(node)
                del self._recent[:-_RING_SIZE]

    def last(self) -> Optional[Span]:
        return getattr(self._local, "last", None)

    def recent(self) -> List[Span]:
        with self._lock:
            return list(self._recent)

    def clear(self) -> None:
        with self._lock:
            self._recent.clear()
        self._local.last = None
        self._local.stack = []


TRACER = Tracer()


class _ActiveSpan:
    """Context manager binding one live span to the tracer."""

    __slots__ = ("_name", "_attributes", "_node")

    def __init__(self, name: str, attributes: Dict[str, object]):
        self._name = name
        self._attributes = attributes
        self._node: Optional[Span] = None

    def __enter__(self) -> Span:
        self._node = TRACER.begin(self._name, self._attributes)
        return self._node

    def __exit__(self, exc_type, exc, tb) -> bool:
        node = self._node
        if node is not None:
            if exc_type is not None:
                node.attributes.setdefault("error", exc_type.__name__)
            TRACER.end(node)
        return False


def span(name: str, /, **attributes: object):
    """Open a traced region (or the shared no-op when disabled)::

        with span("simulate", cycles=200) as sp:
            ...
            sp.set(transitions=result.transitions)
    """
    if not STATE.enabled:
        return _NULL_SPAN
    return _ActiveSpan(name, attributes)


def last_trace() -> Optional[Span]:
    """The most recent finished *root* span on this thread."""
    return TRACER.last()


def recent_traces() -> List[Span]:
    """Finished root spans, oldest first (bounded ring, all threads)."""
    return TRACER.recent()


def clear_traces() -> None:
    TRACER.clear()


def render_trace(root: Span, _unit_total: Optional[float] = None) -> str:
    """Indented text tree: name, id, duration, share of root, attrs."""
    total = root.duration if _unit_total is None else _unit_total
    lines: List[str] = []

    def emit(node: Span, depth: int) -> None:
        share = ""
        if total > 0:
            share = f" {100.0 * node.duration / total:5.1f}%"
        attrs = " ".join(
            f"{key}={value}" for key, value in node.attributes.items()
        )
        lines.append(
            f"{'  ' * depth}{node.name} [{node.span_id}] "
            f"{node.duration * 1e3:.3f}ms{share}"
            + (f"  {attrs}" if attrs else "")
        )
        for child in node.children:
            emit(child, depth + 1)

    emit(root, 0)
    return "\n".join(lines)
