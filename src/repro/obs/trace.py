"""Trace spans: nested timing trees for profiling and request tracing.

``span("evaluate_power", design="infopad")`` opens a timed region;
spans opened inside it become children, so one PLAY on a hierarchical
design yields a tree mirroring the design hierarchy, each node carrying
its wall time and attributes::

    evaluate_power [0001] 2.41ms  design=infopad
      design [0002] 2.39ms  name=infopad rows=12
        design [0003] 0.52ms  name=video_decoder rows=5

* Span IDs are sequential (``0001``…), not random — deterministic runs
  produce deterministic traces, and nothing here needs global
  uniqueness.
* Every root span opens a **trace**: a 32-hex trace ID shared by all
  spans beneath it.  A root may instead *adopt* a remote caller's
  :class:`~repro.obs.propagate.TraceContext` (extracted from an
  ``X-PowerPlay-Trace`` header), in which case it records the caller's
  trace ID and parent span ID — one federated request yields one
  logical trace spanning requester and provider.
* The span stack is thread-local: concurrent HTTP requests trace
  independently.
* Finished root spans land in :func:`last_trace` (per thread) and a
  small shared ring buffer (:func:`recent_traces`) that ``/status``,
  ``/trace``, ``/profile`` and the CLI read.
* :func:`annotate` drops an instant (zero-duration) child span on the
  currently open span — retries and circuit-breaker waits show up in
  the tree without timing anything.  :func:`graft_remote` attaches a
  provider's finished sub-span payload (decoded from an
  ``X-PowerPlay-Span`` response header) under the local fetch span.
* In no-op mode (the default) :func:`span` returns one shared null
  context manager — entering it allocates nothing, so instrumented hot
  paths stay hot (see ``benchmarks/bench_observability.py``).
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Optional

from .config import STATE

__all__ = [
    "Span",
    "add_root_hook",
    "annotate",
    "clear_traces",
    "current_span",
    "graft_remote",
    "last_trace",
    "recent_traces",
    "remove_root_hook",
    "render_trace",
    "span",
    "traced",
]

#: finished root spans kept for /status and the CLI
_RING_SIZE = 32


class Span:
    """One timed region; a finished span is an immutable-ish record.

    ``trace_id`` ties the span to its trace (set on every span while
    tracing).  ``parent_id`` is only set on roots that adopted a remote
    caller's context — it names the caller's span on *another* server.
    ``remote`` marks spans reconstructed from a provider's
    ``X-PowerPlay-Span`` payload: their durations were measured on the
    provider's clock.
    """

    __slots__ = (
        "name", "span_id", "trace_id", "parent_id", "remote",
        "attributes", "children", "start", "duration",
    )

    def __init__(self, name: str, span_id: str, attributes: Dict[str, object]):
        self.name = name
        self.span_id = span_id
        self.trace_id = ""
        self.parent_id = ""
        self.remote = False
        self.attributes = attributes
        self.children: List["Span"] = []
        self.start = 0.0
        self.duration = 0.0

    def set(self, **attributes: object) -> None:
        """Attach/overwrite attributes mid-span."""
        self.attributes.update(attributes)

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        for node in self.walk():
            if node.name == name:
                return node
        return None

    def to_payload(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "name": self.name,
            "span_id": self.span_id,
            "duration_s": self.duration,
            "attributes": dict(self.attributes),
            "children": [child.to_payload() for child in self.children],
        }
        if self.trace_id:
            payload["trace_id"] = self.trace_id
        if self.parent_id:
            payload["parent_id"] = self.parent_id
        if self.remote:
            payload["remote"] = True
        return payload

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"{self.duration * 1e3:.3f}ms, {len(self.children)} children)"
        )


class _NullSpan:
    """The do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def set(self, **attributes: object) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Thread-local span stacks + a shared ring of finished roots."""

    def __init__(self):
        self._local = threading.local()
        self._lock = threading.Lock()
        self._recent: List[Span] = []
        self._counter = 0
        self._trace_counter = 0
        #: called with each finished *root* span, on the finishing
        #: thread — the flight recorder's tap into the request path
        self._root_hooks: List[object] = []

    def _next_id(self) -> str:
        with self._lock:
            self._counter += 1
            return f"{self._counter:04x}"

    def _next_trace_id(self) -> str:
        with self._lock:
            self._trace_counter += 1
            return f"{self._trace_counter:032x}"

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def begin(
        self,
        name: str,
        attributes: Dict[str, object],
        context: Optional[object] = None,
    ) -> Span:
        """Open a span.  ``context`` (a
        :class:`~repro.obs.propagate.TraceContext`) is honoured only
        when this span starts a new thread-local trace — a nested span
        always belongs to its in-process parent."""
        node = Span(name, self._next_id(), attributes)
        node.start = STATE.perf()
        stack = self._stack()
        if stack:
            stack[-1].children.append(node)
            node.trace_id = getattr(self._local, "trace_id", "")
        else:
            if context is not None:
                node.trace_id = context.trace_id
                node.parent_id = context.span_id
            else:
                node.trace_id = self._next_trace_id()
            self._local.trace_id = node.trace_id
        stack.append(node)
        return node

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread (None outside one)."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def current_trace_id(self) -> str:
        if not self._stack():
            return ""
        return getattr(self._local, "trace_id", "")

    def end(self, node: Span) -> None:
        node.duration = STATE.perf() - node.start
        stack = self._stack()
        # tolerate mispaired exits (an exception mid-span teardown)
        while stack and stack[-1] is not node:
            stack.pop()
        if stack:
            stack.pop()
        if not stack:  # a root finished
            self._local.last = node
            with self._lock:
                self._recent.append(node)
                del self._recent[:-_RING_SIZE]
                hooks = list(self._root_hooks)
            for hook in hooks:
                try:
                    hook(node)  # type: ignore[operator]
                except Exception:  # noqa: BLE001 - a hook must never
                    pass  # break the request that finished the span

    def add_root_hook(self, hook) -> None:
        with self._lock:
            if hook not in self._root_hooks:
                self._root_hooks.append(hook)

    def remove_root_hook(self, hook) -> None:
        with self._lock:
            if hook in self._root_hooks:
                self._root_hooks.remove(hook)

    def last(self) -> Optional[Span]:
        return getattr(self._local, "last", None)

    def recent(self) -> List[Span]:
        with self._lock:
            return list(self._recent)

    def clear(self) -> None:
        with self._lock:
            self._recent.clear()
        self._local.last = None
        self._local.stack = []


TRACER = Tracer()


class _ActiveSpan:
    """Context manager binding one live span to the tracer."""

    __slots__ = ("_name", "_attributes", "_node", "_context")

    def __init__(
        self,
        name: str,
        attributes: Dict[str, object],
        context: Optional[object] = None,
    ):
        self._name = name
        self._attributes = attributes
        self._node: Optional[Span] = None
        self._context = context

    def __enter__(self) -> Span:
        self._node = TRACER.begin(self._name, self._attributes, self._context)
        return self._node

    def __exit__(self, exc_type, exc, tb) -> bool:
        node = self._node
        if node is not None:
            if exc_type is not None:
                node.attributes.setdefault("error", exc_type.__name__)
            TRACER.end(node)
        return False


def span(name: str, /, **attributes: object):
    """Open a traced region (or the shared no-op when disabled)::

        with span("simulate", cycles=200) as sp:
            ...
            sp.set(transitions=result.transitions)
    """
    if not STATE.enabled:
        return _NULL_SPAN
    return _ActiveSpan(name, attributes)


def traced(name: str, context, /, **attributes: object):
    """Like :func:`span`, but the root may adopt a remote caller's
    :class:`~repro.obs.propagate.TraceContext` — the server side of
    cross-server propagation.  ``context=None`` behaves exactly like
    :func:`span`."""
    if not STATE.enabled:
        return _NULL_SPAN
    return _ActiveSpan(name, attributes, context)


def current_span() -> Optional[Span]:
    """The innermost open span on this thread, or ``None``."""
    if not STATE.enabled:
        return None
    return TRACER.current()


def annotate(name: str, /, **attributes: object) -> Optional[Span]:
    """Drop an instant (zero-duration) child span on the open span.

    Used to make point events — a retry decision, a circuit-breaker
    wait — visible in the trace tree without opening a timed region.
    Returns the annotation span, or ``None`` when tracing is off or no
    span is open.
    """
    if not STATE.enabled:
        return None
    parent = TRACER.current()
    if parent is None:
        return None
    node = Span(name, TRACER._next_id(), dict(attributes))
    node.trace_id = TRACER.current_trace_id()
    node.start = STATE.perf()
    node.duration = 0.0
    parent.children.append(node)
    return node


def graft_remote(remote_root: Optional[Span]) -> bool:
    """Attach a provider's finished span tree under the open span.

    The remote tree (decoded by
    :func:`repro.obs.propagate.decode_span_header`) keeps the span IDs
    and durations the *provider* measured; callers see one hierarchical
    trace across the federation.  Returns False (and discards the tree)
    when tracing is off, no span is open, or ``remote_root`` is None.
    """
    if remote_root is None or not STATE.enabled:
        return False
    parent = TRACER.current()
    if parent is None:
        return False
    parent.children.append(remote_root)
    return True


def last_trace() -> Optional[Span]:
    """The most recent finished *root* span on this thread."""
    return TRACER.last()


def recent_traces() -> List[Span]:
    """Finished root spans, oldest first (bounded ring, all threads)."""
    return TRACER.recent()


def clear_traces() -> None:
    TRACER.clear()


def add_root_hook(hook) -> None:
    """Register a callable invoked with every finished root span.

    The hook runs on the thread that finished the span, under no lock;
    exceptions it raises are swallowed (observability must never fail
    the request).  This is how the flight recorder captures a request's
    finished span tree without the web layer re-walking the tracer.
    """
    TRACER.add_root_hook(hook)


def remove_root_hook(hook) -> None:
    """Unregister a hook added by :func:`add_root_hook` (idempotent)."""
    TRACER.remove_root_hook(hook)


def render_trace(root: Span, _unit_total: Optional[float] = None) -> str:
    """Indented text tree: name, id, duration, % of root, attrs.

    The ``% of root`` column is guarded against zero-duration roots (a
    trace whose spans all finished inside one clock tick): division by
    zero would otherwise crash exactly on the fastest — most
    interesting — traces.  Spans grafted from a remote provider are
    marked ``~remote`` (their durations come from the provider's
    clock).
    """
    total = root.duration if _unit_total is None else _unit_total
    lines: List[str] = []

    def emit(node: Span, depth: int) -> None:
        if total > 0:
            share = f" {100.0 * node.duration / total:5.1f}%"
        else:
            # zero-duration root: the share is undefined, not 0/0
            share = "    --%"
        attrs = " ".join(
            f"{key}={value}" for key, value in node.attributes.items()
        )
        marker = " ~remote" if node.remote else ""
        lines.append(
            f"{'  ' * depth}{node.name} [{node.span_id}]{marker} "
            f"{node.duration * 1e3:.3f}ms{share}"
            + (f"  {attrs}" if attrs else "")
        )
        for child in node.children:
            emit(child, depth + 1)

    emit(root, 0)
    return "\n".join(lines)
