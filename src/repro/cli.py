"""Command-line interface: the PowerPlay workflows without a browser.

    python -m repro estimate fig3 --vdd 1.1
    python -m repro compare
    python -m repro sweep infopad VDD2 1.1 1.5 2.5
    python -m repro battery --design infopad
    python -m repro characterize adder
    python -m repro sorting -n 512
    python -m repro serve --port 8080 --state ~/.powerplay

Every command writes plain text to stdout (CSV with ``--csv`` where a
table is produced) and exits non-zero on error, so it scripts cleanly.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from . import obs
from .core.estimator import compare, evaluate_power, sweep
from .core.report import (
    render_comparison,
    render_coverage,
    render_power,
    render_power_csv,
)
from .core.units import format_quantity
from .designs.infopad import build_infopad
from .designs.luminance import build_figure1_design, build_figure3_design
from .errors import PowerPlayError

DESIGN_BUILDERS: Dict[str, Callable] = {
    "fig1": build_figure1_design,
    "fig3": build_figure3_design,
    "luminance_fig1": build_figure1_design,
    "luminance_fig3": build_figure3_design,
    "infopad": build_infopad,
}


def _build_design(name: str):
    builder = DESIGN_BUILDERS.get(name)
    if builder is None:
        raise PowerPlayError(
            f"unknown design {name!r}; pick from {sorted(set(DESIGN_BUILDERS))}"
        )
    return builder()


def cmd_estimate(args: argparse.Namespace) -> int:
    design = _build_design(args.design)
    overrides = {}
    if args.vdd is not None:
        key = "VDD2" if args.design == "infopad" else "VDD"
        overrides[key] = args.vdd
    report = evaluate_power(design, overrides=overrides or None)
    if args.csv:
        print(render_power_csv(report), end="")
    else:
        print(render_power(report, max_depth=args.depth))
        print()
        print(render_coverage(report, limit=8))
    if args.trace:
        trace = obs.last_trace()
        if trace is not None:
            print()
            print("Evaluation trace:")
            print(obs.render_trace(trace))
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    import json as _json

    design = _build_design(args.design)
    obs.clear_traces()
    for _ in range(max(1, args.repeat)):
        evaluate_power(design)
    profile = obs.aggregate(obs.recent_traces())
    if args.json:
        print(_json.dumps(obs.profile_payload(profile, top=args.top),
                          indent=1, sort_keys=True))
        return 0
    print(f"Profile of evaluate_power({args.design!r}) "
          f"over {max(1, args.repeat)} run(s):")
    print()
    print(obs.render_profile(profile, top=args.top))
    if args.flamegraph:
        print()
        print(obs.render_flamegraph(profile))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    designs = [_build_design(name) for name in args.designs]
    print(render_comparison(compare(designs)))
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    if args.axis or args.resume:
        return _cmd_sweep_engine(args)
    if not args.parameter or not args.values:
        raise PowerPlayError(
            "give PARAMETER VALUES... for a quick single-parameter sweep, "
            "or at least one --axis for an engine sweep"
        )
    design = _build_design(args.design)
    results = sweep(design, args.parameter, args.values)
    print(f"{args.parameter},power_w")
    for value, watts in results:
        print(f"{value:g},{watts:.6e}")
    return 0


def _job_store(state: str):
    from .explore import JobStore

    return JobStore(Path(state).expanduser() / "jobs")


def _cmd_sweep_engine(args: argparse.Namespace) -> int:
    """Multi-axis sweep through :mod:`repro.explore` — optionally as a
    persistent, resumable job (``--state``)."""
    from .explore import (
        DerivedObjective,
        ParameterSpace,
        coupled_from_spec,
        parse_axis_spec,
    )
    from .explore.engine import run_job, run_sweep

    stopper = None
    finished = {"n": 0}
    if args.max_chunks:

        def stopper() -> bool:
            return finished["n"] >= args.max_chunks

    def _count_chunks(job) -> None:
        """Make --max-chunks count both exhaustive and phase chunks."""
        if not args.max_chunks:
            return
        original = job.record_chunk

        def counting(start, stop, rows, seconds):
            original(start, stop, rows, seconds)
            finished["n"] += 1

        job.record_chunk = counting
        original_phase = job.record_phase_chunk

        def counting_phase(phase, ordinal, indices, rows, seconds):
            original_phase(phase, ordinal, indices, rows, seconds)
            finished["n"] += 1

        job.record_phase_chunk = counting_phase

    if args.resume:
        if not args.state:
            raise PowerPlayError("--resume needs --state (the job store)")
        store = _job_store(args.state)
        job = store.job(args.resume)
        print(
            f"resuming {job.job_id}: {job.done_points}/{job.total_points} "
            f"points already checkpointed"
        )
        _count_chunks(job)
        run_job(job, should_stop=stopper)
        return _print_job_results(job, args)

    design = _build_design(args.design)
    axes = [parse_axis_spec(spec) for spec in args.axis]
    coupled = [coupled_from_spec(spec) for spec in args.couple]
    derived = []
    for spec in args.derive:
        if "=" not in spec:
            raise PowerPlayError(
                f"--derive {spec!r} must look like name=expression"
            )
        name, _, source = spec.partition("=")
        derived.append(DerivedObjective(name.strip(), source.strip()))
    objectives = tuple(
        part.strip() for part in args.objectives.split(",") if part.strip()
    )
    from .explore.space import DEFAULT_POINT_CAP

    cap = DEFAULT_POINT_CAP if args.max_points is None else args.max_points
    surrogate = None
    if args.surrogate:
        surrogate = {
            "train_frac": args.train_frac,
            "train_seed": args.train_seed,
            "verify_top": args.verify_top,
            "max_error": args.max_error,
            "basis": args.basis,
        }
    # surrogate sweeps enumerate lazily — the cap may exceed the
    # exact-sweep ceiling because most points are predicted, not walked
    space = ParameterSpace(
        axes, coupled, point_cap=cap, lazy=surrogate is not None
    )
    print(f"sweep {design.name}: {space!r}")

    if args.state:
        store = _job_store(args.state)
        job = store.create(
            design, space, objectives=objectives, derived=derived,
            owner="cli", workers=args.workers, mode=args.mode,
            chunk_size=args.chunk_size, prune=args.prune,
            surrogate=surrogate,
        )
        print(f"job {job.job_id} created in {store.root}")
        _count_chunks(job)
        run_job(job, should_stop=stopper)
        return _print_job_results(job, args)

    if surrogate is not None:
        # ephemeral surrogate run: same phase engine, no persistence
        from .explore.jobs import SweepJob

        job = SweepJob(
            "job-0000", "cli", design, space,
            objectives=objectives, derived=derived,
            workers=args.workers, mode=args.mode,
            chunk_size=args.chunk_size, prune=args.prune,
            surrogate=surrogate,
        )
        _count_chunks(job)
        run_job(job, should_stop=stopper)
        return _print_job_results(job, args)

    outcome = run_sweep(
        design, space, objectives=objectives, derived=derived,
        workers=args.workers, mode=args.mode,
        chunk_size=args.chunk_size, prune=args.prune,
        should_stop=stopper,
    )
    return _print_outcome(
        outcome.rows, outcome.axis_names, outcome.objective_names,
        outcome.report, args,
    )


def _print_job_results(job, args: argparse.Namespace) -> int:
    summary = job.summary()
    kind = "surrogate " if job.surrogate is not None else ""
    print(
        f"{kind}job {summary['job_id']} state={summary['state']} "
        f"exact points={summary['done']}/{summary['points']} "
        f"mode={job.mode} workers={job.workers}"
    )
    if job.state != "done":
        if job.state == "cancelled":
            print(
                f"resume with: repro sweep {job.design_name} "
                f"--state <state> --resume {job.job_id}"
            )
        elif job.error:
            print(f"error: {job.error}")
        return 1
    if job.surrogate is not None:
        from .surrogate.runner import surrogate_report

        report = surrogate_report(job)
        print(
            f"surrogate: trained on {report.train_points} exact points, "
            f"predicted {report.predicted_points}, verified "
            f"{report.verified_points} (front {report.front_size}, "
            f"{report.unverified_front} front row(s) left predicted)"
        )
        for name, entry in sorted(report.fits.items()):
            print(
                f"  fit {name}: basis={entry['basis']} holdout max "
                f"{entry['holdout_max_rel']:.4%} / p95 "
                f"{entry['holdout_p95_rel']:.4%}"
            )
        print(
            f"  error bound {report.error_bound:.4%} (holdout), "
            f"observed {report.observed_max_rel:.4%} on verified rows"
        )
        if report.dropped_non_finite:
            print(
                f"  {report.dropped_non_finite} predicted point(s) "
                "dropped as non-finite"
            )
    return _print_outcome(
        job.result_rows(), job.space.axis_names, job.objective_names,
        None, args,
    )


def _print_outcome(rows, axis_names, objective_names, report, args) -> int:
    from .explore import export_csv, export_json, pareto_rows, sensitivity_ranking

    if report is not None:
        print(
            f"engine: {report.points} points in {report.chunks} chunks, "
            f"{report.seconds:.3f} s, memo {report.hits} hits / "
            f"{report.misses} misses"
        )
    failed = sum(1 for row in rows if row["error"])
    if failed:
        print(f"warning: {failed} point(s) failed to evaluate")
    primary = objective_names[0] if objective_names else "power"
    if len(objective_names) >= 2:
        front = pareto_rows(rows, objective_names)
        print(f"pareto front over ({', '.join(objective_names)}): "
              f"{len(front)} of {len(rows)} points")
        header = ["index"] + axis_names + objective_names
        print("  " + "  ".join(header))
        for row in front:
            cells = [str(row["index"])]
            cells += [f"{row['values'][n]:g}" for n in axis_names]
            cells += [f"{row['objectives'][n]:.4e}" for n in objective_names]
            print("  " + "  ".join(cells))
    else:
        best = sorted(
            (row for row in rows if not row["error"]),
            key=lambda row: row["objectives"][primary],
        )[:5]
        print(f"cheapest points by {primary}:")
        for row in best:
            values = ", ".join(
                f"{n}={row['values'][n]:g}" for n in axis_names
            )
            print(f"  [{row['index']}] {values}: "
                  f"{row['objectives'][primary]:.4e}")
    ranking = sensitivity_ranking(rows, axis_names, primary)
    if ranking:
        print(f"sensitivity of {primary} (mean spread per axis):")
        for entry in ranking:
            print(f"  {entry['axis']:16s} {entry['spread']:.4e} "
                  f"({entry['relative']:.1%} of mean)")
    if args.csv_out:
        Path(args.csv_out).write_text(
            export_csv(rows, axis_names, objective_names)
        )
        print(f"full results (CSV) written to {args.csv_out}")
    if args.json_out:
        Path(args.json_out).write_text(
            export_json(rows, axis_names, objective_names)
        )
        print(f"full results (JSON) written to {args.json_out}")
    return 0


def cmd_jobs(args: argparse.Namespace) -> int:
    store = _job_store(args.state)
    if args.cancel:
        job = store.job(args.cancel)
        job.request_cancel()
        print(f"cancel requested for {job.job_id} (state={job.state})")
        return 0
    jobs = store.list_jobs()
    if not jobs:
        print(f"no jobs in {store.root}")
        return 0
    print("job        state      points       design     owner  objectives")
    for job in jobs:
        summary = job.summary()
        progress = f"{summary['done']}/{summary['points']}"
        print(
            f"{summary['job_id']:10s} {summary['state']:10s} "
            f"{progress:>11s}  {summary['design']:10s} "
            f"{summary['owner']:6s} {summary['objectives']}"
        )
        if summary["error"]:
            print(f"           error: {summary['error']}")
    return 0


def cmd_optimize(args: argparse.Namespace) -> int:
    from .core.model import VoltageScaledTimingModel
    from .core.optimize import optimize_voltage

    design = _build_design(args.design)
    if args.design == "infopad":
        supply = "VDD2"
        chip = design.row("custom_hardware").design
        default_frequency = (
            chip.row("luminance_chip").design.scope["f_pixel"] / 4
        )
    else:
        supply = "VDD"
        default_frequency = design.scope["f_pixel"] / 4
    frequency = args.frequency or default_frequency
    timing = VoltageScaledTimingModel(
        "critical_path", args.delay_ref, v_ref=args.v_ref
    )
    result = optimize_voltage(
        design, timing, frequency=frequency,
        v_low=args.v_low, v_high=args.v_high, supply=supply,
    )
    print(f"{args.design}: optimizing {supply} for "
          f"{format_quantity(frequency, 'Hz')} "
          f"(critical path {format_quantity(args.delay_ref, 's')} "
          f"@ {args.v_ref:g} V)")
    print(f"  minimum feasible {supply}: {result.vdd:.3f} V "
          f"(nominal {result.nominal_vdd:g} V)")
    print(f"  power at optimum:  {format_quantity(result.power, 'W')}")
    print(f"  power at nominal:  {format_quantity(result.nominal_power, 'W')}")
    print(f"  saving: {result.saving:.1%}")
    return 0


def cmd_battery(args: argparse.Namespace) -> int:
    from .models.battery import NICD_6V, NIMH_6V, battery_life

    design = _build_design(args.design)
    watts = evaluate_power(design).power
    print(f"{args.design}: {format_quantity(watts, 'W')} system input power")
    for pack in (NIMH_6V, NICD_6V):
        hours = battery_life(watts, pack)
        print(
            f"  {pack.name:10s} {pack.voltage:.0f} V / {pack.capacity_ah:.1f} Ah"
            f" -> {hours:5.2f} h"
        )
    return 0


def cmd_characterize(args: argparse.Namespace) -> int:
    from .library.characterize import (
        characterize_adder,
        characterize_memory,
        characterize_multiplier,
    )

    if args.cell == "adder":
        _model, fit = characterize_adder(cycles=args.cycles)
    elif args.cell == "memory":
        _model, fit = characterize_memory(cycles=args.cycles)
    else:
        _model, fit = characterize_multiplier(cycles=args.cycles)
    print(f"model form: {fit.model_form}")
    for name, value in fit.coefficients.items():
        print(f"  {name} = {format_quantity(value, 'F')}")
    print(f"R^2 = {fit.r_squared:.5f}; "
          f"max relative error = {fit.max_relative_error:.2%}; "
          f"within octave: {fit.within_octave}")
    return 0


def cmd_sorting(args: argparse.Namespace) -> int:
    from .models.processor import algorithm_energy
    from .sim.sorting import ALGORITHMS, profile_sort, random_data

    data = random_data(args.count, seed=args.seed)
    rows = []
    for algorithm in sorted(ALGORITHMS):
        _out, profile = profile_sort(algorithm, data)
        rows.append((algorithm, profile.total_instructions,
                     algorithm_energy(profile)))
    rows.sort(key=lambda row: row[2])
    best = rows[0][2]
    print(f"n = {args.count}")
    for algorithm, instructions, energy in rows:
        print(f"  {algorithm:10s} {instructions:>9} instrs "
              f"{energy * 1e6:>10.2f} uJ  ({energy / best:5.1f}x)")
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    import tempfile

    from .loadgen import (
        HttpTarget,
        InProcessTarget,
        generate_workload,
        replay_serial,
        run_script,
        summarize_latencies,
        verify,
    )
    from .loadgen.stats import histogram_summary
    from .web.app import Application

    script = generate_workload(args.seed, users=args.users, ops=args.ops)
    if args.script_out:
        Path(args.script_out).write_text(script.to_json())
        print(f"workload script written to {args.script_out}")
    mode = "http" if args.http else "in-process"
    print(
        f"workload: seed={args.seed} users={args.users} "
        f"ops={len(script)} threads={args.threads} target={mode}"
    )

    with tempfile.TemporaryDirectory(prefix="powerplay-loadgen-") as tmp:
        root = Path(tmp)
        if args.http:
            from .web.server import PowerPlayServer

            with PowerPlayServer(root / "state") as server:
                application = server.application
                result = run_script(
                    script, HttpTarget(server.base_url), threads=args.threads
                )
        else:
            application = Application(root / "state")
            result = run_script(
                script, InProcessTarget(application), threads=args.threads
            )
        serial_app, serial_result = replay_serial(script, root / "serial")
        report = verify(script, application, serial_app)

    print(
        f"run: {len(result.results)} ops in {result.wall_seconds:.3f} s "
        f"on {result.threads} thread(s) -> {result.throughput:.1f} ops/s"
    )
    classes = result.status_classes()
    print("status: " + " ".join(
        f"{key}={classes[key]}" for key in sorted(classes)
    ))
    latency = summarize_latencies(result.latencies)
    print(
        "latency (driver):  "
        f"p50={latency['p50'] * 1e3:.2f} ms  "
        f"p95={latency['p95'] * 1e3:.2f} ms  "
        f"p99={latency['p99'] * 1e3:.2f} ms  "
        f"max={latency['max'] * 1e3:.2f} ms"
    )
    histogram = application.registry.get("powerplay_http_request_seconds")
    if histogram is not None:
        estimate = histogram_summary(histogram)
        print(
            "latency (server histogram estimate):  "
            + "  ".join(
                f"{key}={value * 1e3:.2f} ms"
                for key, value in estimate.items()
            )
        )
    cache = application.eval_cache.stats()
    lookups = cache["hits"] + cache["misses"]
    rate = cache["hits"] / lookups if lookups else 0.0
    print(
        f"eval cache: hits={cache['hits']} misses={cache['misses']} "
        f"evictions={cache['evictions']} hit_rate={rate:.1%}"
    )
    print(report.summary())

    failed = False
    if result.server_errors:
        failed = True
        print(f"FAIL: {len(result.server_errors)} server errors (5xx/exception)")
        for bad in result.server_errors[:5]:
            print(f"  op {bad.index} {bad.user} {bad.kind}: "
                  f"status {bad.status} {bad.error}")
    if serial_result.server_errors:
        failed = True
        print(
            f"FAIL: serial replay hit "
            f"{len(serial_result.server_errors)} server errors"
        )
    if not report.matches:
        failed = True
        print("FAIL: concurrent end state diverged from serial replay:")
        for difference in report.differences:
            print(f"  {difference}")
    return 1 if failed else 0


def _open_registry(args: argparse.Namespace):
    from .registry import MirrorStore, ModelRegistry

    state = Path(args.state).expanduser()
    store = MirrorStore(state / "registry")
    return ModelRegistry(store, publisher=args.publisher)


def cmd_registry_list(args: argparse.Namespace) -> int:
    registry = _open_registry(args)
    rows = registry.catalog()
    if not rows:
        print("(mirror is empty)")
        return 0
    print(f"{'REF':36} {'PUBLISHER':16} {'DIGEST':14} AGE")
    corrupt = 0
    for row in rows:
        ref = f"{row['kind']}:{row['name']}@v{row['version']}"
        if row.get("corrupt"):
            corrupt += 1
            print(f"{ref:36} {'-':16} {'CORRUPT':14} -")
            continue
        pin = " [pinned]" if row.get("pinned") else ""
        print(
            f"{ref:36} {row['publisher']:16} "
            f"{row['digest'][:12]:14} {row['age_s']:.0f}s{pin}"
        )
    return 1 if corrupt else 0


def cmd_registry_publish(args: argparse.Namespace) -> int:
    registry = _open_registry(args)
    if args.design:
        artifact = registry.publish_design(_build_design(args.design))
    else:
        from .designs.macros import build_macro_library
        from .library.cells import build_default_library
        from .library.datasheet import build_system_library

        entry = None
        for library in (
            build_default_library(),
            build_system_library(),
            build_macro_library(),
        ):
            if args.entry in library:
                entry = library.get(args.entry)
                break
        if entry is None:
            raise PowerPlayError(f"no shared library entry {args.entry!r}")
        artifact = registry.publish_entry(entry)
    print(f"published {artifact.ref} digest {artifact.digest}")
    return 0


def cmd_registry_sync(args: argparse.Namespace) -> int:
    from .registry import RegistrySyncClient, sync_from

    registry = _open_registry(args)
    report = sync_from(registry, RegistrySyncClient(args.peer))
    summary = report.summary()
    print(
        f"sync from {args.peer}: "
        + " ".join(f"{key}={summary[key]}" for key in sorted(summary))
    )
    for ref, reason in sorted(report.integrity_rejected.items()):
        print(f"  REJECTED {ref}: {reason}")
    for ref, reason in sorted(report.conflicts.items()):
        print(f"  CONFLICT {ref}: {reason}")
    for ref, reason in sorted(report.failed.items()):
        print(f"  FAILED {ref}: {reason}")
    return 0 if report.complete else 1


def cmd_registry_verify(args: argparse.Namespace) -> int:
    registry = _open_registry(args)
    result = registry.verify_all()
    for ref in result["ok"]:
        print(f"ok      {ref}")
    for ref in result["corrupt"]:
        print(f"CORRUPT {ref} (quarantined)")
    print(
        f"verified {len(result['ok'])} artifact(s), "
        f"{len(result['corrupt'])} quarantined"
    )
    return 1 if result["corrupt"] else 0


def cmd_registry_pin(args: argparse.Namespace) -> int:
    registry = _open_registry(args)
    registry.store.pin(args.kind, args.name, args.version)
    print(f"pinned {args.kind}:{args.name}@v{args.version}")
    return 0


def cmd_registry_unpin(args: argparse.Namespace) -> int:
    registry = _open_registry(args)
    registry.store.unpin(args.kind, args.name)
    print(f"unpinned {args.kind}:{args.name}")
    return 0


def cmd_registry_gc(args: argparse.Namespace) -> int:
    registry = _open_registry(args)
    evicted = registry.store.gc(args.max_artifacts)
    for ref in evicted:
        print(f"evicted {ref}")
    print(f"gc: {len(evicted)} evicted, {len(registry.store)} kept")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from .web.server import PowerPlayServer

    state = Path(args.state).expanduser()
    # validate peers before binding the socket: a typo'd --peer must
    # fail the command, not trip the scrape breaker mid-soak
    peers = [_parse_peer(spec) for spec in args.peer]
    if args.workers > 1:
        return _serve_multiworker(args, state)
    server = PowerPlayServer(state, host=args.host, port=args.port,
                             server_name=args.name,
                             backend=args.backend,
                             telemetry_tick_s=args.telemetry_tick)
    if args.access_log:
        # size-bounded rotating access log — a soak cannot fill the disk
        sink = obs.RotatingFileSink(
            Path(args.access_log).expanduser(),
            max_bytes=args.access_log_bytes,
            keep=args.access_log_keep,
        )
        obs.enable(level=obs.parse_level(args.log_level or "info"),
                   json_logs=args.log_json, sink=sink)
    if peers:
        server.application.configure_fleet(peers)
        print(f"fleet peers: {', '.join(url for _, url in peers)}")
    if args.history_dir:
        history_dir = Path(args.history_dir).expanduser()
        server.application.attach_history(
            history_dir, interval_s=args.history_interval
        )
        stats = server.application.history.stats()
        segments = sum(stats["segments"].values())
        print(f"telemetry history in {history_dir} "
              f"(every {args.history_interval:g}s, "
              f"{segments} segment(s) on disk)")
    print(f"PowerPlay serving at {server.base_url} (state in {state})")
    print("Ctrl-C to stop.")
    import time as _time

    server.start()
    try:
        while True:
            _time.sleep(3600)
    except KeyboardInterrupt:
        server.stop()
    return 0


def _serve_multiworker(args: argparse.Namespace, state: Path) -> int:
    """``serve --workers N`` — the pre-fork sharded front."""
    from .web.prefork import MultiWorkerFront

    front = MultiWorkerFront(
        state,
        workers=args.workers,
        backend=args.backend,
        host=args.host,
        port=args.port,
        server_name=args.name,
    )
    front.start()
    front.install_signal_handlers()
    print(f"PowerPlay serving at {front.base_url} "
          f"({args.workers} workers, {args.backend} backend, "
          f"{front.mode} mode, state in {state})")
    print("worker /metrics for fleet scraping: "
          + ", ".join(url for _, url in front.internal_peers()))
    print("Ctrl-C to stop.")
    import time as _time

    try:
        while True:
            _time.sleep(3600)
    except KeyboardInterrupt:
        front.stop()
    return 0


def cmd_serve_worker(args: argparse.Namespace) -> int:
    """Hidden: one pre-fork worker (spawned by ``serve --workers``)."""
    from .web.prefork import worker_main

    return worker_main(
        Path(args.state).expanduser(),
        host=args.host,
        port=args.port,
        index=args.index,
        workers=args.workers,
        backend=args.backend,
        server_name=args.name,
        mode=args.mode,
        control_fd=args.control_fd,
    )


def _parse_peer(spec: str) -> tuple:
    """``name=http://host:port`` or a bare URL (name derived).

    The URL is validated here, at parse time, so a typo like
    ``--peer localhost:9090`` (no scheme) fails the command with a clear
    message instead of tripping the scrape breaker on first use.
    """
    from .obs.fleet import validate_peer_url

    if "=" in spec.split("://", 1)[0]:
        name, url = spec.split("=", 1)
        if not name:
            raise PowerPlayError(f"peer {spec!r}: empty name before '='")
    else:
        url = spec
        name = None
    try:
        url = validate_peer_url(url)
    except ValueError as exc:
        raise PowerPlayError(f"peer {spec!r}: {exc}") from exc
    if name is None:
        name = url.split("://", 1)[-1].replace(":", "-").replace("/", "-")
    return name, url


def cmd_fleet(args: argparse.Namespace) -> int:
    """Scrape a set of PowerPlay servers and print fleet state."""
    from .obs.fleet import FleetScraper

    peers = [_parse_peer(spec) for spec in args.peers]
    scraper = FleetScraper(peers, timeout=args.timeout)
    report = scraper.scrape()
    if args.json:
        print(report.to_json())
        return 0 if report.reachable == len(report.nodes) else 1
    print(f"fleet: {report.reachable}/{len(report.nodes)} reachable, "
          f"worst SLO state {report.fleet_state!r} "
          f"(scraped in {report.duration_s * 1e3:.1f} ms)")
    header = f"{'node':16} {'scrape':8} {'health':12} {'slo':6} " \
             f"{'breaker':9} {'requests':>9}"
    print(header)
    print("-" * len(header))
    for node in report.nodes:
        print(f"{node.name:16} {'up' if node.ok else 'down':8} "
              f"{node.health_state:12} {node.slo_state:6} "
              f"{node.breaker_state:9} {int(node.requests_total()):>9}"
              + (f"  {node.error}" if node.error else ""))
    quantiles = report.latency_quantiles()
    quantile_text = "  ".join(
        f"{name}={value * 1e3:.2f}ms" if value else f"{name}=—"
        for name, value in quantiles.items()
    )
    print(f"aggregate: {int(report.aggregate_requests_total())} requests, "
          f"{quantile_text}")
    if report.skipped:
        print("skipped (unmergeable): " + ", ".join(report.skipped))
    return 0 if report.reachable == len(report.nodes) else 1


def cmd_flight(args: argparse.Namespace) -> int:
    """Inspect flight-recorder snapshots (offline) or a live server."""
    import json as _json

    if args.url:
        from .web.client import Browser

        payload = Browser(args.url).get_json("/debug/flight?fmt=json")
        if args.action == "dump":
            print(_json.dumps(payload, indent=1, sort_keys=True))
            return 0
        records = payload.get("records", [])
        print(f"live ring on {payload.get('server', args.url)!r}: "
              f"{payload.get('recorded_total', 0)} recorded, "
              f"{len(records)} in ring")
        _print_flight_records(records[-args.limit:])
        return 0

    from .obs.recorder import load_snapshots

    flight_dir = Path(args.state).expanduser() / "flight"
    snapshots = load_snapshots(flight_dir)
    if args.action == "dump":
        print(_json.dumps(
            [
                {
                    "file": snap.path.name,
                    "reason": snap.reason,
                    "trigger": snap.trigger,
                    "written_at": snap.written_at,
                    "slo": snap.slo,
                    "records": snap.records,
                }
                for snap in snapshots
            ],
            indent=1, sort_keys=True,
        ))
        return 0
    if not snapshots:
        print(f"no flight snapshots under {flight_dir}")
        return 1
    for snap in snapshots:
        print(f"{snap.path.name}: {snap.trigger} — {snap.reason} "
              f"({len(snap.records)} records)")
    latest = snapshots[-1]
    print(f"\nlatest snapshot {latest.path.name!r}:")
    _print_flight_records(latest.records[-args.limit:])
    return 0


def _print_flight_records(records) -> None:
    header = f"{'seq':>6} {'route':24} {'meth':5} {'status':6} " \
             f"{'ms':>9}  {'trace':34} alerts"
    print(header)
    print("-" * len(header))
    for record in records:
        print(f"{record.get('seq', 0):>6} {record.get('route', ''):24} "
              f"{record.get('method', ''):5} {record.get('status', 0):6} "
              f"{record.get('duration_ms', 0.0):>9.2f}  "
              f"{record.get('trace_id', ''):34} "
              f"{','.join(record.get('alerts', []))}")


def _open_history(args: argparse.Namespace):
    """Open a history store read-only-ish from ``--dir`` for offline use."""
    from .obs.history import HistoryConfig, HistoryStore

    root = Path(args.dir).expanduser()
    if not root.exists():
        raise PowerPlayError(f"no history store at {root}")
    return HistoryStore(root, HistoryConfig(fsync_journal=False))


def _history_labels(specs) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    for spec in specs or ():
        if "=" not in spec:
            raise PowerPlayError(
                f"label {spec!r} must look like name=value"
            )
        key, value = spec.split("=", 1)
        labels[key] = value
    return labels


def cmd_history(args: argparse.Namespace) -> int:
    """Inspect an on-disk telemetry history store."""
    import json as _json

    from .obs.history import HistoryError, render_sparkline

    store = _open_history(args)
    try:
        if args.action == "info":
            stats = store.stats()
            if args.json:
                print(_json.dumps(stats, indent=1, sort_keys=True))
                return 0
            segments = stats["segments"]
            print(f"history store {stats['root']}")
            print(f"  segments: raw={segments['raw']} m1={segments['m1']} "
                  f"m15={segments['m15']} "
                  f"(+{stats['active_rounds']} journal round(s))")
            print(f"  on disk:  {stats['bytes']} bytes")
            print(f"  span:     {stats['oldest']} .. {stats['newest']}")
            for name, reason in stats["quarantined"]:
                print(f"  QUARANTINED {name}: {reason}")
            families = store.families()
            print(f"  families: {len(families)}")
            for name in sorted(families):
                print(f"    {name} ({families[name]})")
            return 1 if stats["quarantined"] else 0

        if args.action == "compact":
            done = store.compact()
            print(f"compacted: m1={done['m1']} m15={done['m15']} "
                  f"expired={done['expired']}")
            return 0

        # query
        try:
            result = store.query(
                args.name,
                labels=_history_labels(args.label),
                op=args.op,
                since=args.since,
                until=args.until,
                q=args.q,
            )
        except HistoryError as exc:
            raise PowerPlayError(str(exc)) from exc
        if args.json:
            print(result.to_json())
            return 0
        payload = result.payload()
        print(f"{args.op} {args.name} — {len(payload['series'])} series")
        for entry in payload["series"]:
            points = entry["points"]
            values = [value for _, value in points if value is not None]
            spark = render_sparkline(values, width=32)
            latest = f"{values[-1]:g}" if values else "—"
            print(f"  {entry['key']}")
            print(f"    {len(points):>4} pts  latest={latest:>12}  {spark}")
        return 0
    finally:
        store.close()


def cmd_capacity(args: argparse.Namespace) -> int:
    """Fit throughput/latency trends and project worker needs."""
    from .obs.capacity import build_capacity_report

    store = _open_history(args)
    try:
        report = build_capacity_report(
            store,
            since=args.since,
            until=args.until,
            horizon_s=args.horizon_hours * 3600.0,
            threads_per_worker=args.threads_per_worker,
            utilization=args.utilization,
            quantile=args.quantile,
        )
    finally:
        store.close()
    if args.json:
        print(report.to_json())
        return 0
    print(report.render_text())
    return 0


def cmd_bench_report(args: argparse.Namespace) -> int:
    """Normalize bench artifacts, print the trajectory, gate regressions."""
    import importlib.util

    bench_dir = Path(args.bench_dir).expanduser()
    module_path = bench_dir / "trajectory.py"
    if not module_path.is_file():
        print(f"error: {module_path} not found "
              "(point --bench-dir at the benchmarks directory)",
              file=sys.stderr)
        return 2
    spec = importlib.util.spec_from_file_location(
        "powerplay_trajectory", module_path
    )
    assert spec is not None and spec.loader is not None
    trajectory = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(trajectory)
    baseline = (Path(args.baseline).expanduser() if args.baseline
                else bench_dir / trajectory.BASELINE_NAME)
    return trajectory.report(
        bench_dir=bench_dir,
        baseline_path=baseline,
        threshold=args.threshold,
        write=args.write,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PowerPlay — early power exploration (DAC 1996 reproduction)",
    )
    parser.add_argument(
        "--log-level",
        choices=sorted(obs.config.LEVELS_BY_NAME),
        default=None,
        help="enable structured observability logging at this level "
        "(key=value lines on stderr; give before the subcommand)",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit structured logs as JSON objects instead of key=value",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    estimate = sub.add_parser("estimate", help="evaluate a built-in design")
    estimate.add_argument("design", choices=sorted(set(DESIGN_BUILDERS)))
    estimate.add_argument("--vdd", type=float, default=None,
                          help="override the (custom) supply voltage")
    estimate.add_argument("--depth", type=int, default=None,
                          help="limit hierarchy depth in the table")
    estimate.add_argument("--csv", action="store_true",
                          help="flat CSV instead of the table")
    estimate.add_argument("--trace", action="store_true",
                          help="print the span timing tree of the "
                          "evaluation (enables tracing)")
    estimate.set_defaults(func=cmd_estimate)

    profiler = sub.add_parser(
        "profile", help="span-based hot-path profile of a design evaluation"
    )
    profiler.add_argument("design", choices=sorted(set(DESIGN_BUILDERS)))
    profiler.add_argument("--repeat", type=int, default=5,
                          help="evaluations to aggregate (default 5)")
    profiler.add_argument("--top", type=int, default=10,
                          help="hot paths to list (default 10)")
    profiler.add_argument("--flamegraph", action="store_true",
                          help="append the text flamegraph")
    profiler.add_argument("--json", action="store_true",
                          help="emit the profile as JSON instead of text")
    # tracing must be on for spans to be recorded at all
    profiler.set_defaults(func=cmd_profile, trace=True)

    comparison = sub.add_parser("compare", help="compare designs side by side")
    comparison.add_argument("designs", nargs="*", default=["fig1", "fig3"])
    comparison.set_defaults(func=cmd_compare)

    sweeper = sub.add_parser(
        "sweep",
        help="sweep parameters: quick single-parameter form "
        "(PARAMETER VALUES...) or the multi-axis exploration engine "
        "(--axis ...)",
    )
    sweeper.add_argument("design", choices=sorted(set(DESIGN_BUILDERS)))
    sweeper.add_argument("parameter", nargs="?", default=None)
    sweeper.add_argument("values", nargs="*", type=float)
    sweeper.add_argument(
        "--axis", action="append", default=[], metavar="SPEC",
        help="swept axis: name=start:stop:step, name=v1,v2,..., "
        "name=log:start:stop:count; name@dotted.target=... writes a "
        "row-local parameter (repeatable)",
    )
    sweeper.add_argument(
        "--couple", action="append", default=[], metavar="TARGET=EXPR",
        help="drive another parameter from the axis values (repeatable)",
    )
    sweeper.add_argument(
        "--derive", action="append", default=[], metavar="NAME=EXPR",
        help="derived objective over axis values and built-in "
        "objectives (repeatable)",
    )
    sweeper.add_argument(
        "--objectives", default="power",
        help="comma-separated built-in objectives: power, area, delay "
        "(default power)",
    )
    sweeper.add_argument("--workers", type=int, default=1,
                         help="worker count for thread/process modes")
    sweeper.add_argument("--mode", choices=["serial", "thread", "process"],
                         default="serial", help="engine mode (default serial)")
    sweeper.add_argument("--chunk-size", type=int, default=64,
                         help="points per chunk / checkpoint granule")
    sweeper.add_argument("--max-points", "--point-cap", dest="max_points",
                         type=int, default=None,
                         help="refuse spaces larger than this many points "
                         "(default 100000, absolute ceiling 1000000; "
                         "surrogate sweeps may go far beyond — they "
                         "enumerate lazily)")
    sweeper.add_argument("--prune", action="store_true",
                         help="keep only Pareto-optimal rows in the output")
    sweeper.add_argument("--surrogate", action="store_true",
                         help="fit-predict-verify engine: exact-evaluate "
                         "a sampled training set, predict the rest, "
                         "re-verify the predicted Pareto front exactly")
    sweeper.add_argument("--train-frac", type=float, default=0.01,
                         help="fraction of the space to exact-evaluate "
                         "for training (default 0.01)")
    sweeper.add_argument("--train-seed", type=int, default=1996,
                         help="seed for the deterministic training "
                         "sample (default 1996)")
    sweeper.add_argument("--verify-top", type=int, default=64,
                         help="exact-verification budget: predicted "
                         "front first, then the most uncertain rows "
                         "(default 64)")
    sweeper.add_argument("--max-error", type=float, default=0.0,
                         help="abort if the fitted holdout max relative "
                         "error exceeds this (0 = report only)")
    sweeper.add_argument("--basis", default="auto",
                         choices=["auto", "linear", "quadratic", "cubic",
                                  "log"],
                         help="surrogate basis (default auto: best "
                         "holdout p95)")
    sweeper.add_argument("--state", default=None,
                         help="persist the sweep as a resumable job under "
                         "STATE/jobs")
    sweeper.add_argument("--resume", default=None, metavar="JOB_ID",
                         help="resume a checkpointed job (needs --state)")
    sweeper.add_argument("--max-chunks", type=int, default=0,
                         help="stop after N chunks (testing/CI; the job "
                         "stays resumable)")
    sweeper.add_argument("--csv-out", default=None,
                         help="write the full result rows as CSV here")
    sweeper.add_argument("--json-out", default=None,
                         help="write the full result rows as JSON here")
    sweeper.set_defaults(func=cmd_sweep)

    jobs = sub.add_parser("jobs", help="list or cancel persisted sweep jobs")
    jobs.add_argument("--state", required=True,
                      help="server/CLI state directory (jobs live under "
                      "STATE/jobs)")
    jobs.add_argument("--cancel", default=None, metavar="JOB_ID",
                      help="request cancellation of a job")
    jobs.set_defaults(func=cmd_jobs)

    optimizer = sub.add_parser(
        "optimize",
        help="minimum-power supply voltage meeting a timing constraint",
    )
    optimizer.add_argument("design", choices=sorted(set(DESIGN_BUILDERS)))
    optimizer.add_argument("--frequency", type=float, default=None,
                           help="required operating frequency in Hz "
                           "(default: the design's pixel rate / 4)")
    optimizer.add_argument("--delay-ref", type=float, default=500e-9,
                           help="critical-path delay at v-ref, seconds "
                           "(default 500 ns)")
    optimizer.add_argument("--v-ref", type=float, default=1.5,
                           help="reference voltage of the delay model")
    optimizer.add_argument("--v-low", type=float, default=0.8)
    optimizer.add_argument("--v-high", type=float, default=5.0)
    optimizer.set_defaults(func=cmd_optimize)

    battery = sub.add_parser("battery", help="battery life at the design's draw")
    battery.add_argument("--design", default="infopad",
                         choices=sorted(set(DESIGN_BUILDERS)))
    battery.set_defaults(func=cmd_battery)

    characterize = sub.add_parser(
        "characterize", help="run the Landman characterization flow"
    )
    characterize.add_argument("cell", choices=["adder", "memory", "multiplier"])
    characterize.add_argument("--cycles", type=int, default=200)
    characterize.set_defaults(func=cmd_characterize)

    sorting = sub.add_parser("sorting", help="EQ 12 sorting-energy study")
    sorting.add_argument("-n", "--count", type=int, default=256)
    sorting.add_argument("--seed", type=int, default=13)
    sorting.set_defaults(func=cmd_sorting)

    loadgen = sub.add_parser(
        "loadgen",
        help="deterministic multi-user load test with serial-replay oracle",
    )
    loadgen.add_argument("--seed", type=int, default=1996,
                         help="workload seed (same seed -> same script)")
    loadgen.add_argument("--users", type=int, default=4,
                         help="simulated users (default 4)")
    loadgen.add_argument("--ops", type=int, default=200,
                         help="total operations across users (default 200)")
    loadgen.add_argument("--threads", type=int, default=4,
                         help="driver threads (default 4)")
    loadgen.add_argument("--http", action="store_true",
                         help="drive a live HTTP server instead of the "
                         "in-process application")
    loadgen.add_argument("--script-out", default=None,
                         help="also write the generated workload JSON here")
    loadgen.set_defaults(func=cmd_loadgen)

    registry = sub.add_parser(
        "registry",
        help="inspect and operate the federated model registry mirror",
    )
    registry.add_argument("--state", default="~/.powerplay",
                          help="server state directory (same as `serve`)")
    registry.add_argument("--publisher", default="cli",
                          help="publisher name stamped on new artifacts")
    raction = registry.add_subparsers(dest="action", required=True)

    rlist = raction.add_parser("list", help="list mirrored artifacts")
    rlist.set_defaults(func=cmd_registry_list)

    rpublish = raction.add_parser(
        "publish", help="publish a shared entry or a built-in design"
    )
    group = rpublish.add_mutually_exclusive_group(required=True)
    group.add_argument("--entry", help="shared library entry name")
    group.add_argument("--design", choices=sorted(set(DESIGN_BUILDERS)),
                       help="built-in design to publish whole")
    rpublish.set_defaults(func=cmd_registry_publish)

    rsync = raction.add_parser(
        "sync", help="mirror everything a peer server publishes"
    )
    rsync.add_argument("peer", help="peer base URL, e.g. http://host:8080")
    rsync.set_defaults(func=cmd_registry_sync)

    rverify = raction.add_parser(
        "verify", help="re-verify every mirrored artifact's digest"
    )
    rverify.set_defaults(func=cmd_registry_verify)

    rpin = raction.add_parser("pin", help="protect one version from gc")
    rpin.add_argument("kind", choices=("entry", "design"))
    rpin.add_argument("name")
    rpin.add_argument("version", type=int)
    rpin.set_defaults(func=cmd_registry_pin)

    runpin = raction.add_parser("unpin", help="remove a pin")
    runpin.add_argument("kind", choices=("entry", "design"))
    runpin.add_argument("name")
    runpin.set_defaults(func=cmd_registry_unpin)

    rgc = raction.add_parser(
        "gc", help="evict oldest unpinned, non-latest versions over the bound"
    )
    rgc.add_argument("--max-artifacts", type=int, default=None,
                     help="override the store's size bound for this pass")
    rgc.set_defaults(func=cmd_registry_gc)

    serve = sub.add_parser("serve", help="run the PowerPlay web server")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument("--state", default="~/.powerplay")
    serve.add_argument("--name", default="powerplay")
    serve.add_argument("--peer", action="append", default=[],
                       metavar="NAME=URL",
                       help="fleet peer to scrape on /fleet "
                       "(repeatable; bare URLs get a derived name)")
    serve.add_argument("--telemetry-tick", type=float, default=5.0,
                       metavar="SECONDS",
                       help="background SLO evaluation interval so alerts "
                       "clear during zero traffic (0 disables; default 5)")
    serve.add_argument("--access-log", default=None, metavar="PATH",
                       help="write structured logs to a size-bounded "
                       "rotating file instead of stderr")
    serve.add_argument("--access-log-bytes", type=int, default=1 << 20,
                       help="rotate the access log beyond this size "
                       "(default 1 MiB)")
    serve.add_argument("--access-log-keep", type=int, default=3,
                       help="rotated access-log files to keep (default 3)")
    serve.add_argument("--history-dir", default=None, metavar="PATH",
                       help="record telemetry history into this directory "
                       "(crash-safe segments; enables /history)")
    serve.add_argument("--history-interval", type=float, default=5.0,
                       metavar="SECONDS",
                       help="history sampling interval (default 5)")
    serve.add_argument("--workers", type=int, default=1,
                       help="pre-fork worker processes sharing the port "
                       "with user-keyed sharding (default 1: in-process "
                       "threading only)")
    serve.add_argument("--backend", default="file",
                       choices=("file", "sqlite"),
                       help="durable state backend (default file: one "
                       "JSON document per user/job/artifact; sqlite: one "
                       "WAL-mode database)")
    serve.set_defaults(func=cmd_serve)

    # hidden plumbing: one pre-fork worker, spawned by `serve --workers`
    worker = sub.add_parser("serve-worker")
    worker.add_argument("--state", required=True)
    worker.add_argument("--host", default="127.0.0.1")
    worker.add_argument("--port", type=int, required=True)
    worker.add_argument("--index", type=int, required=True)
    worker.add_argument("--workers", type=int, required=True)
    worker.add_argument("--backend", default="file")
    worker.add_argument("--name", default="powerplay")
    worker.add_argument("--mode", default="reuseport",
                        choices=("reuseport", "fdpass"))
    worker.add_argument("--control-fd", type=int, default=None)
    worker.set_defaults(func=cmd_serve_worker)

    fleet = sub.add_parser(
        "fleet",
        help="scrape a set of PowerPlay servers and print fleet SLO state",
    )
    fleet.add_argument("peers", nargs="+", metavar="NAME=URL",
                       help="servers to scrape (bare URLs get derived names)")
    fleet.add_argument("--timeout", type=float, default=5.0,
                       help="per-peer scrape timeout, seconds (default 5)")
    fleet.add_argument("--json", action="store_true",
                       help="print the deterministic aggregate JSON")
    fleet.set_defaults(func=cmd_fleet)

    flight = sub.add_parser(
        "flight", help="inspect flight-recorder rings and snapshots"
    )
    flight.add_argument("--state", default="~/.powerplay",
                        help="server state directory (snapshots live under "
                        "STATE/flight)")
    flight.add_argument("--url", default=None,
                        help="read the live ring from a running server "
                        "instead of on-disk snapshots")
    flight.add_argument("--limit", type=int, default=20,
                        help="records to show (default 20)")
    faction = flight.add_subparsers(dest="action", required=True)
    faction.add_parser("show", help="human-readable record tables")
    faction.add_parser("dump", help="raw snapshot JSON")
    flight.set_defaults(func=cmd_flight)

    history = sub.add_parser(
        "history", help="inspect an on-disk telemetry history store"
    )
    history.add_argument("--dir", default="~/.powerplay-history",
                         help="history store directory "
                         "(default ~/.powerplay-history)")
    history.add_argument("--json", action="store_true",
                         help="print deterministic JSON instead of tables")
    haction = history.add_subparsers(dest="action", required=True)
    haction.add_parser("info", help="store stats, families, quarantine")
    hquery = haction.add_parser(
        "query", help="range / rate / quantile over recorded series"
    )
    hquery.add_argument("name", help="metric family, e.g. "
                        "powerplay_http_requests_total")
    hquery.add_argument("--label", action="append", default=[],
                        metavar="NAME=VALUE",
                        help="series label filter (repeatable)")
    hquery.add_argument("--op", choices=("range", "rate", "quantile"),
                        default="range")
    hquery.add_argument("--since", type=float, default=None,
                        help="unix start time (default: everything)")
    hquery.add_argument("--until", type=float, default=None,
                        help="unix end time (default: newest stored "
                        "sample, so replays are byte-identical)")
    hquery.add_argument("--q", type=float, default=0.95,
                        help="quantile for --op quantile (default 0.95)")
    haction.add_parser(
        "compact", help="run one rollup + retention pass now"
    )
    history.set_defaults(func=cmd_history)

    capacity = sub.add_parser(
        "capacity",
        help="fit recorded traffic trends and project worker counts",
    )
    capacity.add_argument("--dir", default="~/.powerplay-history",
                          help="history store directory "
                          "(default ~/.powerplay-history)")
    capacity.add_argument("--since", type=float, default=None,
                          help="unix start time (default: everything)")
    capacity.add_argument("--until", type=float, default=None,
                          help="unix end time (default: newest sample)")
    capacity.add_argument("--horizon-hours", type=float, default=168.0,
                          help="projection horizon (default 168 = 7 days)")
    capacity.add_argument("--threads-per-worker", type=int, default=8,
                          help="threads each worker serves (default 8)")
    capacity.add_argument("--utilization", type=float, default=0.6,
                          help="target worker utilization (default 0.6)")
    capacity.add_argument("--quantile", type=float, default=0.95,
                          help="latency quantile for the table "
                          "(default 0.95)")
    capacity.add_argument("--json", action="store_true",
                          help="print the deterministic report JSON")
    capacity.set_defaults(func=cmd_capacity)

    bench_report = sub.add_parser(
        "bench-report",
        help="normalize bench_*.json artifacts into the benchmark "
        "trajectory and gate regressions against the committed baseline",
    )
    bench_report.add_argument("--bench-dir", default="benchmarks",
                              help="directory holding bench_*.json and "
                              "trajectory.py (default benchmarks)")
    bench_report.add_argument("--baseline", default=None,
                              help="committed baseline to compare against "
                              "(default BENCH_DIR/BENCH_TRAJECTORY.json)")
    bench_report.add_argument("--threshold", type=float, default=0.20,
                              help="relative time regression that fails the "
                              "gate (default 0.20 = 20%%)")
    bench_report.add_argument("--write", action="store_true",
                              help="rewrite the baseline from the current "
                              "artifacts instead of gating")
    bench_report.set_defaults(func=cmd_bench_report)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    previous = None
    if args.log_level or args.log_json or getattr(args, "trace", False):
        # --trace without --log-level keeps the log stream quiet (OFF)
        # while still enabling span collection
        level = obs.parse_level(args.log_level or "off")
        previous = obs.enable(level=level, json_logs=args.log_json)
    try:
        return args.func(args)
    except BrokenPipeError:  # `repro ... | head` is not an error
        return 0
    except PowerPlayError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if previous is not None:
            obs.restore(previous)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
