"""The luminance decompression chip (paper Figures 1-3) as designs.

Figure 1: ping-pong index banks -> look-up table -> output register,
LUT read once per pixel.  Figure 3: the LUT is reorganized to yield four
words per access; a 4:1 mux and the output register are then the only
blocks switching at the full pixel rate.

Two construction routes:

* :func:`build_luminance_design` — from the architecture parameters
  alone (what a designer types into PowerPlay in "less than three
  minutes");
* :func:`build_luminance_from_chip` — from a simulated
  :class:`~repro.sim.vq.LuminanceChip`, using the access rates the
  workload actually produced (the "estimated number of accesses of each
  resource" measured rather than assumed).

The paper's operating point: 256 x 128 screen, 60 Hz display, 30 Hz
source, so f = 1.966 MHz ("2 MHz"), bank reads at f/16, writes at f/32,
VDD = 1.5 V.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.design import Design
from ..core.parameters import ParameterScope
from ..errors import DesignError
from ..models.computation import multiplexer
from ..models.storage import register, sram
from ..sim.traces import (
    DISPLAY_FPS,
    PIXEL_DEPTH,
    SCREEN_HEIGHT,
    SCREEN_WIDTH,
    SOURCE_FPS,
)
from ..sim.vq import BLOCK_SIZE, CODEBOOK_ENTRIES, LuminanceChip

#: The paper's nominal operating point.
NOMINAL_VDD = 1.5
NOMINAL_PIXEL_RATE = float(SCREEN_WIDTH * SCREEN_HEIGHT * DISPLAY_FPS)  # 1.966 MHz


def build_luminance_design(
    words_per_access: int = 1,
    width: int = SCREEN_WIDTH,
    height: int = SCREEN_HEIGHT,
    display_fps: int = DISPLAY_FPS,
    source_fps: int = SOURCE_FPS,
    block_size: int = BLOCK_SIZE,
    codebook_entries: int = CODEBOOK_ENTRIES,
    pixel_depth: int = PIXEL_DEPTH,
    vdd: float = NOMINAL_VDD,
    name: Optional[str] = None,
) -> Design:
    """Build the decompression chip as a PowerPlay design.

    ``words_per_access = 1`` reproduces Figure 1, ``4`` Figure 3, and
    any divisor of ``block_size`` generalizes the trade-off.
    """
    if words_per_access < 1 or block_size % words_per_access:
        raise DesignError(
            f"words_per_access {words_per_access} must divide "
            f"block size {block_size}"
        )
    if width % block_size:
        raise DesignError(f"width {width} not a multiple of {block_size}")
    if display_fps % source_fps:
        raise DesignError("display fps must be a multiple of source fps")

    design = Design(
        name or f"luminance_w{words_per_access}",
        doc=(
            "VQ luminance decompression chip "
            f"({words_per_access} word(s) per LUT access)"
        ),
    )
    pixel_rate = float(width * height * display_fps)
    repeats = display_fps // source_fps
    design.scope.set("VDD", vdd)
    design.scope.set("f_pixel", pixel_rate)

    bank_words = (width * height) // block_size
    index_bits = max(1, (codebook_entries - 1).bit_length())
    lut_words = codebook_entries * (block_size // words_per_access)
    lut_bits = pixel_depth * words_per_access

    design.add(
        "read_bank",
        sram(bank_words, index_bits, name="read_bank"),
        params={
            "words": bank_words,
            "bits": index_bits,
            "f": f"f_pixel / {block_size}",
        },
        doc="ping-pong index buffer, display side (reads at f/16)",
    )
    design.add(
        "write_bank",
        sram(bank_words, index_bits, name="write_bank"),
        params={
            "words": bank_words,
            "bits": index_bits,
            "f": f"f_pixel / {block_size * repeats}",
        },
        doc="ping-pong index buffer, incoming side (writes at f/32)",
    )
    design.add(
        "lut",
        sram(lut_words, lut_bits, name="lut"),
        params={
            "words": lut_words,
            "bits": lut_bits,
            "f": f"f_pixel / {words_per_access}",
        },
        doc=f"codebook LUT, {lut_words} x {lut_bits} bits",
    )
    if words_per_access > 1:
        design.add(
            "output_mux",
            multiplexer(bitwidth=pixel_depth, inputs=_pow2_at_least(words_per_access),
                        name="output_mux"),
            params={
                "bitwidth": pixel_depth,
                "inputs": _pow2_at_least(words_per_access),
                "f": "f_pixel",
            },
            doc="word-select multiplexer at full pixel rate",
        )
    design.add(
        "output_register",
        register(pixel_depth, name="output_register"),
        params={"bits": pixel_depth, "f": "f_pixel"},
        doc="pixel output register at full pixel rate",
    )
    return design


def _pow2_at_least(value: int) -> int:
    result = 1
    while result < value:
        result *= 2
    return max(2, result)


def build_figure1_design() -> Design:
    """The Figure 1 architecture at the paper's operating point."""
    return build_luminance_design(words_per_access=1, name="luminance_fig1")


def build_figure3_design() -> Design:
    """The Figure 3 alternative (four words per access)."""
    return build_luminance_design(words_per_access=4, name="luminance_fig3")


def build_luminance_from_chip(
    chip: LuminanceChip,
    vdd: float = NOMINAL_VDD,
    name: Optional[str] = None,
    use_measured_rates: bool = True,
) -> Design:
    """Build the design from a (possibly simulated) chip instance.

    With ``use_measured_rates`` and a chip that has displayed frames,
    the access frequencies come from the chip's counters; otherwise the
    closed-form expected rates are used.
    """
    rates: Dict[str, float]
    if use_measured_rates and chip.counts.frames_displayed > 0:
        rates = chip.access_rates()
    else:
        rates = chip.expected_rates()
    design = Design(
        name or f"luminance_chip_w{chip.words_per_access}",
        doc="decompression chip, rates from workload simulation",
    )
    design.scope.set("VDD", vdd)
    design.scope.set("f_pixel", chip.pixel_rate)
    index_bits = max(1, (chip.codebook.size - 1).bit_length())
    design.add(
        "read_bank",
        sram(chip.bank_words, index_bits, name="read_bank"),
        params={"words": chip.bank_words, "bits": index_bits,
                "f": rates["read_bank"]},
        doc="ping-pong buffer (measured read rate)",
    )
    design.add(
        "write_bank",
        sram(chip.bank_words, index_bits, name="write_bank"),
        params={"words": chip.bank_words, "bits": index_bits,
                "f": rates["write_bank"]},
        doc="ping-pong buffer (measured write rate)",
    )
    design.add(
        "lut",
        sram(chip.lut_words, chip.lut_bits, name="lut"),
        params={"words": chip.lut_words, "bits": chip.lut_bits,
                "f": rates["lut"]},
        doc="codebook LUT (measured access rate)",
    )
    if chip.words_per_access > 1:
        design.add(
            "output_mux",
            multiplexer(
                bitwidth=chip.codebook.depth,
                inputs=_pow2_at_least(chip.words_per_access),
                name="output_mux",
            ),
            params={
                "bitwidth": chip.codebook.depth,
                "inputs": _pow2_at_least(chip.words_per_access),
                "f": rates["output_mux"],
            },
            doc="word-select mux (measured rate)",
        )
    design.add(
        "output_register",
        register(chip.codebook.depth, name="output_register"),
        params={"bits": chip.codebook.depth, "f": rates["output_register"]},
        doc="pixel register (measured rate)",
    )
    return design
