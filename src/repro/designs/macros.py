"""Reusable macro cells built from the worked designs.

"Libraries of primitives (e.g. multipliers, memories) as well as macro
cells (e.g. video decompression) may be shared and reused. ... It should
be possible to lump a modeled design, such as the video-decompression
sub-system described earlier, into a single macro that can be used at
higher levels of the system design, or re-used in other designs."

:func:`build_macro_library` packages exactly that: the Figure 3 video
decompression chip and the whole custom chipset as single library
entries with exported parameters, shareable over the same JSON wire as
any primitive (see the ``macro`` codec in
:mod:`repro.library.designio`).
"""

from __future__ import annotations

from ..core.model import ModelSet
from ..library.catalog import Library, LibraryEntry
from .infopad import build_custom_hardware
from .luminance import build_luminance_design


def video_decompression_macro(words_per_access: int = 4):
    """The luminance decompression chip as a one-row macro.

    Exported knobs: ``VDD`` and ``f_pixel`` — the two parameters a
    system integrator varies without reopening the chip design.
    """
    design = build_luminance_design(
        words_per_access=words_per_access,
        name=f"video_decompression_w{words_per_access}",
    )
    return design.as_macro(
        exported=["VDD", "f_pixel"],
        name="video_decompression",
        doc=(
            "VQ luminance decompression chip (Figure 3 architecture) "
            "lumped into a macro; exports VDD and f_pixel"
        ),
    )


def custom_chipset_macro():
    """The full InfoPad custom-hardware sub-design as a macro.

    The chipset supply is exported as ``VDD_core`` (a distinct name, so
    the leaf scopes' ``VDD = VDD_core`` formulas resolve upward rather
    than self-referencing).
    """
    design = build_custom_hardware(vdd_expression="VDD_core")
    design.scope.set("VDD_core", 1.5)
    return design.as_macro(
        exported=["VDD_core"],
        name="custom_chipset",
        doc="InfoPad custom low-power chipset (video + control) macro",
    )


def build_macro_library() -> Library:
    """Shareable macro cells — re-used 'unless specified as proprietary'."""
    library = Library(
        "macro_cells",
        "hierarchical macros lumped from modeled designs",
    )
    library.add(
        LibraryEntry(
            "video_decompression",
            ModelSet(power=video_decompression_macro()),
            category="macro",
            doc="video decompression sub-system as a single element",
            links=("/doc/cell/video_decompression",),
        )
    )
    library.add(
        LibraryEntry(
            "custom_chipset",
            ModelSet(power=custom_chipset_macro()),
            category="macro",
            doc="custom chipset (two video chips + controller) macro",
            links=("/doc/cell/custom_chipset",),
        )
    )
    return library
