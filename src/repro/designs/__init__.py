"""Prebuilt designs: the paper's two worked examples."""

from .infopad import build_custom_hardware, build_infopad
from .macros import (
    build_macro_library,
    custom_chipset_macro,
    video_decompression_macro,
)
from .luminance import (
    NOMINAL_PIXEL_RATE,
    NOMINAL_VDD,
    build_figure1_design,
    build_figure3_design,
    build_luminance_design,
    build_luminance_from_chip,
)

__all__ = [
    "NOMINAL_PIXEL_RATE",
    "NOMINAL_VDD",
    "build_custom_hardware",
    "build_figure1_design",
    "build_figure3_design",
    "build_luminance_design",
    "build_luminance_from_chip",
    "build_infopad",
    "build_macro_library",
    "custom_chipset_macro",
    "video_decompression_macro",
]
