"""The InfoPad portable multimedia terminal (paper Figure 5).

"Each subsystem of the InfoPad terminal is a row entry in the
spreadsheet of Figure 5. ... the luminance chip discussed earlier is a
subcircuit of the custom hardware subsection."

The system design demonstrates every hierarchy feature the paper claims:

* two global supplies (``VDD1`` for commodity parts, ``VDD2`` for the
  custom low-power chipset) set on the top page and inherited by every
  subsystem;
* the luminance design mounted as a *sub-design* inside the custom
  hardware sub-design (two hierarchy levels below the top);
* the voltage-converter row computing its dissipation from the power of
  every other row (EQ 18/19 inter-model interaction), so the design
  total is battery input power;
* mixed model sources per row — datasheet (LCD, radio), parameterized
  equation (processor), full hierarchical model (custom hardware) —
  "using whatever models, tools, or level of abstraction is available".

Absolute subsystem values are reconstructed from the InfoPad literature
(see EXPERIMENTS.md); the headline shape is preserved: the custom
chipset draws a fraction of a percent of the budget.
"""

from __future__ import annotations

from typing import Optional

from ..core.design import Design
from ..errors import DesignError
from ..library.datasheet import (
    io_devices,
    lcd_display,
    microprocessor_subsystem,
    radio_transceiver,
    support_electronics,
)
from ..models.controller import rom_controller
from ..models.converter import DCDCConverterModel, EfficiencyCurve
from .luminance import build_luminance_design

#: Reconstructed converter efficiency for the InfoPad's regulators.
CONVERTER_EFFICIENCY = 0.85


def build_custom_hardware(vdd_expression: str = "VDD2") -> Design:
    """The custom low-power chipset sub-design.

    Contains the luminance chip (the paper's worked example, Figure 3
    architecture — the one the fabricated chip used), a chroma
    decompression chip (same datapath at quarter pixel rate, two of
    them for I/Q), and the protocol controller.
    """
    custom = Design(
        "custom_hardware",
        doc="InfoPad custom low-power chipset (video decompression + control)",
    )
    # the luminance chip inherits the custom-hardware supply
    luminance = build_luminance_design(words_per_access=4, name="luminance_chip")
    luminance.scope.set("VDD", vdd_expression)
    custom.add_subdesign(
        "luminance_chip",
        luminance,
        doc="VQ luminance decompression (Figure 3 architecture)",
    )
    chroma = build_luminance_design(
        words_per_access=4,
        width=128,
        height=64,
        name="chroma_chip",
    )
    chroma.scope.set("VDD", vdd_expression)
    custom.add_subdesign(
        "chroma_chips",
        chroma,
        doc="chroma decompression (quarter-rate luminance datapath, I+Q)",
    )
    custom.add(
        "protocol_controller",
        rom_controller(6, 16, name="protocol_controller"),
        params={
            "N_I": 6,
            "N_O": 16,
            "P_O": 0.5,
            "VDD": vdd_expression,
            "f": 1e6,
        },
        doc="packet protocol controller (EQ 10 ROM model)",
    )
    return custom


def build_infopad(
    vdd1: float = 5.0,
    vdd2: float = 1.5,
    processor_clock: float = 25e6,
    name: str = "infopad",
) -> Design:
    """The full Figure 5 system spreadsheet."""
    if vdd1 <= 0 or vdd2 <= 0:
        raise DesignError("supplies must be positive")
    system = Design(
        name,
        doc="InfoPad portable multimedia terminal (Figure 5)",
    )
    system.scope.set("VDD1", vdd1)
    system.scope.set("VDD2", vdd2)

    system.add_subdesign(
        "custom_hardware",
        build_custom_hardware("VDD2"),
        doc="custom low-power chipset (hyperlinks to its own spreadsheet)",
    )
    system.add(
        "radio_subsystem",
        radio_transceiver(),
        params={"tx_duty": 0.05, "rx_duty": 0.35},
        doc="packet radio (datasheet states)",
        source="datasheet",
    )
    system.add(
        "display_lcds",
        lcd_display(),
        params={"panel_duty": 1.0, "backlight_duty": 1.0},
        doc="LCD panel + backlight (measured)",
        source="measured",
    )
    system.add(
        "microprocessor_subsystem",
        microprocessor_subsystem(),
        params={"f": processor_clock, "VDD": "VDD1", "alpha": 1.0},
        doc="embedded CPU subsystem (datasheet W/MHz)",
        source="datasheet",
    )
    system.add(
        "support_electronics",
        support_electronics(),
        params={"codec_duty": 1.0},
        doc="frame SRAM + codec + glue",
        source="datasheet",
    )
    system.add(
        "other_io_devices",
        io_devices(),
        params={"alpha": 1.0},
        doc="pen, speech, speaker",
        source="datasheet",
    )
    system.add(
        "voltage_converters",
        DCDCConverterModel("voltage_converters", efficiency=CONVERTER_EFFICIENCY),
        params={"eta": CONVERTER_EFFICIENCY},
        power_feeds=[
            "custom_hardware",
            "radio_subsystem",
            "display_lcds",
            "microprocessor_subsystem",
            "support_electronics",
            "other_io_devices",
        ],
        doc="board regulators; dissipation from the load of every row (EQ 19)",
        source="estimated",
    )
    return system
