"""The model library: entries, lookup, JSON serialization, merging.

"The strength of a modeling environment lies in the richness of its
library, the availability of pre-defined models, and the ease of
introducing new elements and models."  And crucially for the WWW story:
"If a library is characterized and put on the web in Massachusetts, it
can be used for estimates in California."

A library therefore has to *travel*: every stock model class has a JSON
codec here, so whole libraries round-trip through text — that is the
payload the remote-access protocol (:mod:`repro.web.remote`) ships.
Models are data (expressions and coefficients), never code, so loading
a remote library executes nothing.

Entries carry documentation and hyperlink metadata ("PowerPlay then
automatically generates appropriate documentation links whenever the
primitive/macro is used") and a ``proprietary`` flag ("macros ... are
also automatically made available for re-use unless specified as
proprietary").
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..core.expressions import compile_expression
from ..core.model import (
    AreaModel,
    CapacitiveTerm,
    ExpressionAreaModel,
    ExpressionPowerModel,
    ExpressionTimingModel,
    FixedPowerModel,
    ModelSet,
    PowerModel,
    StaticTerm,
    TemplatePowerModel,
    TimingModel,
    VoltageScaledTimingModel,
)
from ..core.parameters import Parameter
from ..errors import LibraryError

#: Library taxonomy, mirroring the paper's model sections.
CATEGORIES = (
    "computation",
    "storage",
    "controller",
    "interconnect",
    "processor",
    "analog",
    "converter",
    "system",
    "macro",
    "other",
)


# ---------------------------------------------------------------------------
# Parameter / term codecs
# ---------------------------------------------------------------------------


def _encode_parameter(parameter: Parameter) -> dict:
    payload = {"name": parameter.name, "default": _encode_value(parameter.default)}
    if parameter.unit:
        payload["unit"] = parameter.unit
    if parameter.doc:
        payload["doc"] = parameter.doc
    if parameter.minimum is not None:
        payload["minimum"] = parameter.minimum
    if parameter.maximum is not None:
        payload["maximum"] = parameter.maximum
    if parameter.choices is not None:
        payload["choices"] = list(parameter.choices)
    if parameter.integer:
        payload["integer"] = True
    return payload


def _encode_value(value) -> object:
    from ..core.expressions import Expression

    if isinstance(value, Expression):
        return {"expr": value.source}
    return value


def _decode_value(payload):
    if isinstance(payload, dict) and "expr" in payload:
        return compile_expression(payload["expr"])
    return payload


def _decode_parameter(payload: Mapping) -> Parameter:
    return Parameter(
        name=payload["name"],
        default=_decode_value(payload.get("default", 0.0)),
        unit=payload.get("unit", ""),
        doc=payload.get("doc", ""),
        minimum=payload.get("minimum"),
        maximum=payload.get("maximum"),
        choices=payload.get("choices"),
        integer=payload.get("integer", False),
    )


def _encode_capacitive_term(term: CapacitiveTerm) -> dict:
    payload = {"name": term.name, "capacitance": term.capacitance.source}
    if term.v_swing is not None:
        payload["v_swing"] = term.v_swing.source
    if term.activity.source != "1.0":
        payload["activity"] = term.activity.source
    if term.frequency is not None:
        payload["frequency"] = term.frequency.source
    if term.doc:
        payload["doc"] = term.doc
    return payload


def _decode_capacitive_term(payload: Mapping) -> CapacitiveTerm:
    return CapacitiveTerm(
        name=payload["name"],
        capacitance=compile_expression(payload["capacitance"]),
        v_swing=(
            compile_expression(payload["v_swing"])
            if "v_swing" in payload
            else None
        ),
        activity=compile_expression(payload.get("activity", "1.0")),
        frequency=(
            compile_expression(payload["frequency"])
            if "frequency" in payload
            else None
        ),
        doc=payload.get("doc", ""),
    )


def _encode_static_term(term: StaticTerm) -> dict:
    payload = {"name": term.name, "current": term.current.source}
    if term.supply is not None:
        payload["supply"] = term.supply.source
    if term.doc:
        payload["doc"] = term.doc
    return payload


def _decode_static_term(payload: Mapping) -> StaticTerm:
    return StaticTerm(
        name=payload["name"],
        current=compile_expression(payload["current"]),
        supply=(
            compile_expression(payload["supply"]) if "supply" in payload else None
        ),
        doc=payload.get("doc", ""),
    )


# ---------------------------------------------------------------------------
# Model codec registry
# ---------------------------------------------------------------------------

_ENCODERS: Dict[type, Tuple[str, Callable]] = {}
_DECODERS: Dict[str, Callable] = {}


def register_codec(kind: str, model_type: type, encode: Callable, decode: Callable) -> None:
    """Register a (de)serializer pair for a model class.

    Third-party model classes can join the shareable set this way.
    """
    _ENCODERS[model_type] = (kind, encode)
    _DECODERS[kind] = decode


def encode_model(model) -> dict:
    entry = _ENCODERS.get(type(model))
    if entry is None:
        raise LibraryError(
            f"model type {type(model).__name__} has no JSON codec — "
            "register one with register_codec() to share it"
        )
    kind, encoder = entry
    payload = encoder(model)
    payload["kind"] = kind
    return payload


def decode_model(payload: Mapping):
    kind = payload.get("kind")
    decoder = _DECODERS.get(kind)
    if decoder is None:
        raise LibraryError(f"unknown model kind {kind!r} in payload")
    return decoder(payload)


# -- stock codecs ------------------------------------------------------------


def _encode_template(model: TemplatePowerModel) -> dict:
    return {
        "name": model.name,
        "doc": model.doc,
        "capacitive": [_encode_capacitive_term(t) for t in model.capacitive],
        "static": [_encode_static_term(t) for t in model.static],
        "parameters": [_encode_parameter(p) for p in model.parameters],
    }


def _decode_template(payload: Mapping) -> TemplatePowerModel:
    return TemplatePowerModel(
        name=payload["name"],
        capacitive=[_decode_capacitive_term(t) for t in payload.get("capacitive", [])],
        static=[_decode_static_term(t) for t in payload.get("static", [])],
        parameters=[_decode_parameter(p) for p in payload.get("parameters", [])],
        doc=payload.get("doc", ""),
    )


def _encode_expression_power(model: ExpressionPowerModel) -> dict:
    return {
        "name": model.name,
        "doc": model.doc,
        "equation": model.equation.source,
        "parameters": [_encode_parameter(p) for p in model.parameters],
    }


def _decode_expression_power(payload: Mapping) -> ExpressionPowerModel:
    return ExpressionPowerModel(
        name=payload["name"],
        equation=payload["equation"],
        parameters=[_decode_parameter(p) for p in payload.get("parameters", [])],
        doc=payload.get("doc", ""),
    )


def _encode_fixed(model: FixedPowerModel) -> dict:
    return {
        "name": model.name,
        "doc": model.doc,
        "average_power": model.average_power,
    }


def _decode_fixed(payload: Mapping) -> FixedPowerModel:
    return FixedPowerModel(
        name=payload["name"],
        average_power=payload["average_power"],
        doc=payload.get("doc", ""),
    )


def _encode_expression_area(model: ExpressionAreaModel) -> dict:
    return {
        "name": model.name,
        "doc": model.doc,
        "equation": model.equation.source,
        "parameters": [_encode_parameter(p) for p in model.parameters],
    }


def _decode_expression_area(payload: Mapping) -> ExpressionAreaModel:
    return ExpressionAreaModel(
        name=payload["name"],
        equation=payload["equation"],
        parameters=[_decode_parameter(p) for p in payload.get("parameters", [])],
        doc=payload.get("doc", ""),
    )


def _encode_expression_timing(model: ExpressionTimingModel) -> dict:
    return {
        "name": model.name,
        "doc": model.doc,
        "equation": model.equation.source,
        "parameters": [_encode_parameter(p) for p in model.parameters],
    }


def _decode_expression_timing(payload: Mapping) -> ExpressionTimingModel:
    return ExpressionTimingModel(
        name=payload["name"],
        equation=payload["equation"],
        parameters=[_decode_parameter(p) for p in payload.get("parameters", [])],
        doc=payload.get("doc", ""),
    )


def _encode_voltage_timing(model: VoltageScaledTimingModel) -> dict:
    return {
        "name": model.name,
        "doc": model.doc,
        "delay_ref": model.delay_ref,
        "v_ref": model.v_ref,
        "v_threshold": model.v_threshold,
    }


def _decode_voltage_timing(payload: Mapping) -> VoltageScaledTimingModel:
    return VoltageScaledTimingModel(
        name=payload["name"],
        delay_ref=payload["delay_ref"],
        v_ref=payload.get("v_ref", 1.5),
        v_threshold=payload.get("v_threshold", 0.7),
        doc=payload.get("doc", ""),
    )


register_codec("template", TemplatePowerModel, _encode_template, _decode_template)
register_codec(
    "expression_power", ExpressionPowerModel,
    _encode_expression_power, _decode_expression_power,
)
register_codec("fixed_power", FixedPowerModel, _encode_fixed, _decode_fixed)
register_codec(
    "expression_area", ExpressionAreaModel,
    _encode_expression_area, _decode_expression_area,
)
register_codec(
    "expression_timing", ExpressionTimingModel,
    _encode_expression_timing, _decode_expression_timing,
)
register_codec(
    "voltage_timing", VoltageScaledTimingModel,
    _encode_voltage_timing, _decode_voltage_timing,
)


def _register_extended_codecs() -> None:
    """Codecs for the richer model classes in :mod:`repro.models`."""
    from ..models.converter import DCDCConverterModel, EfficiencyCurve
    from ..models.interconnect import InterconnectModel, Technology
    from ..models.svensson import Stage, SvenssonModel

    def encode_dcdc(model: DCDCConverterModel) -> dict:
        payload = {"name": model.name, "doc": model.doc}
        payload["eta"] = model.parameters[0].default
        if model.curve is not None:
            payload["curve"] = list(zip(model.curve._loads, model.curve._etas))
        return payload

    def decode_dcdc(payload: Mapping) -> DCDCConverterModel:
        curve = None
        if "curve" in payload:
            curve = EfficiencyCurve([tuple(p) for p in payload["curve"]])
        return DCDCConverterModel(
            name=payload["name"],
            efficiency=payload.get("eta", 0.9),
            curve=curve,
            doc=payload.get("doc", ""),
        )

    def encode_interconnect(model: InterconnectModel) -> dict:
        tech = model.technology
        return {
            "name": model.name,
            "doc": model.doc,
            "rent_exponent": model.rent_exponent,
            "fanout": model.fanout,
            "technology": {
                "name": tech.name,
                "feature_size": tech.feature_size,
                "c_per_length": tech.c_per_length,
                "gate_pitch": tech.gate_pitch,
                "wiring_layers": tech.wiring_layers,
            },
        }

    def decode_interconnect(payload: Mapping) -> InterconnectModel:
        tech = payload.get("technology", {})
        return InterconnectModel(
            name=payload["name"],
            rent_exponent=payload.get("rent_exponent", 0.6),
            fanout=payload.get("fanout", 3.0),
            technology=Technology(
                name=tech.get("name", "ucb1.2um"),
                feature_size=tech.get("feature_size", 1.2e-6),
                c_per_length=tech.get("c_per_length", 0.2e-9),
                gate_pitch=tech.get("gate_pitch", 30e-6),
                wiring_layers=tech.get("wiring_layers", 2),
            ),
            doc=payload.get("doc", ""),
        )

    def encode_svensson(model: SvenssonModel) -> dict:
        return {
            "name": model.name,
            "doc": model.doc,
            "default_bitwidth": int(model.parameters[0].default),
            "stages": [
                {
                    "name": stage.name,
                    "c_in": stage.c_in,
                    "c_out": stage.c_out,
                    "alpha_in": stage.alpha_in,
                    "alpha_out": stage.alpha_out,
                }
                for stage in model.stages
            ],
        }

    def decode_svensson(payload: Mapping) -> SvenssonModel:
        stages = [
            Stage(
                name=stage["name"],
                c_in=stage["c_in"],
                c_out=stage["c_out"],
                alpha_in=stage.get("alpha_in", 0.5),
                alpha_out=stage.get("alpha_out", 0.5),
            )
            for stage in payload.get("stages", [])
        ]
        return SvenssonModel(
            name=payload["name"],
            stages=stages,
            default_bitwidth=payload.get("default_bitwidth", 16),
            doc=payload.get("doc", ""),
        )

    register_codec("dcdc", DCDCConverterModel, encode_dcdc, decode_dcdc)
    register_codec(
        "interconnect", InterconnectModel, encode_interconnect, decode_interconnect
    )
    register_codec("svensson", SvenssonModel, encode_svensson, decode_svensson)


_register_extended_codecs()


# ---------------------------------------------------------------------------
# Entries and the library
# ---------------------------------------------------------------------------


@dataclass
class LibraryEntry:
    """One shareable library element.

    ``links`` are documentation hyperlinks (URL-shaped strings) surfaced
    next to every instantiation; ``origin`` records where the entry came
    from (``local`` or the remote server's URL) so federated libraries
    stay auditable.
    """

    name: str
    models: ModelSet
    category: str = "other"
    doc: str = ""
    links: Tuple[str, ...] = ()
    proprietary: bool = False
    origin: str = "local"

    def __post_init__(self) -> None:
        if self.category not in CATEGORIES:
            raise LibraryError(
                f"entry {self.name!r}: unknown category {self.category!r}"
            )

    def to_payload(self) -> dict:
        payload = {
            "name": self.name,
            "category": self.category,
            "doc": self.doc,
            "links": list(self.links),
            "proprietary": self.proprietary,
            "power": encode_model(self.models.power),
        }
        if self.models.area is not None:
            payload["area"] = encode_model(self.models.area)
        if self.models.timing is not None:
            payload["timing"] = encode_model(self.models.timing)
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping, origin: str = "local") -> "LibraryEntry":
        try:
            power = decode_model(payload["power"])
        except KeyError:
            raise LibraryError(
                f"entry payload {payload.get('name')!r} lacks a power model"
            ) from None
        area = decode_model(payload["area"]) if "area" in payload else None
        timing = decode_model(payload["timing"]) if "timing" in payload else None
        return cls(
            name=payload["name"],
            models=ModelSet(power=power, area=area, timing=timing),
            category=payload.get("category", "other"),
            doc=payload.get("doc", ""),
            links=tuple(payload.get("links", ())),
            proprietary=payload.get("proprietary", False),
            origin=origin,
        )


class Library:
    """A named, ordered collection of entries.

    Thread-safe: the PowerPlay server is threaded and a user can be
    defining a model into their library while other requests iterate it
    (menu, library page, lookups).  Mutations take an internal lock and
    readers iterate over an atomic snapshot, so concurrent add/iterate
    can never raise ``RuntimeError: dictionary changed size`` or see a
    half-applied merge.
    """

    def __init__(self, name: str, description: str = ""):
        self.name = name
        self.description = description
        self._entries: Dict[str, LibraryEntry] = {}
        self._lock = threading.RLock()

    def add(self, entry: LibraryEntry, replace: bool = False) -> LibraryEntry:
        with self._lock:
            if not replace and entry.name in self._entries:
                raise LibraryError(
                    f"library {self.name!r} already has an entry {entry.name!r}"
                )
            self._entries[entry.name] = entry
        return entry

    def get(self, name: str) -> LibraryEntry:
        entry = self._entries.get(name)
        if entry is None:
            raise LibraryError(
                f"library {self.name!r} has no entry {name!r}"
            )
        return entry

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[LibraryEntry]:
        with self._lock:
            snapshot = list(self._entries.values())
        return iter(snapshot)

    def __len__(self) -> int:
        return len(self._entries)

    def names(self) -> List[str]:
        with self._lock:
            return list(self._entries)

    def remove(self, name: str) -> None:
        with self._lock:
            if name not in self._entries:
                raise LibraryError(
                    f"library {self.name!r} has no entry {name!r}"
                )
            del self._entries[name]

    def by_category(self, category: str) -> List[LibraryEntry]:
        if category not in CATEGORIES:
            raise LibraryError(f"unknown category {category!r}")
        return [e for e in self if e.category == category]

    def categories(self) -> Dict[str, List[str]]:
        """category -> entry names, only non-empty categories."""
        result: Dict[str, List[str]] = {}
        for entry in self:
            result.setdefault(entry.category, []).append(entry.name)
        return result

    def search(self, term: str) -> List[LibraryEntry]:
        """Case-insensitive substring search over names and docs."""
        needle = term.lower()
        return [
            entry
            for entry in self
            if needle in entry.name.lower() or needle in entry.doc.lower()
        ]

    # -- sharing -----------------------------------------------------------

    def to_json(self, include_proprietary: bool = False) -> str:
        """Serialize for publication.

        Proprietary entries are withheld unless explicitly included —
        "macros ... are automatically made available for re-use unless
        specified as proprietary".
        """
        payload = {
            "format": "powerplay-library/1",
            "name": self.name,
            "description": self.description,
            "entries": [
                entry.to_payload()
                for entry in self
                if include_proprietary or not entry.proprietary
            ],
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str, origin: str = "local") -> "Library":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise LibraryError(f"malformed library JSON: {exc}") from exc
        if payload.get("format") != "powerplay-library/1":
            raise LibraryError(
                f"unsupported library format {payload.get('format')!r}"
            )
        library = cls(payload.get("name", "library"), payload.get("description", ""))
        for entry_payload in payload.get("entries", []):
            library.add(LibraryEntry.from_payload(entry_payload, origin=origin))
        return library

    def merge(self, other: "Library", prefer: str = "mine") -> List[str]:
        """Merge another library in; returns the adopted entry names.

        ``prefer='mine'`` keeps local entries on name clash (remote
        libraries augment, never clobber); ``prefer='theirs'`` replaces.
        """
        if prefer not in ("mine", "theirs"):
            raise LibraryError(f"prefer must be 'mine' or 'theirs', not {prefer!r}")
        adopted: List[str] = []
        with self._lock:
            for entry in other:
                if entry.name in self._entries and prefer == "mine":
                    continue
                self._entries[entry.name] = entry
                adopted.append(entry.name)
        return adopted

    def __repr__(self) -> str:
        return f"Library({self.name!r}, {len(self._entries)} entries)"
