"""The Landman characterization flow: simulate, sweep, fit.

"Landman uses empirical analysis to provide a 'black box model' ... of
the capacitance switched in a digital hardware module."  The flow:

1. sweep a cell's complexity parameter (bit-width, word count...) over
   a range of sizes;
2. measure the average switched capacitance per access with the gate
   simulator (:mod:`repro.sim.gatesim`) under representative stimulus;
3. least-squares fit the paper's model form — linear (EQ 3), bilinear
   (EQ 20), or the structured SRAM polynomial (EQ 7);
4. package the fit as a :class:`~repro.core.model.TemplatePowerModel`
   with goodness-of-fit metadata.

Also here: the multi-voltage extraction of EQ 8's
``C_fullswing`` / ``C_partialswing`` / ``V_swing`` for reduced-swing
memories ("it is important to characterize them at more than one voltage
level"), and the *octave check* — the paper's stated accuracy target,
"At this level of abstraction, accuracy should be within an octave of
the actual value."
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.expressions import compile_expression
from ..core.model import CapacitiveTerm, TemplatePowerModel
from ..core.parameters import Parameter
from ..errors import CharacterizationError
from ..sim.activity import operand_vectors
from ..sim.gatesim import Netlist, simulate
from ..sim.netlists import (
    array_multiplier_netlist,
    comparator_netlist,
    register_bank_netlist,
    ripple_adder_netlist,
)


@dataclass
class FitResult:
    """Outcome of a coefficient fit.

    ``coefficients`` maps basis-term name -> value (farads).
    ``r_squared`` and ``max_relative_error`` quantify the fit on the
    training sweep; ``within_octave`` is the paper's own accuracy bar
    evaluated pointwise.
    """

    model_form: str
    coefficients: Dict[str, float]
    r_squared: float
    max_relative_error: float
    points: List[Tuple[Tuple[float, ...], float, float]] = field(
        default_factory=list
    )  # (params, measured, predicted)

    @property
    def within_octave(self) -> bool:
        return all(
            within_octave(predicted, measured)
            for _params, measured, predicted in self.points
            if measured > 0
        )


def within_octave(estimate: float, actual: float) -> bool:
    """True when estimate is within a factor of two of actual."""
    if actual <= 0 or estimate <= 0:
        return estimate == actual
    ratio = estimate / actual
    return 0.5 <= ratio <= 2.0


def _goodness(measured: np.ndarray, predicted: np.ndarray) -> Tuple[float, float]:
    residual = measured - predicted
    total = measured - measured.mean()
    ss_res = float(np.sum(residual**2))
    ss_tot = float(np.sum(total**2))
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    with np.errstate(divide="ignore", invalid="ignore"):
        relative = np.abs(residual) / np.where(measured != 0, np.abs(measured), 1.0)
    return r_squared, float(np.max(relative)) if len(relative) else 0.0


def _lstsq(basis: np.ndarray, measured: np.ndarray) -> np.ndarray:
    if basis.shape[0] < basis.shape[1]:
        raise CharacterizationError(
            f"need at least {basis.shape[1]} sweep points, got {basis.shape[0]}"
        )
    solution, _residuals, rank, _sv = np.linalg.lstsq(basis, measured, rcond=None)
    if rank < basis.shape[1]:
        raise CharacterizationError(
            "degenerate sweep: basis matrix is rank-deficient "
            "(vary the parameter over more distinct values)"
        )
    return solution


# ---------------------------------------------------------------------------
# Measurement
# ---------------------------------------------------------------------------


def measure_capacitance(
    netlist: Netlist,
    bits: int,
    cycles: int = 300,
    correlation: float = 0.0,
    seed: int = 1,
    operands: Sequence[str] = ("a", "b"),
    glitch_factor: float = 0.15,
) -> float:
    """Average switched capacitance per access of a two-operand cell."""
    vectors = operand_vectors(
        cycles, bits, correlation=correlation, seed=seed, prefixes=operands
    )
    result = simulate(netlist, vectors, glitch_factor=glitch_factor)
    return result.capacitance_per_cycle


def sweep_adder(
    bit_widths: Sequence[int] = (4, 8, 12, 16, 24, 32),
    cycles: int = 300,
    correlation: float = 0.0,
    seed: int = 1,
) -> List[Tuple[int, float]]:
    """(bitwidth, measured C per access) across an adder size sweep."""
    points = []
    for bits in bit_widths:
        netlist = ripple_adder_netlist(bits)
        points.append(
            (bits, measure_capacitance(netlist, bits, cycles, correlation, seed))
        )
    return points


def sweep_multiplier(
    sizes: Sequence[Tuple[int, int]] = ((2, 2), (3, 3), (4, 4), (5, 5), (6, 6), (4, 6)),
    cycles: int = 200,
    correlation: float = 0.0,
    seed: int = 1,
) -> List[Tuple[Tuple[int, int], float]]:
    """((bitsA, bitsB), measured C per access) across multiplier sizes."""
    points = []
    for bits_a, bits_b in sizes:
        netlist = array_multiplier_netlist(bits_a, bits_b)
        vectors_a = operand_vectors(
            cycles, bits_a, correlation, seed, prefixes=("a",)
        )
        vectors_b = operand_vectors(
            cycles, bits_b, correlation, seed + 1, prefixes=("b",)
        )
        merged = [dict(va, **vb) for va, vb in zip(vectors_a, vectors_b)]
        result = simulate(netlist, merged, glitch_factor=0.15)
        points.append(((bits_a, bits_b), result.capacitance_per_cycle))
    return points


def sweep_register(
    bit_widths: Sequence[int] = (2, 4, 8, 16, 32),
    cycles: int = 300,
    seed: int = 1,
) -> List[Tuple[int, float]]:
    """(bits, measured C per cycle) for plain registers."""
    points = []
    for bits in bit_widths:
        netlist = register_bank_netlist(bits)
        vectors = operand_vectors(cycles, bits, seed=seed, prefixes=("d",))
        result = simulate(netlist, vectors)
        points.append((bits, result.capacitance_per_cycle))
    return points


# ---------------------------------------------------------------------------
# Fitting the paper's model forms
# ---------------------------------------------------------------------------


def fit_linear(
    points: Sequence[Tuple[int, float]],
    through_origin: bool = False,
) -> FitResult:
    """EQ 3 fit: C_T = C_int + C_0 * bitwidth (C_int optional)."""
    if len(points) < 2:
        raise CharacterizationError("linear fit needs at least two points")
    sizes = np.array([float(size) for size, _c in points])
    measured = np.array([c for _size, c in points])
    if through_origin:
        basis = sizes[:, None]
        names = ["c_per_bit"]
    else:
        basis = np.column_stack([np.ones_like(sizes), sizes])
        names = ["c_intercept", "c_per_bit"]
    solution = _lstsq(basis, measured)
    predicted = basis @ solution
    r_squared, max_rel = _goodness(measured, predicted)
    return FitResult(
        model_form="linear (EQ 3)",
        coefficients=dict(zip(names, solution.tolist())),
        r_squared=r_squared,
        max_relative_error=max_rel,
        points=[
            ((size,), float(m), float(p))
            for size, m, p in zip(sizes, measured, predicted)
        ],
    )


def fit_bilinear(
    points: Sequence[Tuple[Tuple[int, int], float]],
) -> FitResult:
    """EQ 20 fit: C_T = C_mult * bitsA * bitsB (through the origin)."""
    if len(points) < 1:
        raise CharacterizationError("bilinear fit needs at least one point")
    product = np.array([float(a * b) for (a, b), _c in points])
    measured = np.array([c for _size, c in points])
    basis = product[:, None]
    solution = _lstsq(basis, measured)
    predicted = basis @ solution
    r_squared, max_rel = _goodness(measured, predicted)
    return FitResult(
        model_form="bilinear (EQ 20)",
        coefficients={"c_per_bit_pair": float(solution[0])},
        r_squared=r_squared,
        max_relative_error=max_rel,
        points=[
            (tuple(map(float, size)), float(m), float(p))
            for (size, _c), m, p in zip(points, measured, predicted)
        ],
    )


def fit_sram(
    points: Sequence[Tuple[Tuple[int, int], float]],
) -> FitResult:
    """EQ 7 fit: C = C0 + C1*words + C1'*bits + C2*words*bits."""
    if len(points) < 4:
        raise CharacterizationError("EQ 7 fit needs at least four points")
    words = np.array([float(w) for (w, _b), _c in points])
    bits = np.array([float(b) for (_w, b), _c in points])
    measured = np.array([c for _size, c in points])
    basis = np.column_stack([np.ones_like(words), words, bits, words * bits])
    solution = _lstsq(basis, measured)
    predicted = basis @ solution
    r_squared, max_rel = _goodness(measured, predicted)
    return FitResult(
        model_form="sram (EQ 7)",
        coefficients={
            "c0": float(solution[0]),
            "c_words": float(solution[1]),
            "c_bits": float(solution[2]),
            "c_cell": float(solution[3]),
        },
        r_squared=r_squared,
        max_relative_error=max_rel,
        points=[
            (tuple(map(float, size)), float(m), float(p))
            for (size, _c), m, p in zip(points, measured, predicted)
        ],
    )


def model_from_linear_fit(
    name: str, fit: FitResult, default_bitwidth: int = 16
) -> TemplatePowerModel:
    """Package an EQ 3 fit as a library-ready template model."""
    c_per_bit = fit.coefficients.get("c_per_bit")
    if c_per_bit is None or c_per_bit <= 0:
        raise CharacterizationError(
            f"fit has no positive per-bit coefficient: {fit.coefficients}"
        )
    intercept = max(0.0, fit.coefficients.get("c_intercept", 0.0))
    terms = [
        CapacitiveTerm(
            "bit_slices",
            compile_expression(f"bitwidth * {c_per_bit!r}"),
            doc=f"fitted, R^2={fit.r_squared:.4f}",
        )
    ]
    if intercept > 0:
        terms.append(
            CapacitiveTerm(
                "overhead",
                compile_expression(repr(intercept)),
                doc="fitted intercept (clocking/control)",
            )
        )
    return TemplatePowerModel(
        name=name,
        capacitive=terms,
        parameters=(
            Parameter("bitwidth", default_bitwidth, "bits", integer=True, minimum=1),
        ),
        doc=f"characterized {fit.model_form}; max rel err {fit.max_relative_error:.2%}",
    )


def model_from_bilinear_fit(
    name: str, fit: FitResult, default_bits: int = 16
) -> TemplatePowerModel:
    """Package an EQ 20 fit as a multiplier-shaped template model."""
    coefficient = fit.coefficients.get("c_per_bit_pair")
    if coefficient is None or coefficient <= 0:
        raise CharacterizationError(
            f"fit has no positive bit-pair coefficient: {fit.coefficients}"
        )
    return TemplatePowerModel(
        name=name,
        capacitive=[
            CapacitiveTerm(
                "array",
                compile_expression(f"bitwidthA * bitwidthB * {coefficient!r}"),
                doc=f"fitted, R^2={fit.r_squared:.4f}",
            )
        ],
        parameters=(
            Parameter("bitwidthA", default_bits, "bits", integer=True, minimum=1),
            Parameter("bitwidthB", default_bits, "bits", integer=True, minimum=1),
        ),
        doc=f"characterized {fit.model_form}; max rel err {fit.max_relative_error:.2%}",
    )


# ---------------------------------------------------------------------------
# Multi-voltage extraction (EQ 8)
# ---------------------------------------------------------------------------


def extract_reduced_swing(
    measurements: Sequence[Tuple[float, float]],
    v_swing: Optional[float] = None,
) -> Dict[str, float]:
    """Extract C_fullswing and C_partialswing from E(VDD) measurements.

    ``measurements`` are ``(VDD, energy_per_access)`` pairs.  EQ 8 says
    ``E(V) = C_full * V^2 + C_partial * V_swing * V``; with a known
    ``v_swing`` (e.g. set by a reference circuit) both capacitances fall
    out of a two-basis least-squares fit.  With ``v_swing=None`` the
    lumped product ``C_partial * V_swing`` is returned instead
    (``c_partial_times_swing``) — all EQ 1 needs.
    """
    if len(measurements) < 2:
        raise CharacterizationError(
            "EQ 8 extraction needs measurements at >= 2 voltage levels"
        )
    voltages = np.array([v for v, _e in measurements])
    if len(set(voltages.tolist())) < 2:
        raise CharacterizationError("voltage levels must be distinct")
    energies = np.array([e for _v, e in measurements])
    basis = np.column_stack([voltages**2, voltages])
    solution = _lstsq(basis, energies)
    c_full = float(solution[0])
    lumped = float(solution[1])
    result = {"c_fullswing": c_full, "c_partial_times_swing": lumped}
    if v_swing is not None:
        if v_swing <= 0:
            raise CharacterizationError("v_swing must be positive")
        result["c_partialswing"] = lumped / v_swing
        result["v_swing"] = v_swing
    predicted = basis @ solution
    r_squared, max_rel = _goodness(energies, predicted)
    result["r_squared"] = r_squared
    result["max_relative_error"] = max_rel
    return result


# ---------------------------------------------------------------------------
# End-to-end characterizations
# ---------------------------------------------------------------------------


def characterize_adder(
    bit_widths: Sequence[int] = (4, 8, 12, 16, 24, 32),
    correlation: float = 0.0,
    cycles: int = 300,
    name: str = "adder_fit",
) -> Tuple[TemplatePowerModel, FitResult]:
    """Full flow: sweep -> fit EQ 3 -> package as a model."""
    points = sweep_adder(bit_widths, cycles=cycles, correlation=correlation)
    fit = fit_linear(points)
    return model_from_linear_fit(name, fit), fit


def characterize_multiplier(
    sizes: Sequence[Tuple[int, int]] = ((2, 2), (3, 3), (4, 4), (5, 5), (6, 6)),
    correlation: float = 0.0,
    cycles: int = 200,
    name: str = "multiplier_fit",
) -> Tuple[TemplatePowerModel, FitResult]:
    """Full flow: sweep -> fit EQ 20 -> package as a model."""
    points = sweep_multiplier(sizes, cycles=cycles, correlation=correlation)
    fit = fit_bilinear(points)
    return model_from_bilinear_fit(name, fit), fit


def octave_report(
    model: TemplatePowerModel,
    measurements: Sequence[Tuple[Mapping[str, float], float]],
    vdd: float = 1.5,
) -> List[Tuple[Mapping[str, float], float, float, bool]]:
    """Model-vs-measurement octave check across operating points.

    ``measurements`` are ``(parameter env, measured capacitance)``
    pairs.  Returns ``(env, measured, predicted, within_octave)`` rows —
    the data behind the paper's "within an octave" accuracy claim.
    """
    rows = []
    for env, measured in measurements:
        full_env = dict(env)
        full_env.setdefault("VDD", vdd)
        full_env.setdefault("f", 1.0)
        predicted = model.effective_capacitance(full_env)
        rows.append((env, measured, predicted, within_octave(predicted, measured)))
    return rows


def sweep_memory(
    sizes: Sequence[Tuple[int, int]] = (
        (8, 2), (8, 4), (16, 2), (16, 4), (32, 2), (32, 4),
    ),
    cycles: int = 150,
    seed: int = 1,
) -> List[Tuple[Tuple[int, int], float]]:
    """((words, bits), measured C per access) over memory-array sizes.

    Stimulus: random addresses, write-enable half the time, random
    write data — a representative access mix.
    """
    from ..sim.gatesim import random_vectors
    from ..sim.netlists import memory_array_netlist

    points = []
    for words, bits in sizes:
        netlist = memory_array_netlist(words, bits)
        vectors = random_vectors(netlist.inputs, cycles, seed=seed)
        result = simulate(netlist, vectors, glitch_factor=0.15)
        points.append(((words, bits), result.capacitance_per_cycle))
    return points


def characterize_memory(
    sizes: Sequence[Tuple[int, int]] = (
        (8, 2), (8, 4), (16, 2), (16, 4), (32, 2), (32, 4),
    ),
    cycles: int = 150,
    name: str = "memory_fit",
) -> Tuple[TemplatePowerModel, FitResult]:
    """Full EQ 7 flow on simulated memory arrays: sweep -> fit -> model.

    Produces an :func:`~repro.models.storage.sram`-shaped model with the
    fitted coefficients (negative fitted terms are floored at zero —
    small sweeps can land slightly below).
    """
    from ..models.storage import SRAMCoefficients, sram

    points = sweep_memory(sizes, cycles=cycles)
    fit = fit_sram(points)
    coefficients = SRAMCoefficients(
        c0=max(0.0, fit.coefficients["c0"]),
        c_words=max(1e-18, fit.coefficients["c_words"]),
        c_bits=max(1e-18, fit.coefficients["c_bits"]),
        c_cell=max(1e-18, fit.coefficients["c_cell"]),
    )
    words_default, bits_default = sizes[0]
    model = sram(words_default, bits_default, coefficients=coefficients, name=name)
    return model, fit
