"""The stock "UCB-like" low-power cell library.

"Models for each element in the University of California's low-power
cell library are provided."  :func:`build_default_library` assembles our
re-characterized equivalent: every model class from the paper's
catalogue, with documentation and hyperlinks, ready for the web UI, the
worked designs, and remote sharing.
"""

from __future__ import annotations

from typing import Optional

from ..core.model import (
    ExpressionAreaModel,
    FixedPowerModel,
    ModelSet,
    VoltageScaledTimingModel,
)
from ..core.parameters import Parameter
from ..models.computation import (
    adder_model_set,
    booth_multiplier,
    comparator,
    logarithmic_shifter,
    multiplexer,
    multiplier_model_set,
    output_buffer,
)
from ..models.controller import (
    pla_controller,
    random_logic_controller,
    rom_controller,
)
from ..models.converter import DCDCConverterModel, DEFAULT_BUCK_CURVE
from ..models.interconnect import InterconnectModel
from ..models.storage import (
    dram,
    reduced_swing_sram,
    register,
    register_file,
    rom_memory,
    sram_model_set,
)
from ..models.svensson import svensson_ripple_adder
from .catalog import Library, LibraryEntry

#: Documentation base used for the generated hyperlinks; the web layer
#: serves these paths.
DOC_BASE = "/doc/cell"


def _links(name: str) -> tuple:
    return (f"{DOC_BASE}/{name}", "/doc/models", "/tutorial")


def build_default_library(correlation: str = "uncorrelated") -> Library:
    """The shipped library, one entry per characterized cell.

    ``correlation`` selects the coefficient set for the computation
    cells ("PowerPlay also contains models for correlated inputs").
    """
    library = Library(
        "ucb_lowpower",
        "Re-characterized UC Berkeley low-power cell library "
        "(Landman-method coefficients; see library/characterize.py)",
    )

    # -- computation -----------------------------------------------------
    library.add(
        LibraryEntry(
            "ripple_adder",
            adder_model_set("ripple", correlation=correlation),
            category="computation",
            doc="Ripple-carry adder; EQ 3 linear capacitance model.",
            links=_links("ripple_adder"),
        )
    )
    library.add(
        LibraryEntry(
            "cla_adder",
            adder_model_set("cla", correlation=correlation),
            category="computation",
            doc="Carry-lookahead adder; faster, more capacitance per bit.",
            links=_links("cla_adder"),
        )
    )
    library.add(
        LibraryEntry(
            "multiplier",
            multiplier_model_set(correlation=correlation),
            category="computation",
            doc=(
                "Array multiplier; EQ 20 bilinear model "
                "(253 fF per bit pair, uncorrelated)."
            ),
            links=_links("multiplier"),
        )
    )
    library.add(
        LibraryEntry(
            "booth_multiplier",
            ModelSet(power=booth_multiplier(correlation=correlation)),
            category="computation",
            doc=(
                "Radix-4 Booth multiplier; EQ 20 shape with a smaller "
                "array coefficient plus a linear recoder term."
            ),
            links=_links("booth_multiplier"),
        )
    )
    library.add(
        LibraryEntry(
            "log_shifter",
            ModelSet(power=logarithmic_shifter(correlation=correlation)),
            category="computation",
            doc="Logarithmic (barrel) shifter; bitwidth x log2(range) stages.",
            links=_links("log_shifter"),
        )
    )
    library.add(
        LibraryEntry(
            "comparator",
            ModelSet(power=comparator(correlation=correlation)),
            category="computation",
            doc="Magnitude comparator; EQ 3 linear model.",
            links=_links("comparator"),
        )
    )
    library.add(
        LibraryEntry(
            "mux",
            ModelSet(power=multiplexer()),
            category="computation",
            doc="N:1 multiplexer tree of 2:1 stages.",
            links=_links("mux"),
        )
    )
    library.add(
        LibraryEntry(
            "buffer",
            ModelSet(power=output_buffer()),
            category="computation",
            doc="Output buffer/driver bank, parameterized by fanout.",
            links=_links("buffer"),
        )
    )
    library.add(
        LibraryEntry(
            "svensson_adder",
            ModelSet(power=svensson_ripple_adder()),
            category="computation",
            doc=(
                "Analytical (Svensson EQ 4-6) ripple adder — the "
                "white-box alternative to the Landman entry."
            ),
            links=_links("svensson_adder"),
        )
    )

    # -- storage --------------------------------------------------------
    library.add(
        LibraryEntry(
            "register",
            ModelSet(power=register()),
            category="storage",
            doc="Edge-triggered register; clock capacitance included.",
            links=_links("register"),
        )
    )
    library.add(
        LibraryEntry(
            "register_file",
            ModelSet(power=register_file()),
            category="storage",
            doc="Small multi-ported register file.",
            links=_links("register_file"),
        )
    )
    library.add(
        LibraryEntry(
            "sram",
            sram_model_set(),
            category="storage",
            doc="Full-swing SRAM; EQ 7 structured capacitance model.",
            links=_links("sram"),
        )
    )
    library.add(
        LibraryEntry(
            "sram_lowswing",
            ModelSet(power=reduced_swing_sram()),
            category="storage",
            doc=(
                "Reduced bit-line-swing SRAM; EQ 8 with "
                "C_partialswing/V_swing from two-voltage characterization."
            ),
            links=_links("sram_lowswing"),
        )
    )
    library.add(
        LibraryEntry(
            "rom",
            ModelSet(power=rom_memory()),
            category="storage",
            doc=(
                "Mask-programmed ROM memory; precharged bit lines, "
                "EQ 10 structure — for fixed contents like codebooks."
            ),
            links=_links("rom"),
        )
    )
    library.add(
        LibraryEntry(
            "dram",
            ModelSet(power=dram()),
            category="storage",
            doc="Embedded DRAM; EQ 7 access plus refresh background term.",
            links=_links("dram"),
        )
    )

    # -- controllers -------------------------------------------------------
    library.add(
        LibraryEntry(
            "controller_random_logic",
            ModelSet(power=random_logic_controller()),
            category="controller",
            doc="Random-logic controller; EQ 9 two-plane model.",
            links=_links("controller_random_logic"),
        )
    )
    library.add(
        LibraryEntry(
            "controller_rom",
            ModelSet(power=rom_controller()),
            category="controller",
            doc="ROM controller; EQ 10 with precharge statistics P_O.",
            links=_links("controller_rom"),
        )
    )
    library.add(
        LibraryEntry(
            "controller_pla",
            ModelSet(power=pla_controller()),
            category="controller",
            doc="Precharged PLA controller (EQ 9/10 hybrid).",
            links=_links("controller_pla"),
        )
    )

    # -- interconnect / converters ------------------------------------------
    library.add(
        LibraryEntry(
            "interconnect",
            ModelSet(power=InterconnectModel()),
            category="interconnect",
            doc=(
                "Rent's-rule wiring estimate (Donath/Feuer); consumes the "
                "active area of the rows it is area-fed from."
            ),
            links=_links("interconnect"),
        )
    )
    library.add(
        LibraryEntry(
            "dcdc_const",
            ModelSet(power=DCDCConverterModel("dcdc_const", efficiency=0.9)),
            category="converter",
            doc="DC-DC converter, constant efficiency (EQ 18/19).",
            links=_links("dcdc_const"),
        )
    )
    library.add(
        LibraryEntry(
            "dcdc_buck",
            ModelSet(
                power=DCDCConverterModel("dcdc_buck", curve=DEFAULT_BUCK_CURVE)
            ),
            category="converter",
            doc="Buck converter with datasheet-style efficiency curve.",
            links=_links("dcdc_buck"),
        )
    )
    return library
