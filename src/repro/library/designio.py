"""Design (de)serialization.

PowerPlay persists "any previously generated designs" in the user's
server-side defaults, and shares macros between sites.  Both need
designs to round-trip through JSON.  A serialized design carries:

* the global scope (numbers, or formula source strings);
* each row: an inline model payload (via the library codecs), the
  row-local parameter assignments, feeds, quantity and doc;
* sub-designs, recursively.

Like library payloads, design payloads are pure data — loading one
never executes code.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional

from ..core.design import Design, Instance, SubDesign
from ..core.expressions import Expression
from ..core.parameters import ParameterScope
from ..errors import LibraryError
from .catalog import decode_model, encode_model

FORMAT = "powerplay-design/1"


def _encode_scope(scope: ParameterScope) -> Dict[str, object]:
    values: Dict[str, object] = {}
    for name in scope.local_names():
        raw = scope.raw(name)
        if isinstance(raw, Expression):
            values[name] = {"expr": raw.source}
        else:
            values[name] = raw
    return values


def _decode_scope_values(payload: Mapping, scope: ParameterScope) -> None:
    for name, value in payload.items():
        if isinstance(value, Mapping) and "expr" in value:
            scope.set(name, str(value["expr"]))
        else:
            scope.set(name, value)


def _encode_row(row) -> dict:
    if isinstance(row, SubDesign):
        return {
            "type": "subdesign",
            "name": row.name,
            "doc": row.doc,
            "design": design_to_payload(row.design),
        }
    payload = {
        "type": "instance",
        "name": row.name,
        "doc": row.doc,
        "quantity": row.quantity,
        "params": _encode_scope(row.scope),
        "power": encode_model(row.models.power),
    }
    if row.models.area is not None:
        payload["area"] = encode_model(row.models.area)
    if row.models.timing is not None:
        payload["timing"] = encode_model(row.models.timing)
    if row.power_feeds:
        payload["power_feeds"] = list(row.power_feeds)
    if row.area_feeds:
        payload["area_feeds"] = list(row.area_feeds)
    if row.source != "modeled":
        payload["source"] = row.source
    if row.measured_power is not None:
        payload["measured_power"] = row.measured_power
    return payload


def design_to_payload(design: Design) -> dict:
    """Serialize a design (and its sub-designs) to a JSON-able dict."""
    return {
        "format": FORMAT,
        "name": design.name,
        "doc": design.doc,
        "scope": _encode_scope(design.scope),
        "rows": [_encode_row(row) for row in design],
    }


def design_to_json(design: Design) -> str:
    return json.dumps(design_to_payload(design), indent=2, sort_keys=True)


def design_from_payload(payload: Mapping) -> Design:
    """Rebuild a design from its payload."""
    if payload.get("format") != FORMAT:
        raise LibraryError(
            f"unsupported design format {payload.get('format')!r}"
        )
    design = Design(payload.get("name", "design"), doc=payload.get("doc", ""))
    _decode_scope_values(payload.get("scope", {}), design.scope)
    for row_payload in payload.get("rows", []):
        row_type = row_payload.get("type")
        if row_type == "subdesign":
            child = design_from_payload(row_payload["design"])
            design.add_subdesign(
                row_payload["name"], child, doc=row_payload.get("doc", "")
            )
        elif row_type == "instance":
            from ..core.model import ModelSet

            power = decode_model(row_payload["power"])
            area = (
                decode_model(row_payload["area"])
                if "area" in row_payload
                else None
            )
            timing = (
                decode_model(row_payload["timing"])
                if "timing" in row_payload
                else None
            )
            instance = design.add(
                row_payload["name"],
                ModelSet(power=power, area=area, timing=timing),
                power_feeds=row_payload.get("power_feeds", ()),
                area_feeds=row_payload.get("area_feeds", ()),
                doc=row_payload.get("doc", ""),
                quantity=row_payload.get("quantity", 1),
                source=row_payload.get("source", "modeled"),
            )
            if "measured_power" in row_payload:
                instance.record_measurement(row_payload["measured_power"])
            _decode_scope_values(row_payload.get("params", {}), instance.scope)
        else:
            raise LibraryError(f"unknown row type {row_type!r}")
    return design


def design_from_json(text: str) -> Design:
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise LibraryError(f"malformed design JSON: {exc}") from exc
    return design_from_payload(payload)


# ---------------------------------------------------------------------------
# Macro codec
# ---------------------------------------------------------------------------
#
# "Libraries of primitives ... as well as macro cells (e.g. video
# decompression) may be shared and reused."  A macro is a whole design
# lumped into a model; its payload embeds the design payload, so macros
# travel through the same library JSON as primitives.


def _encode_macro(model) -> dict:
    return {
        "name": model.name,
        "doc": model.doc,
        "exported": list(model.exported),
        "design": design_to_payload(model.design),
    }


def _decode_macro(payload: Mapping):
    from ..core.design import MacroPowerModel

    design = design_from_payload(payload["design"])
    return MacroPowerModel(
        design,
        exported=payload.get("exported", ()),
        name=payload.get("name"),
        doc=payload.get("doc", ""),
    )


def _register_macro_codec() -> None:
    from ..core.design import MacroPowerModel
    from .catalog import register_codec

    register_codec("macro", MacroPowerModel, _encode_macro, _decode_macro)


_register_macro_codec()
