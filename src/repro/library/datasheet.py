"""Datasheet models for commodity system components (the InfoPad rows).

"Power analysis of complex systems is only possible when good models are
available for each of the components. ... The power information for
commodity components is, for instance, readily available from
data-sheets."  Figure 5's subsystem rows mix sources on purpose — LCD
power measured, custom hardware modeled, converters estimated — and this
module provides the datasheet-shaped entries:

* duty-cycled fixed power (EQ 11) for parts that are either on or off;
* an LCD model (panel + backlight, each with its own duty);
* a radio model split into transmit / receive / idle states;
* a µ-processor subsystem model scaling with clock and supply.

Absolute values are reconstructed from the InfoPad literature (Sheng et
al. 1992; Chandrakasan et al. 1994) since the original measurement files
are not recoverable from the paper's Figure 5 scan; EXPERIMENTS.md
records the reconstruction.  The *shape* these values encode is the one
the paper teaches: the custom low-power chipset is a fraction of a
percent of the budget — display, radio and processor dominate.
"""

from __future__ import annotations

from typing import Dict, Mapping

from ..core.expressions import compile_expression
from ..core.model import (
    ExpressionPowerModel,
    FixedPowerModel,
    ModelSet,
    PowerModel,
    _get,
)
from ..core.parameters import Parameter
from ..errors import ModelError
from .catalog import Library, LibraryEntry


def lcd_display(
    panel_watts: float = 0.25,
    backlight_watts: float = 0.75,
    name: str = "lcd_display",
) -> ExpressionPowerModel:
    """LCD panel + backlight, independently duty-cycled.

    The InfoPad's dominant consumer: the panel drive scales with refresh
    activity, the backlight is on or off.
    """
    if panel_watts < 0 or backlight_watts < 0:
        raise ModelError(f"{name}: negative datasheet power")
    return ExpressionPowerModel(
        name,
        f"{panel_watts!r} * panel_duty + {backlight_watts!r} * backlight_duty",
        parameters=(
            Parameter("panel_duty", 1.0, "", "panel-on fraction", 0.0, 1.0),
            Parameter("backlight_duty", 1.0, "", "backlight-on fraction", 0.0, 1.0),
        ),
        doc="LCD: measured panel + backlight (datasheet/measured source)",
    )


def radio_transceiver(
    tx_watts: float = 2.4,
    rx_watts: float = 0.9,
    idle_watts: float = 0.08,
    name: str = "radio",
) -> ExpressionPowerModel:
    """Packet radio with TX / RX / idle states.

    ``tx_duty + rx_duty`` must not exceed 1; the remainder idles.  The
    InfoPad is downlink-heavy (it is a terminal), so the default duty
    puts most airtime in receive.
    """
    for value in (tx_watts, rx_watts, idle_watts):
        if value < 0:
            raise ModelError(f"{name}: negative datasheet power")
    return ExpressionPowerModel(
        name,
        (
            f"{tx_watts!r} * tx_duty + {rx_watts!r} * rx_duty"
            f" + {idle_watts!r} * (1 - tx_duty - rx_duty)"
        ),
        parameters=(
            Parameter("tx_duty", 0.05, "", "transmit airtime fraction", 0.0, 1.0),
            Parameter("rx_duty", 0.35, "", "receive airtime fraction", 0.0, 1.0),
        ),
        doc="packet radio: TX/RX/idle state mix",
    )


def microprocessor_subsystem(
    watts_per_mhz: float = 0.034,
    v_ref: float = 5.0,
    name: str = "microprocessor",
) -> ExpressionPowerModel:
    """Embedded CPU + companions, scaling with clock and supply.

    ``P = (watts_per_mhz * f / 1 MHz) * (VDD / v_ref)^2 * alpha`` — the
    datasheet MHz rating rescaled for voltage, duty-cycled by EQ 11.
    At the defaults (25 MHz, 5 V, full duty) this is an ARM6-class
    850 mW subsystem.
    """
    if watts_per_mhz <= 0 or v_ref <= 0:
        raise ModelError(f"{name}: datasheet constants must be positive")
    return ExpressionPowerModel(
        name,
        (
            f"{watts_per_mhz!r} * (f / 1e6) * (VDD / {v_ref!r}) ^ 2 * alpha"
        ),
        parameters=(
            Parameter("f", 25e6, "Hz", "core clock", 1.0),
            Parameter("VDD", 5.0, "V", "core supply", 0.1),
            Parameter("alpha", 1.0, "", "duty factor (EQ 11)", 0.0, 1.0),
        ),
        doc="uP subsystem: datasheet W/MHz, quadratic voltage rescale, EQ 11 duty",
    )


def support_electronics(
    sram_watts: float = 0.45,
    codec_watts: float = 0.18,
    glue_watts: float = 0.12,
    name: str = "support_electronics",
) -> ExpressionPowerModel:
    """Frame SRAM, speech codec and glue logic — the 'everything else'."""
    total_check = (sram_watts, codec_watts, glue_watts)
    if any(value < 0 for value in total_check):
        raise ModelError(f"{name}: negative datasheet power")
    return ExpressionPowerModel(
        name,
        f"{sram_watts!r} + {codec_watts!r} * codec_duty + {glue_watts!r}",
        parameters=(
            Parameter("codec_duty", 1.0, "", "codec activity", 0.0, 1.0),
        ),
        doc="frame SRAM + speech codec + glue (datasheet sums)",
    )


def io_devices(
    pen_watts: float = 0.015,
    speech_watts: float = 0.04,
    speaker_watts: float = 0.025,
    name: str = "io_devices",
) -> FixedPowerModel:
    """Pen digitizer, speech input, speaker — small fixed draws."""
    total = pen_watts + speech_watts + speaker_watts
    return FixedPowerModel(
        name,
        total,
        doc="pen + speech + speaker (Figure 5's 'Other IO Devices')",
    )


def build_system_library() -> Library:
    """Commodity/system components as a shareable library."""
    library = Library(
        "system_components",
        "Datasheet models for system-level design (InfoPad-class parts)",
    )
    library.add(
        LibraryEntry(
            "lcd_display",
            ModelSet(power=lcd_display()),
            category="system",
            doc="Monochrome LCD + backlight (measured).",
            links=("/doc/cell/lcd_display",),
        )
    )
    library.add(
        LibraryEntry(
            "radio",
            ModelSet(power=radio_transceiver()),
            category="system",
            doc="Packet radio transceiver, TX/RX/idle mix.",
            links=("/doc/cell/radio",),
        )
    )
    library.add(
        LibraryEntry(
            "microprocessor",
            ModelSet(power=microprocessor_subsystem()),
            category="processor",
            doc="Embedded CPU subsystem, W/MHz datasheet model with EQ 11 duty.",
            links=("/doc/cell/microprocessor",),
        )
    )
    library.add(
        LibraryEntry(
            "support_electronics",
            ModelSet(power=support_electronics()),
            category="system",
            doc="Frame SRAM, speech codec, glue logic.",
            links=("/doc/cell/support_electronics",),
        )
    )
    library.add(
        LibraryEntry(
            "io_devices",
            ModelSet(power=io_devices()),
            category="system",
            doc="Pen, speech, speaker.",
            links=("/doc/cell/io_devices",),
        )
    )
    return library
