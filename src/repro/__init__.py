"""PowerPlay — early power exploration (Lidsky & Rabaey, DAC 1996).

A faithful, from-scratch reproduction of the PowerPlay framework:

* :mod:`repro.core` — expression language, parameter scopes, the design
  spreadsheet, the EQ 1 model template, design hierarchy, and the
  hierarchical estimator ("Play").
* :mod:`repro.models` — the paper's model catalogue (EQ 2-20):
  computation, storage, controllers, interconnect, processors, analog,
  DC-DC converters, short-circuit currents.
* :mod:`repro.library` — a pre-characterized low-power cell library,
  the Landman characterization flow, and datasheet component models.
* :mod:`repro.sim` — validation substrate: switch-level capacitance
  simulation, signal statistics, and the vector-quantization video
  decompression workload of the paper's case study.
* :mod:`repro.web` — the World Wide Web application: HTML spreadsheet,
  per-user sessions, remote model access, and the Design Agent.
* :mod:`repro.designs` — the paper's two worked designs (luminance
  decompression chip, InfoPad terminal) ready to explore.
"""

from . import errors
from .core import (
    CapacitiveTerm,
    Design,
    Expression,
    ExpressionPowerModel,
    FixedPowerModel,
    ModelSet,
    Parameter,
    ParameterScope,
    PowerModel,
    PowerReport,
    Sheet,
    StaticTerm,
    TemplatePowerModel,
    compare,
    evaluate_power,
    render_comparison,
    render_power,
    sweep,
)

__version__ = "1.0.0"

__all__ = [
    "CapacitiveTerm",
    "Design",
    "Expression",
    "ExpressionPowerModel",
    "FixedPowerModel",
    "ModelSet",
    "Parameter",
    "ParameterScope",
    "PowerModel",
    "PowerReport",
    "Sheet",
    "StaticTerm",
    "TemplatePowerModel",
    "compare",
    "errors",
    "evaluate_power",
    "render_comparison",
    "render_power",
    "sweep",
    "__version__",
]
