"""Controller power models (paper EQs 9 and 10).

"Controller power estimation is particularly difficult in the
rudimentary stages of design" — the implementation platform (random
logic, ROM, PLA) may not even be chosen yet.  The two parameters that
*can* be estimated early are N_I (inputs, including state and status
bits) and N_O (outputs, including state bits).

Random logic (EQ 9)::

    C_T = C_0 * alpha_0 * N_I * N_M  +  C_1 * alpha_1 * N_M * N_O

with N_M the number of minterms.  [The paper's rendering of the first
term reads "N_I N_O"; structurally the input plane couples inputs to
minterms and the output plane minterms to outputs — we implement the
two-plane reading and note the discrepancy in EXPERIMENTS.md.  With the
default alphas both readings differ only by a constant factor absorbed
in C_0.]

ROM (EQ 10)::

    C_T = C_0 + C_1*N_I*2^N_I + C_2*P_O*N_O*2^N_I + C_3*P_O*N_O + C_4*N_O

where P_O is the average fraction of low output bits — precharged-high
bit lines only burn energy when the previous read left them low.

Switching probabilities default to the paper's quick-estimate value,
``alpha_0 = alpha_1 = 0.25`` (randomly distributed input vectors).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..core.expressions import compile_expression
from ..core.model import (
    CapacitiveTerm,
    ExpressionAreaModel,
    ModelSet,
    TemplatePowerModel,
)
from ..core.parameters import Parameter
from ..errors import ModelError

#: The paper's default quick-estimate switching probability.
DEFAULT_ALPHA = 0.25


@dataclass(frozen=True)
class RandomLogicCoefficients:
    """Library-specific EQ 9 coefficients (farads)."""

    c0: float = 40e-15   # input plane, per input-minterm crossing
    c1: float = 55e-15   # output plane, per minterm-output crossing


@dataclass(frozen=True)
class ROMCoefficients:
    """Library-specific EQ 10 coefficients (farads)."""

    c0: float = 0.9e-12   # fixed: clocking, precharge drivers
    c1: float = 0.06e-15  # address decode, per N_I * 2^N_I
    c2: float = 0.012e-15 # bit-line precharge, per P_O * N_O * 2^N_I
    c3: float = 95e-15    # sense amplification, per P_O * N_O
    c4: float = 60e-15    # output drive, per N_O


def estimate_minterms(n_inputs: int, n_states: int = 0, density: float = 0.25) -> int:
    """Early-stage minterm count estimate.

    "N_M is the number of minterms (which, in turn, is related to the
    complexity of the controller)."  Before logic synthesis exists, a
    standard early estimate is a *density* fraction of the input space,
    clamped to at least one minterm per output-relevant state.
    """
    if n_inputs < 1:
        raise ModelError("controller needs at least one input")
    if not 0.0 < density <= 1.0:
        raise ModelError(f"minterm density {density} outside (0, 1]")
    space = 2 ** min(n_inputs, 24)  # cap: beyond this the estimate is meaningless
    estimate = max(1, int(round(density * space)))
    return max(estimate, n_states)


def random_logic_controller(
    n_inputs: int = 8,
    n_outputs: int = 12,
    n_minterms: Optional[int] = None,
    alpha0: float = DEFAULT_ALPHA,
    alpha1: float = DEFAULT_ALPHA,
    coefficients: RandomLogicCoefficients = RandomLogicCoefficients(),
    name: str = "controller_random_logic",
) -> TemplatePowerModel:
    """EQ 9 random-logic (two-level boolean) controller."""
    if n_inputs < 1 or n_outputs < 1:
        raise ModelError(f"{name}: N_I and N_O must be >= 1")
    for alpha in (alpha0, alpha1):
        if not 0.0 <= alpha <= 1.0:
            raise ModelError(f"{name}: switching probability {alpha} outside [0, 1]")
    if n_minterms is None:
        n_minterms = estimate_minterms(n_inputs)
    c = coefficients
    return TemplatePowerModel(
        name=name,
        capacitive=[
            CapacitiveTerm(
                "input_plane",
                compile_expression(f"{c.c0!r} * N_I * N_M"),
                activity=compile_expression("alpha0"),
                doc="EQ 9 first term: input plane",
            ),
            CapacitiveTerm(
                "output_plane",
                compile_expression(f"{c.c1!r} * N_M * N_O"),
                activity=compile_expression("alpha1"),
                doc="EQ 9 second term: output plane",
            ),
        ],
        parameters=(
            Parameter("N_I", n_inputs, "", "inputs incl. state/status bits", 1, integer=True),
            Parameter("N_O", n_outputs, "", "outputs incl. state bits", 1, integer=True),
            Parameter("N_M", n_minterms, "", "minterm count", 1, integer=True),
            Parameter("alpha0", alpha0, "", "input-plane switching prob.", 0.0, 1.0),
            Parameter("alpha1", alpha1, "", "output-plane switching prob.", 0.0, 1.0),
        ),
        doc="EQ 9 random-logic controller",
    )


def rom_controller(
    n_inputs: int = 6,
    n_outputs: int = 16,
    p_low: float = 0.5,
    coefficients: ROMCoefficients = ROMCoefficients(),
    name: str = "controller_rom",
) -> TemplatePowerModel:
    """EQ 10 ROM-based controller.

    ``p_low`` is P_O, the average fraction of output bits that evaluate
    low (and therefore need re-precharging next cycle).
    """
    if n_inputs < 1 or n_outputs < 1:
        raise ModelError(f"{name}: N_I and N_O must be >= 1")
    if n_inputs > 20:
        raise ModelError(
            f"{name}: N_I = {n_inputs} means a 2^{n_inputs}-word ROM — "
            "not a credible controller; split the control store"
        )
    if not 0.0 <= p_low <= 1.0:
        raise ModelError(f"{name}: P_O {p_low} outside [0, 1]")
    c = coefficients
    return TemplatePowerModel(
        name=name,
        capacitive=[
            CapacitiveTerm(
                "fixed",
                compile_expression(repr(c.c0)),
                doc="EQ 10 C_0: clock and precharge drivers",
            ),
            CapacitiveTerm(
                "decode",
                compile_expression(f"{c.c1!r} * N_I * 2^N_I"),
                doc="EQ 10 C_1 term: word-line decode",
            ),
            CapacitiveTerm(
                "bitlines",
                compile_expression(f"{c.c2!r} * P_O * N_O * 2^N_I"),
                doc="EQ 10 C_2 term: bit-line precharge of low outputs",
            ),
            CapacitiveTerm(
                "sense",
                compile_expression(f"{c.c3!r} * P_O * N_O"),
                doc="EQ 10 C_3 term: sense amplifiers",
            ),
            CapacitiveTerm(
                "outputs",
                compile_expression(f"{c.c4!r} * N_O"),
                doc="EQ 10 C_4 term: output drive",
            ),
        ],
        parameters=(
            Parameter("N_I", n_inputs, "", "address bits", 1, 20, integer=True),
            Parameter("N_O", n_outputs, "", "output bits", 1, integer=True),
            Parameter("P_O", p_low, "", "avg fraction of low outputs", 0.0, 1.0),
        ),
        doc="EQ 10 ROM controller",
    )


def pla_controller(
    n_inputs: int = 8,
    n_outputs: int = 12,
    n_minterms: Optional[int] = None,
    p_product: float = 0.25,
    name: str = "controller_pla",
) -> TemplatePowerModel:
    """PLA controller — "other implementation platforms (e.g. PLAs) may
    be modeled in a similar way".

    A precharged PLA looks like EQ 9's two planes with EQ 10-style
    precharge statistics: the AND plane loads 2*N_I true/complement
    lines per product term; the OR plane loads N_O output lines per
    product term, weighted by the probability a product term fires.
    """
    if n_minterms is None:
        n_minterms = estimate_minterms(n_inputs)
    if not 0.0 <= p_product <= 1.0:
        raise ModelError(f"{name}: p_product outside [0, 1]")
    c_and = 32e-15
    c_or = 47e-15
    return TemplatePowerModel(
        name=name,
        capacitive=[
            CapacitiveTerm(
                "and_plane",
                compile_expression(f"{c_and!r} * 2 * N_I * N_M"),
                activity=compile_expression("alpha"),
                doc="AND plane: true+complement input lines x product terms",
            ),
            CapacitiveTerm(
                "or_plane",
                compile_expression(f"{c_or!r} * N_M * N_O"),
                activity=compile_expression("p_product"),
                doc="OR plane: firing product terms drive output lines",
            ),
        ],
        parameters=(
            Parameter("N_I", n_inputs, "", "inputs", 1, integer=True),
            Parameter("N_O", n_outputs, "", "outputs", 1, integer=True),
            Parameter("N_M", n_minterms, "", "product terms", 1, integer=True),
            Parameter("alpha", DEFAULT_ALPHA, "", "input switching prob.", 0.0, 1.0),
            Parameter("p_product", p_product, "", "product-term fire prob.", 0.0, 1.0),
        ),
        doc="precharged PLA controller",
    )


def compare_platforms(
    n_inputs: int,
    n_outputs: int,
    vdd: float,
    frequency: float,
    n_minterms: Optional[int] = None,
) -> dict:
    """Estimate the same control algorithm on all three platforms.

    Early design exploration in one call: returns
    ``{platform: watts}`` so a designer can see, e.g., when the ROM's
    2^N_I decode cost overtakes random logic.
    """
    results = {}
    env_base = {"VDD": vdd, "f": frequency}
    logic = random_logic_controller(n_inputs, n_outputs, n_minterms)
    results["random_logic"] = logic.power(
        dict(env_base, N_I=n_inputs, N_O=n_outputs,
             N_M=n_minterms or estimate_minterms(n_inputs),
             alpha0=DEFAULT_ALPHA, alpha1=DEFAULT_ALPHA)
    )
    if n_inputs <= 20:
        rom = rom_controller(n_inputs, n_outputs)
        results["rom"] = rom.power(
            dict(env_base, N_I=n_inputs, N_O=n_outputs, P_O=0.5)
        )
    pla = pla_controller(n_inputs, n_outputs, n_minterms)
    results["pla"] = pla.power(
        dict(env_base, N_I=n_inputs, N_O=n_outputs,
             N_M=n_minterms or estimate_minterms(n_inputs),
             alpha=DEFAULT_ALPHA, p_product=0.25)
    )
    return results
