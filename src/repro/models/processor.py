"""Programmable-processor power models (paper EQs 11 and 12).

First order (EQ 11): ``P = alpha * P_AVG`` — the processor burns its
datasheet average power when active and nothing when shut down
(:class:`~repro.core.model.FixedPowerModel` implements this; re-exported
here for discoverability).

Second order (EQ 12, Tiwari): per-instruction energies::

    E_T = sum_i( N_i * E_inst_i )

"Power is this total energy divided by the time to process the
algorithm."  This module provides:

* :class:`InstructionSetEnergy` — an energy-per-instruction table with
  per-class cycle counts and optional inter-instruction (circuit-state)
  overhead, scalable with supply voltage;
* :class:`InstructionProfile` — instruction counts for one algorithm
  run (produced by hand, or measured by the :mod:`repro.sim.isa`
  virtual machine — the coded-algorithm + profiler route the paper
  points at);
* :func:`algorithm_energy` / :func:`algorithm_power` — EQ 12 proper;
* :class:`ProcessorModel` — wraps a profile + ISA table as a PowerModel
  for use in design rows (the InfoPad µ-processor subsystem);
* a cache/branch *correction*, since the paper warns "these models tend
  to underestimate power because factors such as cache and branch misses
  are neglected".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Tuple

from ..core.model import FixedPowerModel, PowerModel, _get
from ..core.parameters import Parameter
from ..errors import ModelError

__all__ = [
    "FixedPowerModel",
    "InstructionSetEnergy",
    "InstructionProfile",
    "ProcessorModel",
    "algorithm_energy",
    "algorithm_power",
    "DEFAULT_ISA",
]


@dataclass(frozen=True)
class InstructionEnergy:
    """Energy and latency of one instruction class at reference VDD."""

    name: str
    energy: float        # joules per execution at v_ref
    cycles: float = 1.0  # latency in clock cycles


class InstructionSetEnergy:
    """Per-instruction energy table (the Tiwari characterization).

    Energies scale quadratically with supply voltage relative to
    ``v_ref`` (dynamic dominated).  ``overhead`` is the average
    inter-instruction (circuit state change) energy added per executed
    instruction — Tiwari's measured cross term.
    """

    def __init__(
        self,
        name: str,
        entries: Iterable[InstructionEnergy],
        v_ref: float = 3.3,
        overhead: float = 0.0,
    ):
        self.name = name
        self.entries: Dict[str, InstructionEnergy] = {}
        for entry in entries:
            if entry.energy < 0 or entry.cycles <= 0:
                raise ModelError(
                    f"ISA {name!r}: bad entry {entry.name!r} "
                    f"(energy {entry.energy}, cycles {entry.cycles})"
                )
            self.entries[entry.name] = entry
        if not self.entries:
            raise ModelError(f"ISA {name!r}: no instructions")
        if v_ref <= 0:
            raise ModelError(f"ISA {name!r}: v_ref must be positive")
        if overhead < 0:
            raise ModelError(f"ISA {name!r}: negative overhead")
        self.v_ref = v_ref
        self.overhead = overhead

    def classes(self) -> Tuple[str, ...]:
        return tuple(self.entries)

    def _scale(self, vdd: Optional[float]) -> float:
        if vdd is None:
            return 1.0
        if vdd <= 0:
            raise ModelError(f"ISA {self.name!r}: VDD must be positive")
        return (vdd / self.v_ref) ** 2

    def energy_of(self, instruction: str, vdd: Optional[float] = None) -> float:
        entry = self.entries.get(instruction)
        if entry is None:
            raise ModelError(
                f"ISA {self.name!r} has no instruction {instruction!r}"
            )
        return (entry.energy + self.overhead) * self._scale(vdd)

    def cycles_of(self, instruction: str) -> float:
        entry = self.entries.get(instruction)
        if entry is None:
            raise ModelError(
                f"ISA {self.name!r} has no instruction {instruction!r}"
            )
        return entry.cycles


#: A representative embedded-RISC table in the spirit of Tiwari's 486DX2
#: and Fujitsu DSP characterizations, normalized to a 3.3 V part.
#: Memory operations cost several times a register ALU op; multiply sits
#: between; taken branches pay the refill.
DEFAULT_ISA = InstructionSetEnergy(
    "embedded_risc_3v3",
    [
        InstructionEnergy("alu", 1.8e-9, 1),
        InstructionEnergy("mul", 4.6e-9, 2),
        InstructionEnergy("load", 5.2e-9, 2),
        InstructionEnergy("store", 4.8e-9, 2),
        InstructionEnergy("branch", 2.4e-9, 1),
        InstructionEnergy("branch_taken", 3.9e-9, 3),
        InstructionEnergy("nop", 0.9e-9, 1),
    ],
    v_ref=3.3,
    overhead=0.3e-9,
)


class InstructionProfile:
    """Instruction counts for one algorithm execution.

    ``counts`` maps instruction-class name -> executed count.  Profiles
    add (for composing phases) and scale (for per-iteration costs).
    """

    def __init__(self, name: str, counts: Optional[Mapping[str, int]] = None):
        self.name = name
        self.counts: Dict[str, int] = {}
        for key, value in (counts or {}).items():
            if value < 0:
                raise ModelError(f"profile {name!r}: negative count for {key!r}")
            if value:
                self.counts[key] = int(value)

    def record(self, instruction: str, count: int = 1) -> None:
        if count < 0:
            raise ModelError(f"profile {self.name!r}: negative increment")
        self.counts[instruction] = self.counts.get(instruction, 0) + count

    @property
    def total_instructions(self) -> int:
        return sum(self.counts.values())

    def __add__(self, other: "InstructionProfile") -> "InstructionProfile":
        merged = dict(self.counts)
        for key, value in other.counts.items():
            merged[key] = merged.get(key, 0) + value
        return InstructionProfile(f"{self.name}+{other.name}", merged)

    def scaled(self, factor: int) -> "InstructionProfile":
        if factor < 0:
            raise ModelError("scale factor cannot be negative")
        return InstructionProfile(
            f"{self.name}x{factor}",
            {key: value * factor for key, value in self.counts.items()},
        )

    def __repr__(self) -> str:
        return f"InstructionProfile({self.name!r}, {self.total_instructions} instrs)"


def algorithm_energy(
    profile: InstructionProfile,
    isa: InstructionSetEnergy = DEFAULT_ISA,
    vdd: Optional[float] = None,
) -> float:
    """EQ 12: total energy of an algorithm run, joules."""
    return sum(
        count * isa.energy_of(instruction, vdd)
        for instruction, count in profile.counts.items()
    )


def algorithm_cycles(
    profile: InstructionProfile, isa: InstructionSetEnergy = DEFAULT_ISA
) -> float:
    """Total cycle count of an algorithm run."""
    return sum(
        count * isa.cycles_of(instruction)
        for instruction, count in profile.counts.items()
    )


def algorithm_power(
    profile: InstructionProfile,
    clock_hz: float,
    isa: InstructionSetEnergy = DEFAULT_ISA,
    vdd: Optional[float] = None,
) -> float:
    """EQ 12 power: total energy / execution time."""
    if clock_hz <= 0:
        raise ModelError("clock frequency must be positive")
    cycles = algorithm_cycles(profile, isa)
    if cycles == 0:
        return 0.0
    runtime = cycles / clock_hz
    return algorithm_energy(profile, isa, vdd) / runtime


@dataclass(frozen=True)
class MemorySystemCorrection:
    """Cache/branch-miss correction the paper says naive EQ 12 omits.

    Each cache miss adds ``miss_energy`` and ``miss_cycles``; applied to
    the fraction of loads/stores that miss.
    """

    miss_rate: float = 0.05
    miss_energy: float = 18e-9
    miss_cycles: float = 10.0

    def apply(self, profile: InstructionProfile) -> Tuple[float, float]:
        """Extra (energy, cycles) for a profile's memory traffic."""
        if not 0.0 <= self.miss_rate <= 1.0:
            raise ModelError(f"miss rate {self.miss_rate} outside [0, 1]")
        accesses = profile.counts.get("load", 0) + profile.counts.get("store", 0)
        misses = accesses * self.miss_rate
        return misses * self.miss_energy, misses * self.miss_cycles


class ProcessorModel(PowerModel):
    """A programmable processor running a fixed workload profile.

    Environment parameters: ``f`` (clock) and optionally ``VDD`` and
    ``alpha`` (duty factor applied on top — the processor may sleep
    between frames).  With a memory correction attached, miss energy and
    stall cycles are included.
    """

    def __init__(
        self,
        name: str,
        profile: InstructionProfile,
        isa: InstructionSetEnergy = DEFAULT_ISA,
        correction: Optional[MemorySystemCorrection] = None,
        doc: str = "",
    ):
        self.name = name
        self.profile = profile
        self.isa = isa
        self.correction = correction
        self.doc = doc or f"EQ 12 instruction-level model over {isa.name!r}"
        self.parameters = (
            Parameter("alpha", 1.0, "", "duty factor", 0.0, 1.0),
        )

    def power(self, env: Mapping[str, float]) -> float:
        clock = _get(env, "f")
        vdd = env.get("VDD")
        vdd = float(vdd() if callable(vdd) else vdd) if vdd is not None else None
        alpha = _get(env, "alpha", 1.0)
        energy = algorithm_energy(self.profile, self.isa, vdd)
        cycles = algorithm_cycles(self.profile, self.isa)
        if self.correction is not None:
            extra_energy, extra_cycles = self.correction.apply(self.profile)
            if vdd is not None:
                extra_energy *= (vdd / self.isa.v_ref) ** 2
            energy += extra_energy
            cycles += extra_cycles
        if cycles == 0 or clock <= 0:
            return 0.0
        return alpha * energy / (cycles / clock)

    def breakdown(self, env: Mapping[str, float]) -> Dict[str, float]:
        total = self.power(env)
        energy = algorithm_energy(self.profile, self.isa)
        if energy <= 0:
            return {"idle": total}
        result: Dict[str, float] = {}
        for instruction, count in self.profile.counts.items():
            share = count * self.isa.energy_of(instruction) / energy
            result[instruction] = share * total
        return result
