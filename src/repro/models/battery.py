"""Battery-life estimation for portable systems.

The paper's motivating platform is a battery-powered terminal ("a
portable multimedia terminal called InfoPad"), and the number a system
architect actually budgets against is *hours of operation*.  This module
closes that loop: a first-order battery model driven by the design's
evaluated input power.

Model: a cell bank of nominal voltage and capacity, with a Peukert
exponent capturing the capacity loss at high discharge rates::

    t = H * (C / (I * H)) ^ k        (Peukert's law)

where ``C`` is the rated capacity (Ah) at the rated discharge time ``H``
(hours) and ``I`` the drawn current.  ``k = 1`` recovers the ideal
``C / I``.  NiCd/NiMH packs of the era sit around k = 1.05-1.15.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from ..errors import ModelError


@dataclass(frozen=True)
class Battery:
    """A battery pack.

    ``voltage`` — nominal pack voltage (V);
    ``capacity_ah`` — rated capacity (amp-hours) at ``rated_hours``;
    ``peukert`` — Peukert exponent (1.0 = ideal);
    ``usable_fraction`` — depth-of-discharge the system tolerates.
    """

    name: str = "nimh_pack"
    voltage: float = 6.0
    capacity_ah: float = 2.4
    peukert: float = 1.1
    rated_hours: float = 5.0
    usable_fraction: float = 0.9

    def __post_init__(self) -> None:
        if self.voltage <= 0 or self.capacity_ah <= 0:
            raise ModelError(f"battery {self.name!r}: bad ratings")
        if self.peukert < 1.0:
            raise ModelError(
                f"battery {self.name!r}: Peukert exponent below 1"
            )
        if self.rated_hours <= 0:
            raise ModelError(f"battery {self.name!r}: bad rated_hours")
        if not 0.0 < self.usable_fraction <= 1.0:
            raise ModelError(
                f"battery {self.name!r}: usable fraction outside (0, 1]"
            )

    @property
    def energy_wh(self) -> float:
        """Nominal stored energy, watt-hours."""
        return self.voltage * self.capacity_ah

    def runtime_hours(self, load_watts: float) -> float:
        """Hours of operation at a constant system input power."""
        if load_watts < 0:
            raise ModelError("load power cannot be negative")
        if load_watts == 0:
            return float("inf")
        current = load_watts / self.voltage
        rated_current = self.capacity_ah / self.rated_hours
        # Peukert: t = H * (C / (I * H))^k
        hours = self.rated_hours * (
            self.capacity_ah / (current * self.rated_hours)
        ) ** self.peukert
        ideal = self.capacity_ah / current
        # high loads lose capacity; trickle loads cannot exceed ideal
        if current <= rated_current:
            hours = min(hours, ideal)
        return hours * self.usable_fraction

    def current_draw(self, load_watts: float) -> float:
        """Pack current (A) at a system load."""
        if load_watts < 0:
            raise ModelError("load power cannot be negative")
        return load_watts / self.voltage


#: Period-typical packs for the exploration examples.
NIMH_6V = Battery("nimh_6v", voltage=6.0, capacity_ah=2.4, peukert=1.1)
NICD_6V = Battery("nicd_6v", voltage=6.0, capacity_ah=1.2, peukert=1.05)
LEAD_ACID_6V = Battery(
    "sla_6v", voltage=6.0, capacity_ah=4.0, peukert=1.25, rated_hours=20.0
)


def battery_life(
    system_watts: float, battery: Battery = NIMH_6V
) -> float:
    """Hours of operation for a system drawing ``system_watts``.

    Feed it the *root* of a power report whose converter rows are
    included — that total is battery input power by construction.
    """
    return battery.runtime_hours(system_watts)


def required_capacity_ah(
    system_watts: float,
    target_hours: float,
    battery: Battery = NIMH_6V,
) -> float:
    """Capacity needed to hit a runtime target (inverse design).

    Solves Peukert for C at the implied current; the other pack
    parameters are taken from ``battery``.
    """
    if target_hours <= 0:
        raise ModelError("target runtime must be positive")
    if system_watts <= 0:
        raise ModelError("system power must be positive for sizing")
    current = system_watts / battery.voltage
    effective_target = target_hours / battery.usable_fraction
    # t = H * (C/(I H))^k  ->  C = I * H * (t/H)^(1/k)
    return (
        current
        * battery.rated_hours
        * (effective_target / battery.rated_hours) ** (1.0 / battery.peukert)
    )
