"""FPGA macro-models — the paper's explicitly flagged future work.

"On the other hand, providing high-level macro-models for other
elements, such as FPGAs, is non-trivial and is the subject of further
research."

This module supplies that missing model class, in PowerPlay's template
spirit: an island-style (CLB + programmable-interconnect) FPGA macro
parameterized by the quantities an early design actually knows —
equivalent gate count, utilization, toggle rate, clock frequency — with
coefficients shaped by the mid-90s literature on FPGA power (switched
capacitance dominated by the programmable interconnect, a fixed clock
network tax, and fanout-heavy routing):

* logic: ``C_clb`` per occupied CLB per toggling output;
* interconnect: each routed net drives segmented wiring plus pass
  transistors — several times the capacitance of a hard-wired net, the
  reason FPGA implementations burn ~10x the power of custom silicon;
* clock network: spans the *whole* array (utilization-independent);
* static: configuration/bias current.

The companion :func:`custom_vs_fpga` quantifies the paper-era rule of
thumb by putting the same gate count through the custom-cell and FPGA
models.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping

from ..core.expressions import compile_expression
from ..core.model import (
    CapacitiveTerm,
    ExpressionAreaModel,
    ModelSet,
    StaticTerm,
    TemplatePowerModel,
    VoltageScaledTimingModel,
)
from ..core.parameters import Parameter
from ..errors import ModelError


@dataclass(frozen=True)
class FPGACoefficients:
    """Per-device capacitance/area constants for the FPGA macro.

    Defaults model a mid-90s 5 V island-style part (XC4000-class).
    """

    gates_per_clb: float = 12.0       # equivalent gates packed per CLB
    c_clb: float = 0.9e-12            # logic capacitance per CLB toggle
    c_net: float = 1.8e-12            # routed-net capacitance (segmented)
    nets_per_clb: float = 2.5         # average driven nets per CLB
    c_clock_per_clb: float = 0.35e-12 # clock network load per array CLB
    i_static: float = 4e-3            # configuration + bias current (A)
    area_per_clb: float = 2.2e-7      # m^2 per CLB (pads excluded)
    clb_delay: float = 4.5e-9         # logic + one routing hop at v_ref
    v_ref: float = 5.0

    def __post_init__(self) -> None:
        numbers = (
            self.gates_per_clb, self.c_clb, self.c_net, self.nets_per_clb,
            self.c_clock_per_clb, self.area_per_clb, self.clb_delay,
            self.v_ref,
        )
        if any(value <= 0 for value in numbers) or self.i_static < 0:
            raise ModelError("FPGA coefficients must be positive")


DEFAULT_FPGA = FPGACoefficients()


def clbs_required(gate_count: int, coefficients: FPGACoefficients = DEFAULT_FPGA) -> int:
    """CLBs needed to map ``gate_count`` equivalent gates."""
    if gate_count < 1:
        raise ModelError("gate count must be >= 1")
    return max(1, math.ceil(gate_count / coefficients.gates_per_clb))


def fpga_macro(
    gate_count: int = 5000,
    utilization: float = 0.7,
    toggle_rate: float = 0.125,
    coefficients: FPGACoefficients = DEFAULT_FPGA,
    name: str = "fpga",
) -> TemplatePowerModel:
    """The FPGA as an EQ 1 template model.

    Parameters exposed on the form: ``gates`` (equivalent gate count of
    the mapped design), ``utilization`` (fraction of the array the
    design occupies — the array is sized as ``gates`` / utilization),
    ``toggle`` (average net toggle probability per cycle), plus the
    standard ``VDD`` and ``f``.
    """
    if not 0.0 < utilization <= 1.0:
        raise ModelError(f"{name}: utilization {utilization} outside (0, 1]")
    if not 0.0 <= toggle_rate <= 1.0:
        raise ModelError(f"{name}: toggle rate outside [0, 1]")
    c = coefficients
    occupied = f"ceil(gates / {c.gates_per_clb!r})"
    array = f"ceil(gates / ({c.gates_per_clb!r} * utilization))"
    return TemplatePowerModel(
        name=name,
        capacitive=[
            CapacitiveTerm(
                "clb_logic",
                compile_expression(f"{occupied} * {c.c_clb!r}"),
                activity=compile_expression("toggle"),
                doc="LUT + FF switching in occupied CLBs",
            ),
            CapacitiveTerm(
                "interconnect",
                compile_expression(
                    f"{occupied} * {c.nets_per_clb!r} * {c.c_net!r}"
                ),
                activity=compile_expression("toggle"),
                doc="segmented routing + pass transistors (dominant)",
            ),
            CapacitiveTerm(
                "clock_network",
                compile_expression(f"{array} * {c.c_clock_per_clb!r}"),
                doc="array-wide clock tree, switches regardless of use",
            ),
        ],
        static=[
            StaticTerm(
                "configuration",
                compile_expression(repr(c.i_static)),
                doc="configuration memory + bias",
            )
        ],
        parameters=(
            Parameter("gates", gate_count, "", "equivalent gate count", 1, integer=True),
            Parameter("utilization", utilization, "", "array fill fraction", 0.05, 1.0),
            Parameter("toggle", toggle_rate, "", "net toggle probability", 0.0, 1.0),
        ),
        doc="island-style FPGA macro-model (interconnect-dominated)",
    )


def fpga_model_set(
    gate_count: int = 5000,
    utilization: float = 0.7,
    toggle_rate: float = 0.125,
    logic_depth: int = 8,
    coefficients: FPGACoefficients = DEFAULT_FPGA,
    name: str = "fpga",
) -> ModelSet:
    """FPGA macro with power, area and (depth-scaled) timing models."""
    if logic_depth < 1:
        raise ModelError(f"{name}: logic depth must be >= 1")
    power = fpga_macro(gate_count, utilization, toggle_rate, coefficients, name)
    c = coefficients
    area = ExpressionAreaModel(
        name + "_area",
        f"ceil(gates / ({c.gates_per_clb!r} * utilization)) * {c.area_per_clb!r}",
        parameters=power.parameters,
        doc="array area at the given utilization",
    )
    timing = VoltageScaledTimingModel(
        name + "_delay",
        delay_ref=logic_depth * c.clb_delay,
        v_ref=c.v_ref,
        doc=f"{logic_depth} CLB levels incl. routing hops",
    )
    return ModelSet(power=power, area=area, timing=timing)


def custom_vs_fpga(
    gate_count: int,
    vdd_custom: float = 1.5,
    vdd_fpga: float = 5.0,
    frequency: float = 2e6,
    toggle_rate: float = 0.125,
    c_gate_custom: float = 25e-15,
    coefficients: FPGACoefficients = DEFAULT_FPGA,
) -> Dict[str, float]:
    """The implementation-platform comparison an early exploration asks.

    Custom cells: ``gate_count * c_gate_custom`` of toggled capacitance
    at a low supply.  FPGA: the macro above at its native supply.
    Returns watts per platform plus the ratio — expect the FPGA to cost
    one to two orders of magnitude, split between interconnect
    capacitance and the supply difference.
    """
    if gate_count < 1 or c_gate_custom <= 0:
        raise ModelError("bad comparison operands")
    custom_capacitance = gate_count * c_gate_custom
    custom = toggle_rate * custom_capacitance * vdd_custom**2 * frequency
    macro = fpga_macro(gate_count, coefficients=coefficients)
    fpga = macro.power(
        {
            "gates": gate_count,
            "utilization": 0.7,
            "toggle": toggle_rate,
            "VDD": vdd_fpga,
            "f": frequency,
        }
    )
    return {
        "custom": custom,
        "fpga": fpga,
        "ratio": fpga / custom if custom > 0 else math.inf,
    }
