"""DC-DC converter models (paper EQs 18 and 19).

A converter is specified by the power it delivers and its efficiency::

    eta = P_load / P_in = P_load / (P_load + P_diss)       (EQ 18)
    P_diss = P_load * (1 - eta) / eta                      (EQ 19)

"This is an example of intermodel interaction; the output from other
models is used to calculate the dissipation in the converter."  In a
design, a converter row declares ``power_feeds`` on the rows it supplies
and reads their summed power as ``P_load``.

Beyond the constant-efficiency first order, :class:`EfficiencyCurve`
captures the load dependence real parts exhibit ("the efficiency of the
converter is a function of temperature, input voltage, and load power")
as a piecewise-linear table, the way a Maxim datasheet plots it.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.model import PowerModel, _get
from ..core.parameters import Parameter
from ..errors import ModelError


def converter_dissipation(p_load: float, efficiency: float) -> float:
    """EQ 19: converter loss for a given load and efficiency."""
    if p_load < 0:
        raise ModelError(f"load power {p_load} cannot be negative")
    if not 0.0 < efficiency <= 1.0:
        raise ModelError(f"efficiency {efficiency} outside (0, 1]")
    return p_load * (1.0 - efficiency) / efficiency


def converter_input_power(p_load: float, efficiency: float) -> float:
    """EQ 18 rearranged: P_in = P_load / eta."""
    if not 0.0 < efficiency <= 1.0:
        raise ModelError(f"efficiency {efficiency} outside (0, 1]")
    return p_load / efficiency


class EfficiencyCurve:
    """Piecewise-linear efficiency vs load power.

    Points are ``(load_watts, efficiency)``; queries interpolate and
    clamp at the ends.  Real converters fall off steeply at light load
    (fixed switching losses dominate) — the default curve shows that
    shape.
    """

    def __init__(self, points: Sequence[Tuple[float, float]]):
        if len(points) < 2:
            raise ModelError("efficiency curve needs at least two points")
        ordered = sorted(points)
        loads = [load for load, _ in ordered]
        if len(set(loads)) != len(loads):
            raise ModelError("efficiency curve has duplicate load points")
        for load, eta in ordered:
            if load < 0:
                raise ModelError(f"negative load point {load}")
            if not 0.0 < eta <= 1.0:
                raise ModelError(f"efficiency point {eta} outside (0, 1]")
        self._loads = loads
        self._etas = [eta for _, eta in ordered]

    def __call__(self, p_load: float) -> float:
        if p_load < 0:
            raise ModelError(f"load power {p_load} cannot be negative")
        loads, etas = self._loads, self._etas
        if p_load <= loads[0]:
            return etas[0]
        if p_load >= loads[-1]:
            return etas[-1]
        index = bisect.bisect_right(loads, p_load)
        x0, x1 = loads[index - 1], loads[index]
        y0, y1 = etas[index - 1], etas[index]
        fraction = (p_load - x0) / (x1 - x0)
        return y0 + fraction * (y1 - y0)


#: A buck-regulator-shaped default curve (Maxim-datasheet-like).
DEFAULT_BUCK_CURVE = EfficiencyCurve(
    [
        (0.001, 0.40),
        (0.01, 0.62),
        (0.05, 0.76),
        (0.2, 0.85),
        (1.0, 0.90),
        (5.0, 0.88),
        (20.0, 0.82),
    ]
)


class DCDCConverterModel(PowerModel):
    """EQ 18/19 as a design row.

    Reads ``P_load`` from the environment — provided automatically when
    the row declares ``power_feeds`` — or from an explicit parameter for
    standalone use.  With ``curve`` set, efficiency follows the load;
    otherwise the constant ``eta`` parameter applies ("in many
    applications, it can be assumed constant to the first order").

    The model's *power* is the converter's own dissipation (EQ 19), so a
    design total including the converter row equals system input power.
    """

    def __init__(
        self,
        name: str = "dcdc",
        efficiency: float = 0.9,
        curve: Optional[EfficiencyCurve] = None,
        doc: str = "",
    ):
        if not 0.0 < efficiency <= 1.0:
            raise ModelError(f"{name}: efficiency {efficiency} outside (0, 1]")
        self.name = name
        self.curve = curve
        self.doc = doc or "EQ 18/19 DC-DC converter (intermodel interaction)"
        self.parameters = (
            Parameter("eta", efficiency, "", "conversion efficiency", 0.01, 1.0),
        )

    def efficiency_at(self, p_load: float, env: Mapping[str, float]) -> float:
        if self.curve is not None:
            return self.curve(p_load)
        return _get(env, "eta", 0.9)

    def power(self, env: Mapping[str, float]) -> float:
        p_load = _get(env, "P_load")
        efficiency = self.efficiency_at(p_load, env)
        return converter_dissipation(p_load, efficiency)

    def input_power(self, env: Mapping[str, float]) -> float:
        """P_in = P_load + P_diss — what the battery actually supplies."""
        p_load = _get(env, "P_load")
        return p_load + self.power(env)

    def breakdown(self, env: Mapping[str, float]) -> Dict[str, float]:
        p_load = _get(env, "P_load")
        efficiency = self.efficiency_at(p_load, env)
        return {f"loss_at_eta_{efficiency:.2f}": self.power(env)}

    def __repr__(self) -> str:
        mode = "curve" if self.curve is not None else "constant-eta"
        return f"DCDCConverterModel({self.name!r}, {mode})"
