"""Computational-block power models (paper EQs 2, 3, 6 and 20).

Landman's empirical "black box" approach characterizes each library cell
with capacitive coefficients relating complexity parameters (bit-width,
input count...) to total switched capacitance:

* EQ 3 — linear:  ``C_T = bitwidth * C_0``  (ripple adders, registers,
  muxes, buffers — anything whose bit slices are independent);
* EQ 20 — bilinear: ``C_T = bitwidthA * bitwidthB * 253 fF`` (the array
  multiplier; coefficient per input-bit *pair*);
* general polynomial forms for more complex modules (logarithmic
  shifters need a ``bitwidth * log2(shift_range)`` term, etc.).

Correlated-input variants "have the same format of equation but with
different coefficients" — each factory takes a ``correlation`` argument
choosing the coefficient set.

All models produced here are :class:`~repro.core.model.TemplatePowerModel`
instances, so they slot into designs, macros and the web forms uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..core.expressions import compile_expression
from ..core.model import (
    CapacitiveTerm,
    ExpressionAreaModel,
    ExpressionTimingModel,
    ModelSet,
    TemplatePowerModel,
    VoltageScaledTimingModel,
)
from ..core.parameters import Parameter
from ..errors import ModelError

#: Input-correlation classes the library distinguishes.  The paper's
#: multiplier form offers a "multiplier type" select; these are its values.
CORRELATION_CLASSES = ("uncorrelated", "correlated", "sign_magnitude")


def _require_correlation(correlation: str) -> str:
    if correlation not in CORRELATION_CLASSES:
        raise ModelError(
            f"unknown correlation class {correlation!r}; "
            f"expected one of {CORRELATION_CLASSES}"
        )
    return correlation


@dataclass(frozen=True)
class CapacitiveCoefficients:
    """A named coefficient set for one cell, per correlation class.

    ``values`` maps correlation class -> coefficient (farads).  Missing
    classes fall back to ``uncorrelated``.
    """

    name: str
    values: Mapping[str, float]

    def get(self, correlation: str) -> float:
        _require_correlation(correlation)
        if correlation in self.values:
            return self.values[correlation]
        return self.values["uncorrelated"]


def linear_model(
    name: str,
    c_per_bit: float,
    default_bitwidth: int = 16,
    activity: float = 1.0,
    doc: str = "",
) -> TemplatePowerModel:
    """EQ 3: ``C_T = bitwidth * C_0`` with constant per-bit activity.

    ``c_per_bit`` is the effective capacitance switched per bit per
    access (``C_0 = alpha * C_i`` with the activity folded in when
    ``activity`` is 1; pass an explicit ``activity`` to keep them
    separate).
    """
    if c_per_bit < 0:
        raise ModelError(f"{name}: negative capacitance coefficient")
    return TemplatePowerModel(
        name=name,
        capacitive=[
            CapacitiveTerm(
                name="bit_slices",
                capacitance=compile_expression(f"bitwidth * {c_per_bit!r}"),
                activity=compile_expression(repr(float(activity))),
                doc="EQ 3 linear bit-slice capacitance",
            )
        ],
        parameters=(
            Parameter("bitwidth", default_bitwidth, "bits", "datapath width", 1, integer=True),
        ),
        doc=doc or f"EQ 3 linear model, C0 = {c_per_bit} F/bit",
    )


#: The paper's published multiplier coefficient (EQ 20): 253 fF per
#: input-bit pair for non-correlated inputs on the UCB low-power library.
MULTIPLIER_C_UNCORRELATED = 253e-15

#: Correlated-input coefficient sets.  The paper states correlated models
#: exist with the same equation shape; these values are our
#: re-characterization (correlated data switches fewer array nodes).
MULTIPLIER_COEFFICIENTS = CapacitiveCoefficients(
    "array_multiplier",
    {
        "uncorrelated": MULTIPLIER_C_UNCORRELATED,
        "correlated": 164e-15,
        "sign_magnitude": 198e-15,
    },
)


def multiplier(
    bitwidth_a: int = 16,
    bitwidth_b: Optional[int] = None,
    correlation: str = "uncorrelated",
    coefficients: CapacitiveCoefficients = MULTIPLIER_COEFFICIENTS,
    name: str = "multiplier",
) -> TemplatePowerModel:
    """EQ 20: ``C_T = bitwidthA * bitwidthB * C_mult``.

    The Figure 4 web form exposes exactly these knobs: two bit-widths
    and the multiplier (correlation) type.
    """
    coefficient = coefficients.get(correlation)
    if bitwidth_b is None:
        bitwidth_b = bitwidth_a
    return TemplatePowerModel(
        name=name,
        capacitive=[
            CapacitiveTerm(
                name="array",
                capacitance=compile_expression(
                    f"bitwidthA * bitwidthB * {coefficient!r}"
                ),
                doc="EQ 20 bilinear array capacitance",
            )
        ],
        parameters=(
            Parameter("bitwidthA", bitwidth_a, "bits", "operand A width", 1, integer=True),
            Parameter("bitwidthB", bitwidth_b, "bits", "operand B width", 1, integer=True),
        ),
        doc=(
            f"EQ 20 array multiplier, {correlation} inputs, "
            f"C = {coefficient * 1e15:.0f} fF per bit pair"
        ),
    )


RIPPLE_ADDER_COEFFICIENTS = CapacitiveCoefficients(
    "ripple_adder",
    {"uncorrelated": 68e-15, "correlated": 44e-15, "sign_magnitude": 52e-15},
)

CLA_ADDER_COEFFICIENTS = CapacitiveCoefficients(
    "cla_adder",
    # carry-lookahead burns more capacitance per bit but is faster
    {"uncorrelated": 97e-15, "correlated": 66e-15, "sign_magnitude": 75e-15},
)


def ripple_adder(
    bitwidth: int = 16,
    correlation: str = "uncorrelated",
    name: str = "ripple_adder",
) -> TemplatePowerModel:
    """EQ 2/3: a ripple adder has a single per-bit coefficient."""
    coefficient = RIPPLE_ADDER_COEFFICIENTS.get(correlation)
    model = linear_model(
        name,
        coefficient,
        default_bitwidth=bitwidth,
        doc=f"ripple-carry adder, {correlation}, {coefficient * 1e15:.0f} fF/bit",
    )
    return model


def cla_adder(
    bitwidth: int = 16,
    correlation: str = "uncorrelated",
    name: str = "cla_adder",
) -> TemplatePowerModel:
    """Carry-lookahead adder: linear model, larger coefficient."""
    coefficient = CLA_ADDER_COEFFICIENTS.get(correlation)
    return linear_model(
        name,
        coefficient,
        default_bitwidth=bitwidth,
        doc=f"carry-lookahead adder, {correlation}, {coefficient * 1e15:.0f} fF/bit",
    )


LOG_SHIFTER_COEFFICIENTS = CapacitiveCoefficients(
    "log_shifter",
    {"uncorrelated": 21e-15, "correlated": 14e-15, "sign_magnitude": 17e-15},
)


def logarithmic_shifter(
    bitwidth: int = 16,
    max_shift: int = 16,
    correlation: str = "uncorrelated",
    name: str = "log_shifter",
) -> TemplatePowerModel:
    """Logarithmic shifter: "More complex modules (e.g. multipliers or
    logarithmic shifters) require additional capacitive coefficients."

    ``C_T = bitwidth * log2(max_shift) * C_stage`` — one mux stage per
    shift bit, each touching every data bit.
    """
    if max_shift < 2:
        raise ModelError(f"{name}: max_shift must be >= 2")
    coefficient = LOG_SHIFTER_COEFFICIENTS.get(correlation)
    return TemplatePowerModel(
        name=name,
        capacitive=[
            CapacitiveTerm(
                name="mux_stages",
                capacitance=compile_expression(
                    f"bitwidth * log2(max_shift) * {coefficient!r}"
                ),
                doc="one barrel stage per shift-amount bit",
            )
        ],
        parameters=(
            Parameter("bitwidth", bitwidth, "bits", "datapath width", 1, integer=True),
            Parameter("max_shift", max_shift, "", "shift range (power of 2)", 2, integer=True),
        ),
        doc=f"logarithmic shifter, {correlation}, {coefficient * 1e15:.0f} fF/bit/stage",
    )


COMPARATOR_COEFFICIENTS = CapacitiveCoefficients(
    "comparator",
    {"uncorrelated": 31e-15, "correlated": 19e-15, "sign_magnitude": 24e-15},
)


def comparator(
    bitwidth: int = 16,
    correlation: str = "uncorrelated",
    name: str = "comparator",
) -> TemplatePowerModel:
    """Magnitude comparator: linear per-bit model."""
    coefficient = COMPARATOR_COEFFICIENTS.get(correlation)
    return linear_model(
        name,
        coefficient,
        default_bitwidth=bitwidth,
        doc=f"magnitude comparator, {correlation}, {coefficient * 1e15:.0f} fF/bit",
    )


MUX_C_PER_BIT_PER_INPUT = 9e-15


def multiplexer(
    bitwidth: int = 16,
    inputs: int = 2,
    name: str = "mux",
) -> TemplatePowerModel:
    """N-to-1 multiplexer: capacitance grows with width and fan-in.

    ``C_T = bitwidth * (inputs - 1) * C_mux`` — a tree of 2:1 stages.
    """
    if inputs < 2:
        raise ModelError(f"{name}: a mux needs at least 2 inputs")
    return TemplatePowerModel(
        name=name,
        capacitive=[
            CapacitiveTerm(
                name="select_tree",
                capacitance=compile_expression(
                    f"bitwidth * (inputs - 1) * {MUX_C_PER_BIT_PER_INPUT!r}"
                ),
                doc="2:1 stages in a selection tree",
            )
        ],
        parameters=(
            Parameter("bitwidth", bitwidth, "bits", "datapath width", 1, integer=True),
            Parameter("inputs", inputs, "", "mux fan-in", 2, integer=True),
        ),
        doc=f"{inputs}:1 multiplexer tree",
    )


BUFFER_C_PER_BIT_PER_FANOUT = 6e-15


def output_buffer(
    bitwidth: int = 16,
    fanout: float = 4.0,
    name: str = "buffer",
) -> TemplatePowerModel:
    """Driver/buffer bank: per-bit capacitance scaled by driven load."""
    if fanout <= 0:
        raise ModelError(f"{name}: fanout must be positive")
    return TemplatePowerModel(
        name=name,
        capacitive=[
            CapacitiveTerm(
                name="drivers",
                capacitance=compile_expression(
                    f"bitwidth * fanout * {BUFFER_C_PER_BIT_PER_FANOUT!r}"
                ),
                doc="driver + driven load per bit",
            )
        ],
        parameters=(
            Parameter("bitwidth", bitwidth, "bits", "bus width", 1, integer=True),
            Parameter("fanout", fanout, "", "load, in unit gate loads", 0.1),
        ),
        doc="output buffer bank",
    )


# ---------------------------------------------------------------------------
# Area / timing companions (the paper: "parameterized models are also
# used for area and timing analysis")
# ---------------------------------------------------------------------------

#: Active area per bit slice for the 1.2 um-class library, m^2.
AREA_PER_BIT = {
    "ripple_adder": 2.3e-9,
    "cla_adder": 3.4e-9,
    "comparator": 1.4e-9,
    "mux": 0.6e-9,
    "buffer": 0.5e-9,
}

#: Multiplier area per bit pair, m^2.
AREA_PER_BIT_PAIR_MULTIPLIER = 1.1e-9


def adder_model_set(
    kind: str = "ripple",
    bitwidth: int = 16,
    correlation: str = "uncorrelated",
) -> ModelSet:
    """Adder with power, area and voltage-scaled timing models.

    Ripple delay grows linearly with width; CLA logarithmically.
    Reference delays are at 1.5 V on the characterized library.
    """
    if kind == "ripple":
        power = ripple_adder(bitwidth, correlation)
        area_expr = f"bitwidth * {AREA_PER_BIT['ripple_adder']!r}"
        delay_ref = 1.1e-9 * bitwidth  # one carry per bit
    elif kind == "cla":
        power = cla_adder(bitwidth, correlation)
        area_expr = f"bitwidth * {AREA_PER_BIT['cla_adder']!r}"
        import math

        delay_ref = 1.6e-9 * max(1.0, math.log2(bitwidth))
    else:
        raise ModelError(f"unknown adder kind {kind!r}")
    return ModelSet(
        power=power,
        area=ExpressionAreaModel(
            power.name + "_area",
            area_expr,
            parameters=(Parameter("bitwidth", bitwidth, "bits", integer=True, minimum=1),),
        ),
        timing=VoltageScaledTimingModel(power.name + "_delay", delay_ref),
    )


def multiplier_model_set(
    bitwidth_a: int = 16,
    bitwidth_b: Optional[int] = None,
    correlation: str = "uncorrelated",
) -> ModelSet:
    """Multiplier with power (EQ 20), area, and timing models."""
    power = multiplier(bitwidth_a, bitwidth_b, correlation)
    widths = (
        Parameter("bitwidthA", bitwidth_a, "bits", integer=True, minimum=1),
        Parameter("bitwidthB", bitwidth_b or bitwidth_a, "bits", integer=True, minimum=1),
    )
    # array multiplier: carry-save rows, delay ~ sum of widths
    delay_ref = 0.9e-9 * (bitwidth_a + (bitwidth_b or bitwidth_a))
    return ModelSet(
        power=power,
        area=ExpressionAreaModel(
            "multiplier_area",
            f"bitwidthA * bitwidthB * {AREA_PER_BIT_PAIR_MULTIPLIER!r}",
            parameters=widths,
        ),
        timing=VoltageScaledTimingModel("multiplier_delay", delay_ref),
    )


BOOTH_MULTIPLIER_COEFFICIENTS = CapacitiveCoefficients(
    "booth_multiplier",
    # radix-4 Booth recoding halves the partial-product rows: less array
    # capacitance per bit pair, plus a recoder tax per operand bit
    {"uncorrelated": 151e-15, "correlated": 102e-15, "sign_magnitude": 118e-15},
)

BOOTH_RECODER_C_PER_BIT = 34e-15


def booth_multiplier(
    bitwidth_a: int = 16,
    bitwidth_b: Optional[int] = None,
    correlation: str = "uncorrelated",
    name: str = "booth_multiplier",
) -> TemplatePowerModel:
    """Radix-4 Booth-recoded multiplier.

    Same EQ 20 bilinear shape as the array multiplier with a smaller
    array coefficient (half the partial products), plus a linear
    recoding term on operand B.  For equal operands it beats the plain
    array above ~6 bits — the kind of alternative the exploration
    spreadsheet exists to compare.
    """
    coefficient = BOOTH_MULTIPLIER_COEFFICIENTS.get(correlation)
    if bitwidth_b is None:
        bitwidth_b = bitwidth_a
    return TemplatePowerModel(
        name=name,
        capacitive=[
            CapacitiveTerm(
                name="array",
                capacitance=compile_expression(
                    f"bitwidthA * bitwidthB * {coefficient!r}"
                ),
                doc="Booth-reduced partial-product array",
            ),
            CapacitiveTerm(
                name="recoders",
                capacitance=compile_expression(
                    f"bitwidthB * {BOOTH_RECODER_C_PER_BIT!r}"
                ),
                doc="radix-4 recoding of operand B",
            ),
        ],
        parameters=(
            Parameter("bitwidthA", bitwidth_a, "bits", "operand A width", 1, integer=True),
            Parameter("bitwidthB", bitwidth_b, "bits", "operand B width", 1, integer=True),
        ),
        doc=(
            f"radix-4 Booth multiplier, {correlation}, "
            f"{coefficient * 1e15:.0f} fF per bit pair + recoders"
        ),
    )
