"""Short-circuit (direct-path) dissipation, Veendrick's model.

"If short-circuit currents are non-negligible, charge dissipated due to
direct-path power consumption needs to be characterized as well.  The
direct path charge from VDD can be modeled as an effective capacitance
and voltage swing and fits into (EQ 1)."

Veendrick (JSSC 1984): for a static CMOS inverter with input rise/fall
time tau, no load, and matched devices::

    P_sc = (beta / 12) * (VDD - 2 * V_T)^3 * tau * f

Below ``VDD = 2 V_T`` there is no interval where both devices conduct
and short-circuit power vanishes — one of the classic arguments for
low-voltage design.

This module evaluates the closed form and performs the paper's mapping
onto the EQ 1 template: an *effective capacitance* ``C_eff`` such that
``C_eff * VDD^2 * f`` equals the short-circuit power at the
characterization point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from ..core.expressions import compile_expression
from ..core.model import CapacitiveTerm, PowerModel, _get
from ..core.parameters import Parameter
from ..errors import ModelError


def veendrick_power(
    vdd: float,
    v_threshold: float,
    beta: float,
    tau: float,
    frequency: float,
    activity: float = 1.0,
) -> float:
    """Veendrick short-circuit power of one switching node, watts.

    ``beta`` is the device transconductance factor (A/V^2), ``tau`` the
    input transition time (s).  Returns 0 when VDD <= 2 V_T.
    """
    if vdd <= 0:
        raise ModelError(f"VDD {vdd} must be positive")
    if v_threshold <= 0:
        raise ModelError(f"V_T {v_threshold} must be positive")
    if beta <= 0 or tau < 0:
        raise ModelError("beta must be positive and tau non-negative")
    if frequency < 0 or not 0.0 <= activity <= 1.0:
        raise ModelError("frequency must be >= 0 and activity in [0, 1]")
    headroom = vdd - 2.0 * v_threshold
    if headroom <= 0:
        return 0.0
    return activity * (beta / 12.0) * headroom**3 * tau * frequency


def effective_capacitance(
    vdd: float,
    v_threshold: float,
    beta: float,
    tau: float,
) -> float:
    """Map short-circuit charge onto EQ 1: C_eff = P_sc / (VDD^2 * f).

    The returned capacitance reproduces the short-circuit power *at this
    VDD*; re-extract when the supply moves (the cubic law means a single
    C_eff is only locally valid — exactly why the paper stores swing and
    charge rather than a quadratic-only coefficient).
    """
    power_per_hz = veendrick_power(vdd, v_threshold, beta, tau, frequency=1.0)
    return power_per_hz / (vdd * vdd)


class ShortCircuitModel(PowerModel):
    """Per-gate short-circuit power for a block of ``gates`` nodes.

    Evaluates the cubic law directly (not a frozen C_eff), so VDD sweeps
    show the correct vanishing below 2 V_T.
    """

    def __init__(
        self,
        name: str = "short_circuit",
        v_threshold: float = 0.7,
        beta: float = 1.2e-4,
        tau: float = 2e-9,
        doc: str = "",
    ):
        if v_threshold <= 0 or beta <= 0 or tau < 0:
            raise ModelError(f"{name}: bad device constants")
        self.name = name
        self.v_threshold = v_threshold
        self.beta = beta
        self.tau = tau
        self.doc = doc or "Veendrick direct-path dissipation"
        self.parameters = (
            Parameter("gates", 100, "", "switching nodes", 1, integer=True),
            Parameter("activity", 0.25, "", "node toggle probability", 0.0, 1.0),
        )

    def power(self, env: Mapping[str, float]) -> float:
        vdd = _get(env, "VDD")
        f = _get(env, "f")
        gates = _get(env, "gates", 100)
        activity = _get(env, "activity", 0.25)
        per_gate = veendrick_power(
            vdd, self.v_threshold, self.beta, self.tau, f, activity
        )
        return gates * per_gate

    def breakdown(self, env: Mapping[str, float]) -> Dict[str, float]:
        return {"direct_path": self.power(env)}

    def capacitive_term(self, vdd: float, activity: float = 0.25) -> CapacitiveTerm:
        """The EQ 1 mapping: a CapacitiveTerm valid near ``vdd``.

        Lets short-circuit charge ride along inside a
        :class:`~repro.core.model.TemplatePowerModel` — the paper's
        recommended characterization route.
        """
        c_eff = effective_capacitance(vdd, self.v_threshold, self.beta, self.tau)
        return CapacitiveTerm(
            name=f"{self.name}_ceff",
            capacitance=compile_expression(f"gates * {c_eff!r}"),
            activity=compile_expression(repr(float(activity))),
            doc=f"short-circuit charge as C_eff, extracted at {vdd} V",
        )
