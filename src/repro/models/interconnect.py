"""Interconnect estimation from Rent's rule (Donath / Feuer).

"Unlike the activity of computational blocks, the amount of interconnect
activity is not inherent to an algorithm. ... Donath and Feuer propose
methods of estimating total interconnect area from the amount of active
area using Rent's rule, which relates block count in a region to the
number of external connections to the region.  Once the physical
interconnect area is determined, capacitance on the line can be
parameterized by feature size and capacitance per unit area."

Implemented here:

* Rent's rule ``T = t * B^p`` (terminals of a B-block region);
* Donath's hierarchical average-wire-length estimate
  ``L_avg ~ gate_pitch * f(B, p)`` with the classic closed form;
* total wiring length/area for a design of ``B`` blocks;
* :class:`InterconnectModel` — a PowerModel that converts wiring
  capacitance and a toggling statistic into EQ 1 terms.  It consumes
  ``active_area`` through the design layer's *area feeds*, the paper's
  "power dissipation of interconnect is a function of the active area of
  the design (and thus of its composing modules)".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..core.model import PowerModel, _get
from ..core.parameters import Parameter
from ..errors import ModelError


@dataclass(frozen=True)
class Technology:
    """Process parameters for wiring estimates.

    ``feature_size`` in meters; ``c_per_length`` in F/m (a 1.2 um-class
    metal line over field oxide runs ~0.2 fF/um); ``gate_pitch`` is the
    average center-to-center spacing of placed gates.
    """

    name: str = "ucb1.2um"
    feature_size: float = 1.2e-6
    c_per_length: float = 0.2e-9       # 0.2 fF/um
    gate_pitch: float = 30e-6
    wiring_layers: int = 2

    def scaled(self, feature_size: float) -> "Technology":
        """First-order constant-field scaling to a new feature size."""
        if feature_size <= 0:
            raise ModelError("feature_size must be positive")
        ratio = feature_size / self.feature_size
        return Technology(
            name=f"{self.name}_scaled_{feature_size * 1e6:g}um",
            feature_size=feature_size,
            c_per_length=self.c_per_length,   # per-length C roughly constant
            gate_pitch=self.gate_pitch * ratio,
            wiring_layers=self.wiring_layers,
        )


def rent_terminals(blocks: float, rent_exponent: float = 0.6, t0: float = 3.0) -> float:
    """Rent's rule: external terminals of a region of ``blocks`` blocks."""
    if blocks < 1:
        raise ModelError("block count must be >= 1")
    if not 0.0 < rent_exponent < 1.0:
        raise ModelError(f"Rent exponent {rent_exponent} outside (0, 1)")
    return t0 * blocks**rent_exponent


def donath_average_length(blocks: float, rent_exponent: float = 0.6) -> float:
    """Donath's average wire length, in units of gate pitch.

    The classic closed form (Donath 1979) for a square array of B
    blocks with Rent exponent p::

        L_avg = (2/9) * (7 * (B^(p-0.5) - 1) / (4^(p-0.5) - 1)
                         - (1 - B^(p-1.5)) / (1 - 4^(p-1.5)))
                      * (1 - 4^(p-1)) / (1 - B^(p-1))

    Valid for p != 0.5; we nudge p slightly when it lands exactly on the
    removable singularity.
    """
    if blocks < 4:
        return 1.0
    p = rent_exponent
    if abs(p - 0.5) < 1e-9:
        p += 1e-6
    b = float(blocks)
    term1 = 7.0 * (b ** (p - 0.5) - 1.0) / (4.0 ** (p - 0.5) - 1.0)
    term2 = (1.0 - b ** (p - 1.5)) / (1.0 - 4.0 ** (p - 1.5))
    norm = (1.0 - 4.0 ** (p - 1.0)) / (1.0 - b ** (p - 1.0))
    length = (2.0 / 9.0) * (term1 - term2) * norm
    return max(1.0, length)


def total_wire_length(
    blocks: int,
    rent_exponent: float = 0.6,
    fanout: float = 3.0,
    technology: Technology = Technology(),
) -> float:
    """Total routed wire length (meters) for a B-block region.

    Wires ~= blocks * fanout / 2 (two-point nets), each of Donath's
    average length in gate pitches.
    """
    if blocks < 1:
        raise ModelError("block count must be >= 1")
    wires = blocks * fanout / 2.0
    avg = donath_average_length(blocks, rent_exponent) * technology.gate_pitch
    return wires * avg


def wiring_capacitance(
    active_area: float,
    rent_exponent: float = 0.6,
    fanout: float = 3.0,
    technology: Technology = Technology(),
) -> float:
    """Total interconnect capacitance (farads) from active area (m^2).

    Block count is inferred from the active area and the technology's
    gate pitch — "area estimates of the modules are easily provided".
    """
    if active_area < 0:
        raise ModelError("active area cannot be negative")
    if active_area == 0:
        return 0.0
    blocks = max(1, int(active_area / technology.gate_pitch**2))
    length = total_wire_length(blocks, rent_exponent, fanout, technology)
    return length * technology.c_per_length


class InterconnectModel(PowerModel):
    """Interconnect power from active area via Rent's rule.

    The environment must provide ``active_area`` (m^2) — wired up by
    declaring ``area_feeds`` on the design row — plus the usual ``VDD``
    and ``f``.  ``activity`` is the average net toggling probability.

    Back-annotation: once layout exists, call :meth:`back_annotate` with
    the extracted capacitance; subsequent evaluations use the real value
    ("as the design process is iterated, these values should be
    back-annotated to the design to give more accurate results").
    """

    def __init__(
        self,
        name: str = "interconnect",
        rent_exponent: float = 0.6,
        fanout: float = 3.0,
        technology: Technology = Technology(),
        doc: str = "",
    ):
        self.name = name
        self.rent_exponent = rent_exponent
        self.fanout = fanout
        self.technology = technology
        self.doc = doc or "Rent's-rule interconnect estimate (Donath/Feuer)"
        self._annotated_capacitance: Optional[float] = None
        self.parameters = (
            Parameter("activity", 0.25, "", "average net toggle probability", 0.0, 1.0),
        )

    def capacitance(self, env: Mapping[str, float]) -> float:
        if self._annotated_capacitance is not None:
            return self._annotated_capacitance
        active_area = _get(env, "active_area")
        return wiring_capacitance(
            active_area, self.rent_exponent, self.fanout, self.technology
        )

    def power(self, env: Mapping[str, float]) -> float:
        vdd = _get(env, "VDD")
        f = _get(env, "f")
        activity = _get(env, "activity", 0.25)
        return activity * self.capacitance(env) * vdd * vdd * f

    def breakdown(self, env: Mapping[str, float]) -> Dict[str, float]:
        label = "annotated" if self._annotated_capacitance is not None else "estimated"
        return {f"wiring_{label}": self.power(env)}

    def back_annotate(self, capacitance: float) -> None:
        """Replace the Rent estimate with extracted wiring capacitance."""
        if capacitance < 0:
            raise ModelError("annotated capacitance cannot be negative")
        self._annotated_capacitance = capacitance

    def clear_annotation(self) -> None:
        self._annotated_capacitance = None

    def __repr__(self) -> str:
        return (
            f"InterconnectModel({self.name!r}, p={self.rent_exponent}, "
            f"tech={self.technology.name!r})"
        )
