"""Storage power models (paper EQs 7 and 8).

Small memories (pipeline registers, register files) reuse the
computational-element strategy: a linear coefficient per bit.  Large
memories have intricate internal structure, so the paper gives the SRAM
of the UC Berkeley library a structured model::

    C_T = C_0 + C_1 * words + C_1b * bits + C_2 * words * bits    (EQ 7)

(decoder scales with word count, sense/IO with word width, and the cell
array with the product).

Memories with *reduced bit-line swing* are not quadratic in VDD; EQ 8
splits the capacitance::

    P = alpha * ( C_fullswing * VDD^2 + C_partialswing * V_swing * VDD ) * f

which maps straight onto two :class:`~repro.core.model.CapacitiveTerm`
entries of the EQ 1 template — one with the default rail-to-rail swing,
one with an explicit ``V_swing``.  "It is important to characterize
[memories] at more than one voltage level to extract C_partialswing and
V_swing" — :mod:`repro.library.characterize` implements that extraction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from ..core.expressions import compile_expression
from ..core.model import (
    CapacitiveTerm,
    ExpressionAreaModel,
    ModelSet,
    StaticTerm,
    TemplatePowerModel,
    VoltageScaledTimingModel,
)
from ..core.parameters import Parameter
from ..errors import ModelError


@dataclass(frozen=True)
class SRAMCoefficients:
    """EQ 7 coefficient set, all in farads.

    ``c0`` — fixed overhead (clocking, control);
    ``c_words`` — per-word (row decoder, word-line segments);
    ``c_bits`` — per-bit-of-width (sense amps, IO drivers, column mux);
    ``c_cell`` — per words*bits (bit-line loading by the cell array).
    """

    c0: float = 5.5e-12
    c_words: float = 30e-15
    c_bits: float = 800e-15
    c_cell: float = 1.45e-15

    def total(self, words: float, bits: float) -> float:
        return (
            self.c0
            + self.c_words * words
            + self.c_bits * bits
            + self.c_cell * words * bits
        )


#: Our re-characterization of the UCB low-power SRAM.  The coefficient
#: *form* comes from fitting gate-level sweeps (library/characterize.py);
#: the absolute scale is anchored so the paper's published luminance-chip
#: numbers reproduce (impl 2 at ~150 uW, 1.5 V, 2 MHz pixel rate), the
#: one calibration the paper gives us for its 1.2 um library.
DEFAULT_SRAM = SRAMCoefficients()


def sram(
    words: int = 256,
    bits: int = 8,
    coefficients: SRAMCoefficients = DEFAULT_SRAM,
    name: str = "sram",
) -> TemplatePowerModel:
    """EQ 7 full-swing SRAM model.

    Per-access switched capacitance; multiply by access rate ``f`` for
    power, which the template does.
    """
    if words < 1 or bits < 1:
        raise ModelError(f"{name}: words and bits must be >= 1")
    c = coefficients
    return TemplatePowerModel(
        name=name,
        capacitive=[
            CapacitiveTerm(
                "overhead",
                compile_expression(repr(c.c0)),
                doc="clock + control overhead (C_0)",
            ),
            CapacitiveTerm(
                "decoder",
                compile_expression(f"words * {c.c_words!r}"),
                doc="row decode, C_1 * words",
            ),
            CapacitiveTerm(
                "sense_io",
                compile_expression(f"bits * {c.c_bits!r}"),
                doc="sense amps + IO, C_1' * bits",
            ),
            CapacitiveTerm(
                "cell_array",
                compile_expression(f"words * bits * {c.c_cell!r}"),
                doc="bit-line loading, C_2 * words * bits",
            ),
        ],
        parameters=(
            Parameter("words", words, "", "memory depth", 1, integer=True),
            Parameter("bits", bits, "bits", "word width", 1, integer=True),
        ),
        doc="EQ 7 SRAM: C_T = C0 + C1*words + C1'*bits + C2*words*bits",
    )


def reduced_swing_sram(
    words: int = 256,
    bits: int = 8,
    v_swing: float = 0.3,
    coefficients: SRAMCoefficients = DEFAULT_SRAM,
    fullswing_fraction: float = 0.55,
    name: str = "sram_lowswing",
) -> TemplatePowerModel:
    """EQ 8 reduced-bit-line-swing SRAM.

    The array (bit-line) capacitance swings only ``v_swing``; decoder,
    sense and control remain rail-to-rail.  ``fullswing_fraction`` is
    the share of the *per-access* capacitance that still swings fully —
    extracted, like ``v_swing``, from multi-voltage characterization.
    """
    if v_swing <= 0:
        raise ModelError(f"{name}: v_swing must be positive")
    if not 0.0 <= fullswing_fraction <= 1.0:
        raise ModelError(f"{name}: fullswing_fraction outside [0, 1]")
    c = coefficients
    return TemplatePowerModel(
        name=name,
        capacitive=[
            CapacitiveTerm(
                "fullswing",
                compile_expression(
                    f"({c.c0!r} + words * {c.c_words!r} + bits * {c.c_bits!r})"
                    f" * {fullswing_fraction!r}"
                ),
                doc="rail-to-rail periphery (C_fullswing)",
            ),
            CapacitiveTerm(
                "bitlines",
                compile_expression(
                    f"words * bits * {c.c_cell!r}"
                    f" + (1 - {fullswing_fraction!r})"
                    f" * ({c.c0!r} + words * {c.c_words!r} + bits * {c.c_bits!r})"
                ),
                v_swing=compile_expression("V_swing"),
                doc="reduced-swing bit lines (C_partialswing * V_swing * VDD)",
            ),
        ],
        parameters=(
            Parameter("words", words, "", "memory depth", 1, integer=True),
            Parameter("bits", bits, "bits", "word width", 1, integer=True),
            Parameter("V_swing", v_swing, "V", "bit-line swing", 0.01),
        ),
        doc="EQ 8 reduced-swing SRAM",
    )


REGISTER_C_PER_BIT = 24e-15
REGISTER_CLOCK_C_PER_BIT = 11e-15


def register(
    bits: int = 8,
    name: str = "register",
) -> TemplatePowerModel:
    """Pipeline register: linear data capacitance + clock load.

    "Note that the clock capacitance is included in the model of each
    block" — the clock term switches every cycle regardless of data
    activity, which is why it carries its own unity activity while the
    data term follows the (settable) data activity.
    """
    return TemplatePowerModel(
        name=name,
        capacitive=[
            CapacitiveTerm(
                "data",
                compile_expression(f"bits * {REGISTER_C_PER_BIT!r}"),
                activity=compile_expression("data_activity"),
                doc="master/slave data nodes",
            ),
            CapacitiveTerm(
                "clock",
                compile_expression(f"bits * {REGISTER_CLOCK_C_PER_BIT!r}"),
                doc="clock distribution within the register",
            ),
        ],
        parameters=(
            Parameter("bits", bits, "bits", "register width", 1, integer=True),
            Parameter("data_activity", 1.0, "", "data transition probability", 0.0, 1.0),
        ),
        doc="edge-triggered register with explicit clock capacitance",
    )


def register_file(
    words: int = 16,
    bits: int = 16,
    read_ports: int = 2,
    write_ports: int = 1,
    name: str = "register_file",
) -> TemplatePowerModel:
    """Small multi-ported register file.

    Small memories "can use the same modeling strategy as that used for
    computational elements": linear in bits per port access, plus a
    decode term logarithmic in depth.
    """
    if read_ports < 0 or write_ports < 0 or read_ports + write_ports == 0:
        raise ModelError(f"{name}: needs at least one port")
    c_read = 19e-15
    c_write = 27e-15
    c_decode = 8e-15
    ports = read_ports + write_ports
    return TemplatePowerModel(
        name=name,
        capacitive=[
            CapacitiveTerm(
                "read_ports",
                compile_expression(f"bits * {read_ports} * {c_read!r}"),
                doc="read bit lines + output drivers",
            ),
            CapacitiveTerm(
                "write_ports",
                compile_expression(f"bits * {write_ports} * {c_write!r}"),
                doc="write bit lines + cell flips",
            ),
            CapacitiveTerm(
                "decoders",
                compile_expression(f"{ports} * log2(words) * {c_decode!r}"),
                doc="per-port address decode",
            ),
        ],
        parameters=(
            Parameter("words", words, "", "registers", 2, integer=True),
            Parameter("bits", bits, "bits", "register width", 1, integer=True),
        ),
        doc=f"register file, {read_ports}R{write_ports}W",
    )


def dram(
    words: int = 4096,
    bits: int = 16,
    refresh_hz: float = 64.0,
    name: str = "dram",
) -> TemplatePowerModel:
    """Embedded-DRAM variant: EQ 7 shape plus a refresh term.

    Refresh sweeps the whole array ``refresh_hz`` times a second no
    matter the access rate — modeled as a capacitive term with its own
    frequency, exactly what the template's per-term ``frequency``
    override exists for.
    """
    c = SRAMCoefficients(c0=1.4e-12, c_words=4.5e-15, c_bits=210e-15, c_cell=0.11e-15)
    access = sram(words, bits, coefficients=c, name=name)
    refresh_term = CapacitiveTerm(
        "refresh",
        compile_expression(f"words * bits * {c.c_cell!r}"),
        frequency=compile_expression(f"{float(refresh_hz)!r} * words"),
        doc="refresh: every row rewritten refresh_hz times per second",
    )
    return TemplatePowerModel(
        name=name,
        capacitive=tuple(access.capacitive) + (refresh_term,),
        parameters=access.parameters,
        doc="DRAM: EQ 7 access + refresh background term",
    )


# ---------------------------------------------------------------------------
# Area / timing companions
# ---------------------------------------------------------------------------

SRAM_AREA_PER_CELL = 0.9e-11   # m^2 per bit cell, 1.2 um-class
SRAM_AREA_OVERHEAD = 4.5e-8    # decoder/sense periphery


def sram_model_set(
    words: int = 256,
    bits: int = 8,
    coefficients: SRAMCoefficients = DEFAULT_SRAM,
    name: str = "sram",
) -> ModelSet:
    """SRAM with power (EQ 7), area and access-time models."""
    power = sram(words, bits, coefficients, name)
    depth_factor = max(1.0, math.log2(max(2, words)) / 8.0)
    return ModelSet(
        power=power,
        area=ExpressionAreaModel(
            name + "_area",
            f"words * bits * {SRAM_AREA_PER_CELL!r} + {SRAM_AREA_OVERHEAD!r}",
            parameters=power.parameters,
        ),
        timing=VoltageScaledTimingModel(name + "_access", 9e-9 * depth_factor),
    )


def rom_memory(
    words: int = 4096,
    bits: int = 8,
    p_low: float = 0.5,
    name: str = "rom",
) -> TemplatePowerModel:
    """Mask-programmed ROM as a *memory* (EQ 10's structure, memory-sized).

    The natural implementation for fixed contents like the VQ codebook
    LUT: no write circuitry, denser cells, precharged bit lines that
    only burn charge on outputs that evaluated low (probability
    ``P_O``).  Address decode carries the ``log2(words) * words``
    word-line cost; the array term is cheaper than SRAM's per cell.
    """
    if words < 2 or bits < 1:
        raise ModelError(f"{name}: need words >= 2 and bits >= 1")
    if not 0.0 <= p_low <= 1.0:
        raise ModelError(f"{name}: P_O outside [0, 1]")
    c0 = 2.4e-12       # precharge drivers + clocking
    c_decode = 3.2e-15 # per word-line crossing, x log2(words) literals
    c_cell = 0.62e-15  # bit-line charge per (discharging) cell column
    c_sense = 95e-15   # sense amp per low output bit
    c_out = 60e-15     # output drive per bit
    return TemplatePowerModel(
        name=name,
        capacitive=[
            CapacitiveTerm(
                "precharge",
                compile_expression(repr(c0)),
                doc="clock + precharge drivers",
            ),
            CapacitiveTerm(
                "decode",
                compile_expression(f"log2(words) * words * {c_decode!r}"),
                doc="address decode (EQ 10's C_1 N_I 2^N_I with N_I = log2 words)",
            ),
            CapacitiveTerm(
                "bitlines",
                compile_expression(f"P_O * bits * words * {c_cell!r}"),
                doc="precharged bit lines, only low outputs recharge",
            ),
            CapacitiveTerm(
                "sense_out",
                compile_expression(f"P_O * bits * {c_sense!r} + bits * {c_out!r}"),
                doc="sense amplification + output drive",
            ),
        ],
        parameters=(
            Parameter("words", words, "", "ROM depth", 2, integer=True),
            Parameter("bits", bits, "bits", "word width", 1, integer=True),
            Parameter("P_O", p_low, "", "avg fraction of low outputs", 0.0, 1.0),
        ),
        doc="mask ROM memory (EQ 10 structure); fixed contents only",
    )
