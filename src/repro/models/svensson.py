"""Svensson analytical switching-capacitance models (paper EQs 4-6).

Where Landman's approach treats a block as a black box, Svensson "models
switching capacitance analytically without requiring extensive
simulations": each *stage* (a single PMOS pull-up / NMOS pull-down
configuration) contributes

    C_S = alpha_in * C_in + alpha_out * C_out            (EQ 4)

the per-bit-slice capacitance is the sum over stages

    C_ST = sum_j( alpha_in_j * C_in_j + alpha_out_j * C_out_j )   (EQ 5)

and the whole block, assuming identical slices,

    C_T = bitwidth * C_ST                                (EQ 6)

This module provides:

* :class:`Stage` — physical input/output capacitance plus transition
  probabilities;
* activity propagation — given the input transition probability, derive
  each stage's alpha through standard static-CMOS gates (the analytical
  step Svensson's method requires);
* :class:`SvenssonModel` — a :class:`~repro.core.model.PowerModel` built
  from a list of stages and a bit-width parameter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.model import PowerModel, _get
from ..core.parameters import Parameter
from ..errors import ModelError


@dataclass(frozen=True)
class Stage:
    """One pull-up/pull-down stage of static CMOS logic.

    Capacitances are physical (farads); alphas are transition
    probabilities per clock cycle (0..1).
    """

    name: str
    c_in: float
    c_out: float
    alpha_in: float = 0.5
    alpha_out: float = 0.5

    def __post_init__(self) -> None:
        if self.c_in < 0 or self.c_out < 0:
            raise ModelError(f"stage {self.name!r}: negative capacitance")
        for alpha in (self.alpha_in, self.alpha_out):
            if not 0.0 <= alpha <= 1.0:
                raise ModelError(
                    f"stage {self.name!r}: activity {alpha} outside [0, 1]"
                )

    def capacitance(self) -> float:
        """EQ 4: effective switched capacitance of this stage."""
        return self.alpha_in * self.c_in + self.alpha_out * self.c_out


# ---------------------------------------------------------------------------
# Activity propagation through static gates
# ---------------------------------------------------------------------------
#
# For a gate whose inputs are independent with signal probability p
# (probability of being 1), the output signal probability is a function
# of the gate type; the *transition* probability of a node with signal
# probability q under the temporal-independence assumption is
# alpha = 2 q (1 - q).


def signal_to_transition(probability: float) -> float:
    """Transition probability of a node with signal probability ``p``."""
    if not 0.0 <= probability <= 1.0:
        raise ModelError(f"signal probability {probability} outside [0, 1]")
    return 2.0 * probability * (1.0 - probability)


def gate_output_probability(gate: str, input_probabilities: Sequence[float]) -> float:
    """Signal probability at a static gate output, independent inputs."""
    probabilities = list(input_probabilities)
    for p in probabilities:
        if not 0.0 <= p <= 1.0:
            raise ModelError(f"signal probability {p} outside [0, 1]")
    if gate == "inv":
        if len(probabilities) != 1:
            raise ModelError("inverter takes exactly one input")
        return 1.0 - probabilities[0]
    if gate == "nand":
        product = math.prod(probabilities)
        return 1.0 - product
    if gate == "and":
        return math.prod(probabilities)
    if gate == "nor":
        return math.prod(1.0 - p for p in probabilities)
    if gate == "or":
        return 1.0 - math.prod(1.0 - p for p in probabilities)
    if gate == "xor":
        result = 0.0
        for p in probabilities:
            result = result * (1.0 - p) + (1.0 - result) * p
        return result
    if gate == "xnor":
        return 1.0 - gate_output_probability("xor", probabilities)
    raise ModelError(f"unknown gate type {gate!r}")


def propagate_chain(
    gates: Sequence[Tuple[str, int]],
    input_probability: float = 0.5,
) -> List[float]:
    """Signal probabilities along a chain of gates.

    ``gates`` is ``[(gate_type, fanin), ...]``; each gate's inputs are
    all assumed to carry the previous level's probability.  Returns the
    probability *after* each gate (length == len(gates)).
    """
    probabilities: List[float] = []
    current = input_probability
    for gate, fanin in gates:
        if fanin < 1:
            raise ModelError(f"gate {gate!r}: fanin must be >= 1")
        current = gate_output_probability(gate, [current] * fanin)
        probabilities.append(current)
    return probabilities


def stages_from_chain(
    gates: Sequence[Tuple[str, int]],
    c_in: float,
    c_out: float,
    input_probability: float = 0.5,
) -> List[Stage]:
    """Build Svensson stages for a gate chain with uniform capacitances.

    Each gate becomes one stage; the input activity of stage *j* is the
    transition probability of level *j-1*'s output, the output activity
    that of level *j*'s output — the "switching activity at the input
    and output of each stage is determined as a function of the input".
    """
    level_probabilities = propagate_chain(gates, input_probability)
    stages: List[Stage] = []
    previous = input_probability
    for index, ((gate, fanin), probability) in enumerate(
        zip(gates, level_probabilities)
    ):
        stages.append(
            Stage(
                name=f"{gate}{index}",
                c_in=c_in * fanin,
                c_out=c_out,
                alpha_in=signal_to_transition(previous),
                alpha_out=signal_to_transition(probability),
            )
        )
        previous = probability
    return stages


class SvenssonModel(PowerModel):
    """EQ 4-6 as a PowerModel.

    Parameters: ``bitwidth`` (slices), plus the standard ``VDD`` / ``f``.
    An optional ``activity_scale`` parameter scales every stage alpha —
    the knob that turns a random-data characterization into a
    correlated-data estimate without rebuilding the stage list.
    """

    def __init__(
        self,
        name: str,
        stages: Sequence[Stage],
        default_bitwidth: int = 16,
        doc: str = "",
    ):
        if not stages:
            raise ModelError(f"model {name!r}: no stages")
        self.name = name
        self.stages = tuple(stages)
        self.doc = doc or "Svensson analytical stage model (EQ 4-6)"
        self.parameters = (
            Parameter("bitwidth", default_bitwidth, "bits", "bit slices", 1, integer=True),
            Parameter("activity_scale", 1.0, "", "global activity multiplier", 0.0),
        )

    def slice_capacitance(self, activity_scale: float = 1.0) -> float:
        """EQ 5: C_ST, the capacitance switched per bit slice."""
        return activity_scale * sum(stage.capacitance() for stage in self.stages)

    def total_capacitance(self, env: Mapping[str, float]) -> float:
        """EQ 6: C_T = bitwidth * C_ST."""
        bitwidth = _get(env, "bitwidth")
        scale = _get(env, "activity_scale", 1.0)
        if bitwidth < 1:
            raise ModelError(f"model {self.name!r}: bitwidth must be >= 1")
        return bitwidth * self.slice_capacitance(scale)

    def energy_per_access(self, env: Mapping[str, float]) -> float:
        vdd = _get(env, "VDD")
        return self.total_capacitance(env) * vdd * vdd

    def power(self, env: Mapping[str, float]) -> float:
        return self.energy_per_access(env) * _get(env, "f")

    def breakdown(self, env: Mapping[str, float]) -> Dict[str, float]:
        vdd = _get(env, "VDD")
        f = _get(env, "f")
        bitwidth = _get(env, "bitwidth")
        scale = _get(env, "activity_scale", 1.0)
        return {
            stage.name: bitwidth * scale * stage.capacitance() * vdd * vdd * f
            for stage in self.stages
        }

    def with_input_probability(self, probability: float) -> "SvenssonModel":
        """Re-derive stage activities for a different input statistic.

        Keeps physical capacitances; rescales every alpha by the ratio of
        the new input transition probability to 0.5-signal activity.
        """
        reference = signal_to_transition(0.5)
        target = signal_to_transition(probability)
        ratio = target / reference if reference > 0 else 0.0
        stages = [
            replace(
                stage,
                alpha_in=min(1.0, stage.alpha_in * ratio),
                alpha_out=min(1.0, stage.alpha_out * ratio),
            )
            for stage in self.stages
        ]
        return SvenssonModel(
            self.name, stages, doc=self.doc + f" (p_in={probability})"
        )

    def __repr__(self) -> str:
        return f"SvenssonModel({self.name!r}, {len(self.stages)} stages)"


def svensson_ripple_adder(
    bitwidth: int = 16,
    c_in: float = 12e-15,
    c_out: float = 18e-15,
    input_probability: float = 0.5,
    name: str = "svensson_ripple_adder",
) -> SvenssonModel:
    """Analytical ripple-adder slice: XOR-XOR sum path + majority carry.

    A full-adder bit slice decomposed into the stages of its standard
    static-CMOS mirror implementation.
    """
    sum_stages = stages_from_chain(
        [("xor", 2), ("xor", 2)], c_in, c_out, input_probability
    )
    carry_stages = stages_from_chain(
        [("and", 2), ("or", 2)], c_in, c_out, input_probability
    )
    stages = [
        replace(stage, name=f"sum_{stage.name}") for stage in sum_stages
    ] + [replace(stage, name=f"carry_{stage.name}") for stage in carry_stages]
    return SvenssonModel(name, stages, default_bitwidth=bitwidth)
