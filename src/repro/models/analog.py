"""Analog power models (paper EQs 13-17).

"The power dissipation of most analog circuits is dominated by static
bias currents rather than the dynamic charging of capacitance"::

    P_ANALOG = V_supply * sum_i( I_bias_i )                (EQ 13)

For the bipolar emitter-coupled transconductance amplifier the paper
works through, the small-signal specs map back to bias current::

    G_m   = g_m = (q / kT) * I_bias                        (EQ 14)
    R_id  = 2 r_pi = (4 kT beta_0 / q) / I_bias            (EQ 15)
    R_o  ~= r_o / 2 = V_A / I_bias                         (EQ 16)
    P     = V_supply * I_bias = 2 V_supply (kT/q) G_m      (EQ 17)

so the pair "may be parameterized by G_m, R_id, and/or R_o, much like a
digital adder is parameterized by bit-width".  When several specs are
given, each implies a bias current and the circuit must satisfy the
*most demanding* one (largest current for G_m, but R_id and R_o demand
*small* currents — the model reports infeasibility when they conflict).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from ..core.model import PowerModel, StaticTerm, TemplatePowerModel, _get
from ..core.expressions import compile_expression
from ..core.parameters import Parameter
from ..errors import ModelError

#: Boltzmann constant (J/K) and elementary charge (C).
K_BOLTZMANN = 1.380649e-23
Q_ELECTRON = 1.602176634e-19


def thermal_voltage(temperature: float = 300.0) -> float:
    """kT/q in volts (about 25.9 mV at room temperature)."""
    if temperature <= 0:
        raise ModelError(f"temperature {temperature} K must be positive")
    return K_BOLTZMANN * temperature / Q_ELECTRON


def bias_current_model(
    name: str,
    currents: Mapping[str, float],
    supply: float = 3.0,
) -> TemplatePowerModel:
    """EQ 13: sum of named bias currents times the supply.

    Each branch becomes one :class:`~repro.core.model.StaticTerm`, so
    the breakdown lists per-branch dissipation.  ``VDD`` in the
    environment overrides the default supply.
    """
    if not currents:
        raise ModelError(f"{name}: no bias branches")
    terms = []
    for branch, current in currents.items():
        if current < 0:
            raise ModelError(f"{name}: negative bias current in {branch!r}")
        terms.append(
            StaticTerm(
                branch,
                compile_expression(repr(float(current))),
                doc=f"bias branch {branch}",
            )
        )
    return TemplatePowerModel(
        name=name,
        static=terms,
        parameters=(Parameter("VDD", supply, "V", "analog supply", 0.0),),
        doc="EQ 13 static bias-current model",
    )


@dataclass(frozen=True)
class BipolarPair:
    """Device constants of the emitter-coupled pair.

    ``beta0`` — small-signal current gain; ``v_early`` — Early voltage
    (V_A) setting the output resistance.
    """

    beta0: float = 100.0
    v_early: float = 50.0
    temperature: float = 300.0

    def __post_init__(self) -> None:
        if self.beta0 <= 0 or self.v_early <= 0 or self.temperature <= 0:
            raise ModelError("bipolar pair constants must be positive")

    # EQ 14-16, solved for I_bias -------------------------------------

    def bias_for_gm(self, g_m: float) -> float:
        """EQ 14: I_bias = (kT/q) * G_m."""
        if g_m <= 0:
            raise ModelError(f"G_m {g_m} must be positive")
        return thermal_voltage(self.temperature) * g_m

    def bias_for_rid(self, r_id: float) -> float:
        """EQ 15: I_bias = 4 kT beta0 / (q * R_id)."""
        if r_id <= 0:
            raise ModelError(f"R_id {r_id} must be positive")
        return 4.0 * thermal_voltage(self.temperature) * self.beta0 / r_id

    def bias_for_ro(self, r_o: float) -> float:
        """EQ 16: I_bias = V_A / R_o."""
        if r_o <= 0:
            raise ModelError(f"R_o {r_o} must be positive")
        return self.v_early / r_o

    # forward direction -------------------------------------------------

    def gm(self, i_bias: float) -> float:
        return i_bias / thermal_voltage(self.temperature)

    def rid(self, i_bias: float) -> float:
        return 4.0 * thermal_voltage(self.temperature) * self.beta0 / i_bias

    def ro(self, i_bias: float) -> float:
        return self.v_early / i_bias


class TransconductanceAmplifier(PowerModel):
    """EQ 17: the diff pair parameterized by its small-signal specs.

    Specs (any subset):

    * ``G_m``  — minimum transconductance (S); demands I >= (kT/q)*G_m;
    * ``R_id`` — minimum input impedance (Ohm); demands I <= 4kT*b0/(q*R_id);
    * ``R_o``  — minimum output impedance (Ohm); demands I <= V_A/R_o.

    The model picks the smallest feasible bias current and raises when
    the window is empty — the early-design feedback the spreadsheet is
    for.  Power is ``V_supply * I_bias`` (EQ 17).
    """

    def __init__(
        self,
        name: str = "gm_amplifier",
        pair: BipolarPair = BipolarPair(),
        doc: str = "",
    ):
        self.name = name
        self.pair = pair
        self.doc = doc or "EQ 14-17 bipolar transconductance amplifier"
        self.parameters = (
            Parameter("G_m", 1e-3, "S", "required transconductance", 0.0),
            Parameter("R_id", 0.0, "Ohm", "required input impedance (0 = don't care)", 0.0),
            Parameter("R_o", 0.0, "Ohm", "required output impedance (0 = don't care)", 0.0),
        )

    def bias_current(self, env: Mapping[str, float]) -> float:
        g_m = _get(env, "G_m", 0.0)
        r_id = _get(env, "R_id", 0.0)
        r_o = _get(env, "R_o", 0.0)
        lower = self.pair.bias_for_gm(g_m) if g_m > 0 else 0.0
        upper = math.inf
        limiting = None
        if r_id > 0:
            bound = self.pair.bias_for_rid(r_id)
            if bound < upper:
                upper, limiting = bound, "R_id"
        if r_o > 0:
            bound = self.pair.bias_for_ro(r_o)
            if bound < upper:
                upper, limiting = bound, "R_o"
        if lower == 0.0 and upper is math.inf:
            raise ModelError(
                f"amplifier {self.name!r}: specify at least one of G_m, R_id, R_o"
            )
        if lower > upper:
            raise ModelError(
                f"amplifier {self.name!r}: infeasible specs — G_m needs "
                f"I >= {lower:.3e} A but {limiting} allows at most "
                f"{upper:.3e} A"
            )
        # minimum power = smallest feasible current; with only upper
        # bounds the designer runs right at the impedance limit.
        return lower if lower > 0 else upper

    def power(self, env: Mapping[str, float]) -> float:
        supply = _get(env, "VDD")
        return supply * self.bias_current(env)

    def breakdown(self, env: Mapping[str, float]) -> Dict[str, float]:
        return {"tail_bias": self.power(env)}

    def achieved_specs(self, env: Mapping[str, float]) -> Dict[str, float]:
        """G_m / R_id / R_o actually delivered at the chosen bias."""
        bias = self.bias_current(env)
        return {
            "I_bias": bias,
            "G_m": self.pair.gm(bias),
            "R_id": self.pair.rid(bias),
            "R_o": self.pair.ro(bias),
        }


def amplifier_power_from_gm(
    g_m: float, supply: float, temperature: float = 300.0
) -> float:
    """EQ 17 closed form: P = 2 * V_supply * (kT/q) * G_m.

    (The paper's factor of two reflects the two branches of the pair
    each carrying I_bias/2 from a 2x tail; we keep its published form.)
    """
    if g_m <= 0 or supply <= 0:
        raise ModelError("G_m and supply must be positive")
    return 2.0 * supply * thermal_voltage(temperature) * g_m
