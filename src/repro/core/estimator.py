"""Hierarchical power/area/timing evaluation — the "Play" button.

"When the Play button is pressed power is calculated for the entire
design and the spreadsheet is updated. ... This script calculates the
power for each subcircuit hierarchically (through specified models or
tools) using the parameters that are passed from the top level."

:func:`evaluate_power` walks a :class:`~repro.core.design.Design`,
resolves inter-row feeds (DC-DC load power, interconnect active area),
recurses into sub-designs, and returns a :class:`PowerReport` tree that
the report/web layers render as Figure 2 / Figure 5 style spreadsheets.

Also here: the power-minimization analyses the paper motivates — "it is
important to identify both the major power consumers and the point of
diminishing returns" (:func:`top_consumers`, :func:`coverage`,
:func:`consumers_for_fraction`) and parameter sweeps
(:func:`sweep`).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import DesignError, ModelError
from ..obs import span
from .design import Design, Instance, MacroPowerModel, Row, SubDesign
from .parameters import ParameterScope, ParamValue


# ---------------------------------------------------------------------------
# Report structures
# ---------------------------------------------------------------------------


@dataclass
class PowerReport:
    """One node of the hierarchical power breakdown.

    ``power`` is in watts and, for inner nodes, equals the sum of the
    children (an invariant the property tests enforce).  ``details``
    carries the per-term split of a leaf's model (EQ 1 terms).
    ``parameters`` snapshots the row-local parameter values that were in
    effect — the spreadsheet's "Parameters" column.
    """

    name: str
    power: float
    kind: str = "instance"  # "instance" | "design"
    doc: str = ""
    quantity: int = 1
    source: str = "modeled"  # provenance: modeled/estimated/datasheet/measured
    parameters: Dict[str, float] = field(default_factory=dict)
    details: Dict[str, float] = field(default_factory=dict)
    children: List["PowerReport"] = field(default_factory=list)
    #: rows evaluated in this subtree (every descendant node: instances
    #: and sub-design rows alike) — recorded by the evaluator so
    #: coverage/top-consumer output can cite how much of the design its
    #: numbers rest on.  0 for a leaf.
    evaluated_rows: int = 0

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def copy(self) -> "PowerReport":
        """Deep, independent copy of this report subtree.

        The evaluation cache hands out copies so one memoized result can
        serve many requests without a caller's mutation reaching the
        cached original (or another caller's copy).
        """
        return PowerReport(
            name=self.name,
            power=self.power,
            kind=self.kind,
            doc=self.doc,
            quantity=self.quantity,
            source=self.source,
            parameters=dict(self.parameters),
            details=dict(self.details),
            children=[child.copy() for child in self.children],
            evaluated_rows=self.evaluated_rows,
        )

    @property
    def leaf_count(self) -> int:
        """How many leaves (modeled primitives) this subtree covers."""
        return sum(1 for _ in self.leaves())

    def child(self, name: str) -> "PowerReport":
        for node in self.children:
            if node.name == name:
                return node
        raise DesignError(f"report {self.name!r} has no child {name!r}")

    def __getitem__(self, name: str) -> "PowerReport":
        return self.child(name)

    def leaves(self) -> Iterator["PowerReport"]:
        """All leaf nodes, in display order."""
        if self.is_leaf:
            yield self
            return
        for node in self.children:
            yield from node.leaves()

    def flatten(self, prefix: str = "") -> List[Tuple[str, float]]:
        """(hierarchical-path, power) for every leaf."""
        path = f"{prefix}/{self.name}" if prefix else self.name
        if self.is_leaf:
            return [(path, self.power)]
        result: List[Tuple[str, float]] = []
        for node in self.children:
            result.extend(node.flatten(path))
        return result

    def fraction_of(self, total: Optional[float] = None) -> float:
        """This node's share of the (root) total."""
        if total is None or total <= 0:
            return 1.0 if self.power else 0.0
        return self.power / total


@dataclass
class AreaReport:
    """Hierarchical active-area breakdown (m^2).  ``modeled`` is False
    for rows whose library entry carries no area model (they count 0)."""

    name: str
    area: float
    modeled: bool = True
    children: List["AreaReport"] = field(default_factory=list)

    def copy(self) -> "AreaReport":
        return AreaReport(
            name=self.name,
            area=self.area,
            modeled=self.modeled,
            children=[child.copy() for child in self.children],
        )

    def leaves(self) -> Iterator["AreaReport"]:
        if not self.children:
            yield self
            return
        for node in self.children:
            yield from node.leaves()


@dataclass
class TimingReport:
    """Per-row critical-path delays; a design's delay is the max over
    modeled rows (rows compute in parallel at this abstraction)."""

    name: str
    delay: float
    modeled: bool = True
    children: List["TimingReport"] = field(default_factory=list)

    def copy(self) -> "TimingReport":
        return TimingReport(
            name=self.name,
            delay=self.delay,
            modeled=self.modeled,
            children=[child.copy() for child in self.children],
        )

    @property
    def max_frequency(self) -> float:
        if self.delay <= 0:
            raise ModelError(f"{self.name!r}: non-positive delay")
        return 1.0 / self.delay


# ---------------------------------------------------------------------------
# Environment plumbing
# ---------------------------------------------------------------------------


class _RowEnv(Mapping[str, float]):
    """Instance scope + inter-model extras, presented as one mapping."""

    def __init__(self, scope: ParameterScope, extras: Mapping[str, float]):
        self._scope = scope
        self._extras = dict(extras)

    def __getitem__(self, name: str) -> float:
        if name in self._extras:
            return self._extras[name]
        return self._scope[name]

    def __contains__(self, name: object) -> bool:
        return name in self._extras or name in self._scope

    def __iter__(self) -> Iterator[str]:
        yield from self._extras
        for name in self._scope:
            if name not in self._extras:
                yield name

    def __len__(self) -> int:
        return len(set(self._extras) | set(self._scope.names()))


@contextlib.contextmanager
def scope_overrides(scope: ParameterScope, overrides: Mapping[str, ParamValue]):
    """Temporarily assign parameters in ``scope``, restoring on exit.

    Used by sweeps and macro evaluation so one Design object can be
    re-evaluated under many what-if settings without mutation leaking.
    """
    saved: Dict[str, Tuple[bool, object]] = {}
    for name in overrides:
        had = name in scope.local_names()
        saved[name] = (had, scope.raw(name) if had else None)
    try:
        for name, value in overrides.items():
            scope.set(name, value)
        yield scope
    finally:
        for name, (had, old) in saved.items():
            if had:
                scope._values[name] = old  # restore exact stored object
            else:
                scope.unset(name)


# ---------------------------------------------------------------------------
# Power evaluation
# ---------------------------------------------------------------------------


def evaluate_power(
    design: Design,
    overrides: Optional[Mapping[str, ParamValue]] = None,
) -> PowerReport:
    """Hierarchically evaluate a design's power.

    ``overrides`` are applied to the design's global scope for the
    duration of the evaluation (the top-page parameter edits of
    Figure 5).

    When tracing is enabled (:mod:`repro.obs`), the whole evaluation
    yields a span tree mirroring the design hierarchy, with row and
    leaf counts recorded on each design node's span.
    """
    with span("evaluate_power", design=design.name) as sp:
        if overrides:
            with scope_overrides(design.scope, overrides):
                report = _evaluate_design(design)
        else:
            report = _evaluate_design(design)
        sp.set(
            rows=report.evaluated_rows,
            leaves=report.leaf_count,
            watts=report.power,
        )
        return report


def _evaluate_design(design: Design) -> PowerReport:
    with span("design", name=design.name) as sp:
        order = design.evaluation_order()
        computed: Dict[str, PowerReport] = {}
        for name in order:
            row = design.row(name)
            if isinstance(row, SubDesign):
                report = _evaluate_design(row.design)
                report.name = row.name
                report.doc = report.doc or row.doc
            else:
                report = _evaluate_instance(row, computed)
            computed[name] = report
        children = [computed[name] for name in design.row_names()]
        total = sum(node.power for node in children)
        rows = len(children) + sum(child.evaluated_rows for child in children)
        sp.set(rows=rows, watts=total)
        return PowerReport(
            name=design.name,
            power=total,
            kind="design",
            doc=design.doc,
            source="hierarchy",
            parameters={
                name: design.scope.resolve(name)
                for name in design.scope.local_names()
            },
            children=children,
            evaluated_rows=rows,
        )


def _feed_extras(
    row: Row, computed: Mapping[str, PowerReport], area: Optional[Mapping[str, float]] = None
) -> Dict[str, float]:
    extras: Dict[str, float] = {}
    if row.power_feeds:
        load = 0.0
        for feed in row.power_feeds:
            report = computed[feed]
            extras[f"P.{feed}"] = report.power
            load += report.power
        extras["P_load"] = load
    if row.area_feeds:
        total_area = 0.0
        for feed in row.area_feeds:
            feed_area = (area or {}).get(feed)
            if feed_area is None:
                feed_area = _row_area(row, feed, computed)
            extras[f"A.{feed}"] = feed_area
            total_area += feed_area
        extras["active_area"] = total_area
    return extras


def _row_area(consumer: Row, feed: str, computed: Mapping[str, PowerReport]) -> float:
    """Area of a feed row, needed by interconnect models during a power
    pass.  Resolved lazily from the feed row's own area model."""
    report = computed.get(feed)
    if report is None:
        raise DesignError(
            f"row {consumer.name!r} area-feeds on unevaluated row {feed!r}"
        )
    return report.parameters.get("_area", 0.0)


def _evaluate_instance(
    row: Instance, computed: Mapping[str, PowerReport]
) -> PowerReport:
    with span("row", name=row.name, model=row.models.name) as sp:
        report = _evaluate_instance_timed(row, computed)
        sp.set(watts=report.power)
        return report


def _evaluate_instance_timed(
    row: Instance, computed: Mapping[str, PowerReport]
) -> PowerReport:
    extras = _feed_extras(row, computed)
    env = _RowEnv(row.scope, extras)
    if row.measured_power is not None:
        # back-annotated rows use the measurement, not the model
        unit_power = row.measured_power
        details = {"measured": row.measured_power}
    else:
        try:
            unit_power = row.models.power.power(env)
            details = row.models.power.breakdown(env)
        except ModelError as exc:
            raise ModelError(f"row {row.name!r}: {exc}") from exc
    power = unit_power * row.quantity
    if row.quantity != 1:
        details = {key: value * row.quantity for key, value in details.items()}
    parameters = {
        name: row.scope.resolve(name) for name in row.scope.local_names()
    }
    if row.models.area is not None:
        try:
            parameters["_area"] = row.models.area.area(env) * row.quantity
        except ModelError:
            pass
    return PowerReport(
        name=row.name,
        power=power,
        kind="instance",
        doc=row.doc,
        quantity=row.quantity,
        source=row.source,
        parameters=parameters,
        details=details,
    )


# ---------------------------------------------------------------------------
# Area / timing evaluation
# ---------------------------------------------------------------------------


def evaluate_area(
    design: Design,
    overrides: Optional[Mapping[str, ParamValue]] = None,
) -> AreaReport:
    """Hierarchically sum active area over rows that carry area models."""
    with span("evaluate_area", design=design.name) as sp:
        if overrides:
            with scope_overrides(design.scope, overrides):
                report = _evaluate_area(design)
        else:
            report = _evaluate_area(design)
        sp.set(area_m2=report.area)
        return report


def _evaluate_area(design: Design) -> AreaReport:
    children: List[AreaReport] = []
    for row in design:
        if isinstance(row, SubDesign):
            children.append(_evaluate_area(row.design))
            children[-1].name = row.name
            continue
        model = row.models.area
        if model is None:
            children.append(AreaReport(row.name, 0.0, modeled=False))
            continue
        env = _RowEnv(row.scope, {})
        children.append(
            AreaReport(row.name, model.area(env) * row.quantity, modeled=True)
        )
    total = sum(node.area for node in children)
    return AreaReport(design.name, total, modeled=True, children=children)


def evaluate_timing(
    design: Design,
    overrides: Optional[Mapping[str, ParamValue]] = None,
) -> TimingReport:
    """Critical-path delay: the max over modeled rows, hierarchically."""
    with span("evaluate_timing", design=design.name) as sp:
        if overrides:
            with scope_overrides(design.scope, overrides):
                report = _evaluate_timing(design)
        else:
            report = _evaluate_timing(design)
        sp.set(delay_s=report.delay)
        return report


def _evaluate_timing(design: Design) -> TimingReport:
    children: List[TimingReport] = []
    for row in design:
        if isinstance(row, SubDesign):
            child = _evaluate_timing(row.design)
            child.name = row.name
            children.append(child)
            continue
        model = row.models.timing
        if model is None:
            children.append(TimingReport(row.name, 0.0, modeled=False))
            continue
        env = _RowEnv(row.scope, {})
        children.append(TimingReport(row.name, model.delay(env), modeled=True))
    modeled = [node.delay for node in children if node.modeled]
    critical = max(modeled) if modeled else 0.0
    return TimingReport(design.name, critical, modeled=bool(modeled), children=children)


# ---------------------------------------------------------------------------
# Analyses
# ---------------------------------------------------------------------------


def top_consumers(report: PowerReport, count: int = 5) -> List[Tuple[str, float]]:
    """The ``count`` hottest leaves: (hierarchical path, watts), descending."""
    ranked = sorted(report.flatten(), key=lambda item: item[1], reverse=True)
    return ranked[:count]


def coverage(report: PowerReport) -> List[Tuple[str, float, float]]:
    """Leaves ranked by power with cumulative fraction of total.

    The returned triples are ``(path, watts, cumulative_fraction)`` —
    the raw material for a diminishing-returns plot.
    """
    total = report.power
    ranked = sorted(report.flatten(), key=lambda item: item[1], reverse=True)
    result: List[Tuple[str, float, float]] = []
    running = 0.0
    for path, power in ranked:
        running += power
        fraction = running / total if total > 0 else 0.0
        result.append((path, power, fraction))
    return result


def consumers_for_fraction(
    report: PowerReport, fraction: float = 0.8
) -> List[Tuple[str, float]]:
    """Smallest set of leaves covering ``fraction`` of total power.

    "It is important to identify both the major power consumers and the
    point of diminishing returns" — optimize these rows first.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    selected: List[Tuple[str, float]] = []
    for path, power, cumulative in coverage(report):
        selected.append((path, power))
        if cumulative >= fraction:
            break
    return selected


def sweep(
    design: Design,
    parameter: str,
    values: Sequence[float],
    overrides: Optional[Mapping[str, ParamValue]] = None,
) -> List[Tuple[float, float]]:
    """Evaluate total power across a parameter sweep.

    This is the spreadsheet's what-if loop: "parameters such as
    bit-widths and supply voltages can be varied dynamically".
    Returns ``[(value, watts), ...]``.
    """
    results: List[Tuple[float, float]] = []
    for value in values:
        merged: Dict[str, ParamValue] = dict(overrides or {})
        merged[parameter] = value
        report = evaluate_power(design, overrides=merged)
        results.append((float(value), report.power))
    return results


def compare(
    designs: Sequence[Design],
    overrides: Optional[Mapping[str, ParamValue]] = None,
) -> List[Tuple[str, float]]:
    """Total power of several alternative designs under the same
    overrides — the Figure 1 vs Figure 3 comparison as one call."""
    return [
        (design.name, evaluate_power(design, overrides=overrides).power)
        for design in designs
    ]
