"""Design hierarchy: instances, sub-designs, macros, inter-model links.

A PowerPlay *design* is the thing the spreadsheet displays: an ordered
list of rows, each either a primitive instance (a library model plus its
parameter overrides) or a whole sub-design (the paper's hyperlinked
subsystem rows — "the luminance chip ... is a subcircuit of the custom
hardware subsection").

Features reproduced here:

* **parameter inheritance** — every instance scope chains to the design
  scope, which chains to the parent design's scope, so editing ``VDD``
  on the top page reaches every leaf that has not overridden it;
* **inter-model interaction** — an instance may declare that it feeds on
  the computed power (or area) of sibling instances; the DC-DC converter
  of EQ 18/19 reads ``P_load``, the Rent's-rule interconnect model reads
  ``active_area``.  Dependencies are evaluated first; cycles raise;
* **macro-modeling** — ``design.as_macro()`` lumps a modeled design into
  a single :class:`~repro.core.model.PowerModel` usable as a library
  element at higher levels ("It should be possible to lump a modeled
  design ... into a single macro").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Set, Tuple, Union

from ..errors import DesignError, ModelError
from .model import AreaModel, ModelSet, PowerModel, TimingModel
from .parameters import Parameter, ParameterScope, ParamValue

ModelLike = Union[ModelSet, PowerModel]


def _as_model_set(model: ModelLike) -> ModelSet:
    if isinstance(model, ModelSet):
        return model
    if isinstance(model, PowerModel):
        return ModelSet(power=model)
    raise DesignError(f"not a model: {model!r}")


#: Where a row's power number comes from — Figure 5 mixes these freely:
#: "the power dissipation data for the LCDs came from actual
#: measurements, the data for the custom hardware is modeled for one
#: configuration and measured for another".
PROVENANCE = ("modeled", "estimated", "datasheet", "measured")


class Instance:
    """One spreadsheet row: a model with local parameter overrides.

    ``power_feeds``
        Names of sibling rows whose *computed power* this row's model
        consumes.  Their summed power is exposed to the model's
        environment as ``P_load`` (plus per-name ``P.<row>`` entries).
    ``area_feeds``
        Same for computed area, exposed as ``active_area``.
    ``source``
        Provenance label (one of :data:`PROVENANCE`).  Recording a
        measurement via :meth:`record_measurement` back-annotates the
        row: the measured value overrides the model until cleared.
    """

    def __init__(
        self,
        name: str,
        model: ModelLike,
        scope: ParameterScope,
        power_feeds: Sequence[str] = (),
        area_feeds: Sequence[str] = (),
        doc: str = "",
        quantity: int = 1,
        source: str = "modeled",
    ):
        if quantity < 1:
            raise DesignError(f"instance {name!r}: quantity must be >= 1")
        if source not in PROVENANCE:
            raise DesignError(
                f"instance {name!r}: unknown source {source!r}; "
                f"expected one of {PROVENANCE}"
            )
        self.name = name
        self.models = _as_model_set(model)
        self.scope = scope
        self.power_feeds = tuple(power_feeds)
        self.area_feeds = tuple(area_feeds)
        self.doc = doc
        self.quantity = quantity
        self.source = source
        self.measured_power: Optional[float] = None

    @property
    def is_subdesign(self) -> bool:
        return False

    def set(self, name: str, value: ParamValue) -> None:
        """Override a parameter locally on this row."""
        self.scope.set(name, value)

    def record_measurement(self, watts: float) -> None:
        """Back-annotate with a measured per-unit power.

        "As the design process is iterated, these values should be
        back-annotated to the design to give more accurate results."
        Subsequent evaluations use the measurement (scaled by quantity);
        the model is kept for what-if comparisons and for
        :meth:`clear_measurement`.
        """
        if watts < 0:
            raise DesignError(
                f"instance {self.name!r}: measured power cannot be negative"
            )
        self.measured_power = float(watts)
        self.source = "measured"

    def clear_measurement(self) -> None:
        """Drop the measurement and return to the model estimate."""
        self.measured_power = None
        if self.source == "measured":
            self.source = "modeled"

    def __repr__(self) -> str:
        return f"Instance({self.name!r}, model={self.models.name!r})"


class SubDesign:
    """A row that is itself a whole design (hyperlinked subsystem)."""

    def __init__(self, name: str, design: "Design", doc: str = ""):
        self.name = name
        self.design = design
        self.power_feeds: Tuple[str, ...] = ()
        self.area_feeds: Tuple[str, ...] = ()
        self.doc = doc
        self.quantity = 1

    @property
    def is_subdesign(self) -> bool:
        return True

    @property
    def scope(self) -> ParameterScope:
        return self.design.scope

    def set(self, name: str, value: ParamValue) -> None:
        self.design.scope.set(name, value)

    def __repr__(self) -> str:
        return f"SubDesign({self.name!r}, {len(self.design)} rows)"


Row = Union[Instance, SubDesign]


class Design:
    """An ordered, named collection of rows plus a global scope.

    >>> design = Design("demo")
    >>> design.scope.set("VDD", 1.5)
    >>> design.scope.set("f", 2e6)
    """

    def __init__(
        self,
        name: str,
        scope: Optional[ParameterScope] = None,
        doc: str = "",
    ):
        self.name = name
        self.scope = scope if scope is not None else ParameterScope()
        self.doc = doc
        self._rows: Dict[str, Row] = {}
        self._order: List[str] = []

    # -- construction ------------------------------------------------------

    def add(
        self,
        name: str,
        model: ModelLike,
        params: Optional[Mapping[str, ParamValue]] = None,
        power_feeds: Sequence[str] = (),
        area_feeds: Sequence[str] = (),
        doc: str = "",
        quantity: int = 1,
        source: str = "modeled",
    ) -> Instance:
        """Add a primitive instance row.

        The instance scope is created as a child of the design scope and
        pre-populated with the model's declared parameter defaults, then
        the explicit ``params`` overrides.  Parameters *not* overridden
        and *not* defaulted resolve through inheritance.
        """
        self._check_new_name(name)
        model_set = _as_model_set(model)
        scope = self.scope.child()
        for declaration in model_set.parameters:
            # install the declaration and its default — unless the parent
            # chain already provides a value, in which case inheritance
            # wins over the model default (the Figure 5 behaviour).
            if declaration.name in self.scope:
                scope.declarations[declaration.name] = declaration
            else:
                scope.declare(declaration)
        for key, value in (params or {}).items():
            scope.set(key, value)
        instance = Instance(
            name,
            model_set,
            scope,
            power_feeds=power_feeds,
            area_feeds=area_feeds,
            doc=doc,
            quantity=quantity,
            source=source,
        )
        self._rows[name] = instance
        self._order.append(name)
        return instance

    def add_subdesign(self, name: str, design: "Design", doc: str = "") -> SubDesign:
        """Add a whole design as a row, inheriting this design's scope.

        The child's scope is re-parented onto this design's scope, which
        is what makes top-level parameters (``VDD1`` in Figure 5) flow
        into every subsystem.
        """
        self._check_new_name(name)
        if design is self:
            raise DesignError(f"design {self.name!r} cannot contain itself")
        if design.scope.parent is not None and design.scope.parent is not self.scope:
            raise DesignError(
                f"design {design.name!r} is already mounted elsewhere"
            )
        design.scope.parent = self.scope
        row = SubDesign(name, design, doc=doc)
        self._rows[name] = row
        self._order.append(name)
        return row

    def _check_new_name(self, name: str) -> None:
        if not name:
            raise DesignError("row name cannot be empty")
        if name in self._rows:
            raise DesignError(f"duplicate row name {name!r} in {self.name!r}")

    def remove(self, name: str) -> None:
        if name not in self._rows:
            raise DesignError(f"no row named {name!r}")
        for other in self._rows.values():
            if name in other.power_feeds or name in other.area_feeds:
                raise DesignError(
                    f"cannot remove {name!r}: row {other.name!r} feeds on it"
                )
        row = self._rows[name]
        if isinstance(row, SubDesign):
            # unmount: detach the child's scope so it can be re-mounted
            row.design.scope.parent = None
        del self._rows[name]
        self._order.remove(name)

    # -- access -------------------------------------------------------------

    def __contains__(self, name: object) -> bool:
        return name in self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        for name in self._order:
            yield self._rows[name]

    def row(self, name: str) -> Row:
        try:
            return self._rows[name]
        except KeyError:
            raise DesignError(f"no row named {name!r} in {self.name!r}") from None

    def rows(self) -> List[Row]:
        return [self._rows[name] for name in self._order]

    def row_names(self) -> List[str]:
        return list(self._order)

    # -- evaluation order ----------------------------------------------------

    def evaluation_order(self) -> List[str]:
        """Row names ordered so power/area feeds come before consumers."""
        state: Dict[str, int] = {}
        order: List[str] = []
        path: List[str] = []

        def visit(name: str) -> None:
            mark = state.get(name)
            if mark == 1:
                return
            if mark == 0:
                cycle_start = path.index(name)
                cycle = " -> ".join(path[cycle_start:] + [name])
                raise DesignError(
                    f"feed cycle in design {self.name!r}: {cycle}"
                )
            row = self._rows.get(name)
            if row is None:
                raise DesignError(
                    f"row {path[-1] if path else '?'!r} feeds on unknown "
                    f"row {name!r}"
                )
            state[name] = 0
            path.append(name)
            for dep in tuple(row.power_feeds) + tuple(row.area_feeds):
                visit(dep)
            path.pop()
            state[name] = 1
            order.append(name)

        for name in self._order:
            visit(name)
        return order

    # -- macro-modeling --------------------------------------------------------

    def as_macro(
        self,
        exported: Sequence[str] = (),
        name: Optional[str] = None,
        doc: str = "",
    ) -> "MacroPowerModel":
        """Lump this design into a single reusable power model.

        ``exported`` names become the macro's parameters (with the
        design's current values as defaults); anything not exported is
        frozen at its current definition.
        """
        return MacroPowerModel(self, exported=exported, name=name, doc=doc)

    def __repr__(self) -> str:
        return f"Design({self.name!r}, {len(self._rows)} rows)"


class MacroPowerModel(PowerModel):
    """A design lumped into a single model (hierarchical macro-modeling).

    Evaluating the macro pushes the exported parameters into the wrapped
    design's scope, runs the full hierarchical estimate, then restores
    the scope — so one design object can back many macro instantiations.
    """

    def __init__(
        self,
        design: Design,
        exported: Sequence[str] = (),
        name: Optional[str] = None,
        doc: str = "",
    ):
        self.design = design
        self.exported = tuple(exported)
        self.name = name or f"{design.name}_macro"
        self.doc = doc or f"macro of design {design.name!r}"
        declarations = []
        for parameter_name in self.exported:
            default = design.scope.get(parameter_name)
            if default is None:
                raise DesignError(
                    f"cannot export {parameter_name!r}: not resolvable in "
                    f"design {design.name!r}"
                )
            declarations.append(Parameter(parameter_name, default))
        self.parameters = tuple(declarations)

    def _overrides_from(self, env: Mapping[str, float]) -> Dict[str, float]:
        overrides: Dict[str, float] = {}
        for parameter_name in self.exported:
            if parameter_name in env:
                value = env[parameter_name]
                overrides[parameter_name] = float(
                    value() if callable(value) else value
                )
        return overrides

    def power(self, env: Mapping[str, float]) -> float:
        from .estimator import evaluate_power  # local import: avoid cycle

        report = evaluate_power(self.design, overrides=self._overrides_from(env))
        return report.power

    def breakdown(self, env: Mapping[str, float]) -> Dict[str, float]:
        from .estimator import evaluate_power

        report = evaluate_power(self.design, overrides=self._overrides_from(env))
        return {child.name: child.power for child in report.children}

    def __repr__(self) -> str:
        return f"MacroPowerModel({self.name!r}, exports={list(self.exported)})"
