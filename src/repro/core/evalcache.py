"""Memoized hierarchical evaluation — hot sheet views without re-walking.

Pressing PLAY (or merely re-opening a design sheet) re-evaluates the
whole hierarchy even when nothing changed; under many concurrent users
that is the dominant server cost.  This module memoizes
:func:`~repro.core.estimator.evaluate_power` /
:func:`~repro.core.estimator.evaluate_area` /
:func:`~repro.core.estimator.evaluate_timing` behind a **content
fingerprint** of the design, so an unchanged design is served from
memory and *any* mutation — a scope edit, a row-parameter override, a
new or removed row, a back-annotated measurement, a macro's inner
design changing — produces a different key and forces a fresh
evaluation.  Stale results are structurally impossible: the key *is*
the state.

Design of the key
-----------------

``design_fingerprint`` walks the hierarchy exactly like the evaluator
does but hashes instead of computing: row order, quantities, feeds,
provenance, measured overrides, every scope's locally stored values
(formula *sources*, not their evaluations — cheaper and just as
distinguishing) and the full parent-scope chain above the root (a
sub-design viewed through ``/design?path=...`` inherits values from its
mount point).  Model objects are identified by class, name and object
identity; they are immutable value objects in this codebase, and every
cache entry keeps a strong reference to its design — hence to every
model in it — so an ``id()`` can never be recycled into a false hit
while the entry lives.  Models that *wrap* a mutable design
(:class:`~repro.core.design.MacroPowerModel`) are fingerprinted by
recursing into that design.

Results are stored and returned as **copies**: callers may mutate what
they get (the web layer relabels sub-reports) without poisoning the
cache.

The cache is a bounded, thread-safe LRU; hits and misses are counted in
the observability registry as ``powerplay_eval_cache_total`` and
surfaced on ``GET /metrics``.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

from ..obs import annotate, get_registry
from .design import Design, SubDesign
from .estimator import (
    AreaReport,
    PowerReport,
    TimingReport,
    evaluate_area,
    evaluate_power,
    evaluate_timing,
)
from .expressions import Expression
from .parameters import ParameterScope, ParamValue

Report = Union[PowerReport, AreaReport, TimingReport]

DEFAULT_MAXSIZE = 128


def _metric_eval_cache():
    return get_registry().counter(
        "powerplay_eval_cache_total",
        "Memoized evaluation cache lookups, by kind and result.",
        ("kind", "result"),
    )


# ---------------------------------------------------------------------------
# Fingerprinting
# ---------------------------------------------------------------------------


def _scope_local_tokens(scope: ParameterScope, out: List[str]) -> None:
    """Hash tokens for the values stored directly in ``scope``."""
    for name in sorted(scope._values):
        value = scope._values[name]
        if isinstance(value, Expression):
            out.append(f"{name}=~{value.source}")
        else:
            out.append(f"{name}={value!r}")


def _scope_chain_tokens(scope: Optional[ParameterScope], out: List[str]) -> None:
    """Hash tokens for a whole parent chain (mount-point inheritance)."""
    depth = 0
    while scope is not None:
        out.append(f"^{depth}")
        _scope_local_tokens(scope, out)
        scope = scope.parent
        depth += 1


def _model_tokens(model, out: List[str], _depth: int = 0) -> None:
    """Identity tokens for a model object (see module docstring)."""
    out.append(f"m:{type(model).__name__}:{getattr(model, 'name', '')}:{id(model)}")
    # a macro wraps a live design whose parameters can change under it —
    # recurse so an inner edit changes the outer fingerprint
    inner = getattr(model, "design", None)
    if isinstance(inner, Design) and _depth < 16:
        _design_tokens(inner, out, _depth + 1)


def _design_tokens(design: Design, out: List[str], _depth: int = 0) -> None:
    out.append(f"d:{design.name}:{design.doc}")
    _scope_local_tokens(design.scope, out)
    for row in design:
        if isinstance(row, SubDesign):
            out.append(f"s:{row.name}:{row.doc}")
            if _depth < 16:
                _design_tokens(row.design, out, _depth + 1)
            continue
        out.append(
            f"r:{row.name}:{row.quantity}:{row.source}:{row.measured_power!r}"
            f":{','.join(row.power_feeds)}:{','.join(row.area_feeds)}:{row.doc}"
        )
        _scope_local_tokens(row.scope, out)
        models = row.models
        _model_tokens(models.power, out, _depth)
        if models.area is not None:
            _model_tokens(models.area, out, _depth)
        if models.timing is not None:
            _model_tokens(models.timing, out, _depth)


def _override_tokens(
    overrides: Optional[Mapping[str, ParamValue]], out: List[str]
) -> None:
    if not overrides:
        return
    out.append("o:")
    for name in sorted(overrides):
        value = overrides[name]
        if isinstance(value, Expression):
            out.append(f"{name}=~{value.source}")
        else:
            out.append(f"{name}={value!r}")


def design_fingerprint(
    design: Design, overrides: Optional[Mapping[str, ParamValue]] = None
) -> str:
    """A stable content hash of everything evaluation depends on."""
    tokens: List[str] = []
    _design_tokens(design, tokens)
    # values inherited from above the root (mounted sub-designs) — the
    # root's own locals were already hashed, but re-hashing them inside
    # the chain is harmless and keeps this one simple loop
    _scope_chain_tokens(design.scope.parent, tokens)
    _override_tokens(overrides, tokens)
    digest = hashlib.blake2b("\x1f".join(tokens).encode("utf-8"), digest_size=16)
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# The cache
# ---------------------------------------------------------------------------


class EvaluationCache:
    """Bounded, thread-safe LRU over fingerprint-keyed reports.

    Each entry pins the design object it was computed from (see module
    docstring: identity stability for model tokens) alongside a private
    copy of the report; lookups return fresh copies.
    """

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE):
        if maxsize < 1:
            raise ValueError("cache maxsize must be >= 1")
        self.maxsize = maxsize
        self._lock = threading.Lock()
        #: key -> (pinned design, cached report)
        self._entries: "OrderedDict[Tuple[str, str], Tuple[Design, Report]]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "size": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def _memoize(
        self,
        kind: str,
        design: Design,
        overrides: Optional[Mapping[str, ParamValue]],
        evaluate: Callable[..., Report],
    ) -> Report:
        key = (kind, design_fingerprint(design, overrides))
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                cached = entry[1]
        if entry is not None:
            _metric_eval_cache().inc(kind=kind, result="hit")
            annotate("eval_cache_hit", kind=kind, design=design.name)
            return cached.copy()
        report = evaluate(design, overrides=overrides)
        with self._lock:
            self.misses += 1
            self._entries[key] = (design, report.copy())
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1
        _metric_eval_cache().inc(kind=kind, result="miss")
        return report

    # -- public lookups ----------------------------------------------------

    def power(
        self,
        design: Design,
        overrides: Optional[Mapping[str, ParamValue]] = None,
    ) -> PowerReport:
        return self._memoize("power", design, overrides, evaluate_power)

    def area(
        self,
        design: Design,
        overrides: Optional[Mapping[str, ParamValue]] = None,
    ) -> AreaReport:
        return self._memoize("area", design, overrides, evaluate_area)

    def timing(
        self,
        design: Design,
        overrides: Optional[Mapping[str, ParamValue]] = None,
    ) -> TimingReport:
        return self._memoize("timing", design, overrides, evaluate_timing)


#: process-wide default — what the web application and CLI use
DEFAULT_CACHE = EvaluationCache()


def cached_evaluate_power(
    design: Design,
    overrides: Optional[Mapping[str, ParamValue]] = None,
    cache: Optional[EvaluationCache] = None,
) -> PowerReport:
    """Drop-in for :func:`evaluate_power` backed by the default cache."""
    # `cache is None`, not `cache or ...`: __len__ makes an EMPTY cache
    # falsy, and an empty explicit cache must still be the one used
    return (DEFAULT_CACHE if cache is None else cache).power(design, overrides)


def cached_evaluate_area(
    design: Design,
    overrides: Optional[Mapping[str, ParamValue]] = None,
    cache: Optional[EvaluationCache] = None,
) -> AreaReport:
    """Drop-in for :func:`evaluate_area` backed by the default cache."""
    return (DEFAULT_CACHE if cache is None else cache).area(design, overrides)


def cached_evaluate_timing(
    design: Design,
    overrides: Optional[Mapping[str, ParamValue]] = None,
    cache: Optional[EvaluationCache] = None,
) -> TimingReport:
    """Drop-in for :func:`evaluate_timing` backed by the default cache."""
    return (DEFAULT_CACHE if cache is None else cache).timing(design, overrides)
