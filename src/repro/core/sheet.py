"""The design spreadsheet engine.

PowerPlay presents the design-under-exploration as "a spread-sheet-like
work sheet ... which allows the study of the impact of parameter
variations".  This module implements that engine independently of the
web layer:

* :class:`Cell` — a named slot holding either a constant or a formula
  (an :class:`~repro.core.expressions.Expression` over other cells).
* :class:`Sheet` — a collection of cells with a dependency graph,
  topological recalculation ("the Play button"), cycle detection, and
  incremental dirty-propagation so editing one parameter only recomputes
  its cone of influence.

Cells may also be *bound* to Python callables (``bind``) — this is how
design rows plug hierarchical power evaluation into the sheet while
still letting other cells reference the result by name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple, Union

from ..errors import CycleError, EvaluationError, SheetError
from .expressions import Expression, compile_expression

CellValue = Union[float, int, str, Expression]


@dataclass
class Cell:
    """One spreadsheet cell.

    Exactly one of the following holds:

    * ``constant`` is set — a plain number;
    * ``formula`` is set — recomputed from other cells;
    * ``callback`` is set — an externally bound computation whose
      *declared* dependencies are ``depends_on``.
    """

    name: str
    constant: Optional[float] = None
    formula: Optional[Expression] = None
    callback: Optional[Callable[[], float]] = None
    depends_on: Tuple[str, ...] = ()
    unit: str = ""
    doc: str = ""
    value: Optional[float] = None  # last computed value
    error: Optional[str] = None    # last evaluation error, if any

    @property
    def kind(self) -> str:
        if self.callback is not None:
            return "bound"
        if self.formula is not None:
            return "formula"
        return "constant"

    def dependencies(self) -> Tuple[str, ...]:
        if self.formula is not None:
            return tuple(sorted(self.formula.variables))
        return self.depends_on


class Sheet:
    """A named collection of cells with automatic recalculation.

    >>> sheet = Sheet("demo")
    >>> _ = sheet.set("VDD", 1.5)
    >>> _ = sheet.set("C", 2e-12)
    >>> _ = sheet.set("f", "2M")        # strings parse as formulas/numbers
    >>> _ = sheet.set("P", "C * VDD^2 * f")
    >>> round(sheet["P"] * 1e6, 3)
    9.0
    """

    def __init__(self, name: str = "sheet"):
        self.name = name
        self._cells: Dict[str, Cell] = {}
        self._dirty: Set[str] = set()
        self._order: Optional[List[str]] = None  # cached topological order

    # -- construction ----------------------------------------------------

    def set(self, name: str, value: CellValue, unit: str = "", doc: str = "") -> Cell:
        """Create or replace a cell.

        Numbers become constants.  Strings are parsed: a pure number is a
        constant, anything else a formula.  Expressions are formulas.
        """
        self._check_name(name)
        cell = Cell(name=name, unit=unit, doc=doc)
        if isinstance(value, Expression):
            cell.formula = value
        elif isinstance(value, bool):
            cell.constant = 1.0 if value else 0.0
        elif isinstance(value, (int, float)):
            cell.constant = float(value)
        elif isinstance(value, str):
            text = value.strip()
            try:
                cell.constant = float(text)
            except ValueError:
                cell.formula = compile_expression(text)
        else:
            raise SheetError(f"cannot store {value!r} in cell {name!r}")
        self._install(cell)
        return cell

    def bind(
        self,
        name: str,
        callback: Callable[[], float],
        depends_on: Sequence[str] = (),
        unit: str = "",
        doc: str = "",
    ) -> Cell:
        """Install an externally computed cell.

        ``depends_on`` declares which cells invalidate it; the design
        layer uses this to re-run hierarchical power evaluation when a
        global parameter cell changes.
        """
        self._check_name(name)
        cell = Cell(
            name=name,
            callback=callback,
            depends_on=tuple(depends_on),
            unit=unit,
            doc=doc,
        )
        self._install(cell)
        return cell

    def _check_name(self, name: str) -> None:
        if not name or not isinstance(name, str):
            raise SheetError(f"invalid cell name {name!r}")
        head = name[0]
        if not (head.isalpha() or head == "_"):
            raise SheetError(f"cell name must start with a letter: {name!r}")
        if any(not (c.isalnum() or c in "_.") for c in name):
            raise SheetError(f"invalid cell name {name!r}")

    def _install(self, cell: Cell) -> None:
        self._cells[cell.name] = cell
        self._order = None
        self._mark_dirty(cell.name)

    def remove(self, name: str) -> None:
        """Delete a cell.  Cells that referenced it will error on recalc."""
        if name not in self._cells:
            raise SheetError(f"no cell named {name!r}")
        del self._cells[name]
        self._order = None
        # everything downstream must re-evaluate (and will now error)
        for other in self._cells.values():
            if name in other.dependencies():
                self._mark_dirty(other.name)

    # -- introspection -----------------------------------------------------

    def __contains__(self, name: object) -> bool:
        return name in self._cells

    def __iter__(self) -> Iterator[str]:
        return iter(self._cells)

    def __len__(self) -> int:
        return len(self._cells)

    def cell(self, name: str) -> Cell:
        try:
            return self._cells[name]
        except KeyError:
            raise SheetError(f"no cell named {name!r}") from None

    def names(self) -> List[str]:
        return list(self._cells)

    def dependents(self, name: str) -> List[str]:
        """Cells that directly reference ``name``."""
        return [
            cell.name
            for cell in self._cells.values()
            if name in cell.dependencies()
        ]

    # -- recalculation -----------------------------------------------------

    def _mark_dirty(self, name: str) -> None:
        """Mark ``name`` and its transitive dependents dirty."""
        stack = [name]
        while stack:
            current = stack.pop()
            if current in self._dirty:
                continue
            self._dirty.add(current)
            stack.extend(self.dependents(current))

    def topological_order(self) -> List[str]:
        """All cell names, dependencies before dependents.

        Raises :class:`CycleError` naming the cells in any cycle.
        External (undefined) names referenced by formulas are ignored
        here and surface as evaluation errors instead.
        """
        if self._order is not None:
            return self._order
        state: Dict[str, int] = {}  # 0=visiting, 1=done
        order: List[str] = []
        path: List[str] = []

        def visit(name: str) -> None:
            mark = state.get(name)
            if mark == 1:
                return
            if mark == 0:
                cycle_start = path.index(name)
                raise CycleError(path[cycle_start:] + [name])
            state[name] = 0
            path.append(name)
            for dep in self._cells[name].dependencies():
                if dep in self._cells:
                    visit(dep)
            path.pop()
            state[name] = 1
            order.append(name)

        for name in self._cells:
            visit(name)
        self._order = order
        return order

    def recalculate(self, full: bool = False) -> Dict[str, float]:
        """Evaluate dirty cells in dependency order ("Play").

        With ``full=True`` every cell is recomputed from scratch —
        property tests assert this gives identical values to incremental
        recalculation.  Returns the values of all cells.  Cells whose
        evaluation fails store ``error`` and value ``None``; referencing
        an errored cell propagates the error.
        """
        order = self.topological_order()
        targets = set(self._cells) if full else set(self._dirty)
        env = _SheetEnv(self)
        for name in order:
            if name not in targets:
                continue
            cell = self._cells[name]
            cell.error = None
            try:
                cell.value = self._evaluate_cell(cell, env)
            except (EvaluationError, SheetError) as exc:
                cell.value = None
                cell.error = str(exc)
        self._dirty.clear()
        return self.values()

    def _evaluate_cell(self, cell: Cell, env: "_SheetEnv") -> float:
        if cell.constant is not None:
            return cell.constant
        if cell.formula is not None:
            return cell.formula.evaluate(env)
        if cell.callback is not None:
            result = cell.callback()
            try:
                return float(result)
            except (TypeError, ValueError):
                raise EvaluationError(
                    f"bound cell {cell.name!r} returned non-numeric "
                    f"{result!r}"
                ) from None
        raise SheetError(f"cell {cell.name!r} has no value source")

    def __getitem__(self, name: str) -> float:
        """Value of a cell, recalculating if needed.

        Raises :class:`SheetError` for unknown cells and
        :class:`EvaluationError` if the cell (or a dependency) errored.
        """
        if name not in self._cells:
            raise SheetError(f"no cell named {name!r}")
        if self._dirty:
            self.recalculate()
        cell = self._cells[name]
        if cell.error is not None:
            raise EvaluationError(f"cell {name!r}: {cell.error}")
        assert cell.value is not None
        return cell.value

    def get(self, name: str, default: Optional[float] = None) -> Optional[float]:
        try:
            return self[name]
        except (SheetError, EvaluationError):
            return default

    def values(self) -> Dict[str, float]:
        """All successfully computed cell values."""
        if self._dirty:
            self.recalculate()
        return {
            cell.name: cell.value
            for cell in self._cells.values()
            if cell.value is not None
        }

    def errors(self) -> Dict[str, str]:
        """All cells currently in error, mapped to their messages."""
        if self._dirty:
            self.recalculate()
        return {
            cell.name: cell.error
            for cell in self._cells.values()
            if cell.error is not None
        }

    def invalidate(self, name: Optional[str] = None) -> None:
        """Force re-evaluation of one cell (and dependents) or everything.

        Bound cells have opaque callbacks; when their underlying model
        changes, the design layer calls this.
        """
        if name is None:
            self._dirty.update(self._cells)
        else:
            if name not in self._cells:
                raise SheetError(f"no cell named {name!r}")
            self._mark_dirty(name)

    def __repr__(self) -> str:
        return f"Sheet({self.name!r}, {len(self._cells)} cells)"


class _SheetEnv(Mapping[str, float]):
    """Expression environment over already-evaluated sheet cells.

    By the time a formula runs, topological order guarantees its
    dependencies were evaluated this pass (or carry an error)."""

    def __init__(self, sheet: Sheet):
        self._sheet = sheet

    def __getitem__(self, name: str) -> float:
        cell = self._sheet._cells.get(name)
        if cell is None:
            raise EvaluationError(f"unknown cell {name!r}")
        if cell.error is not None:
            raise EvaluationError(
                f"dependency {name!r} errored: {cell.error}"
            )
        if cell.value is None:
            raise EvaluationError(f"dependency {name!r} not yet computed")
        return cell.value

    def __contains__(self, name: object) -> bool:
        return name in self._sheet._cells

    def __iter__(self) -> Iterator[str]:
        return iter(self._sheet._cells)

    def __len__(self) -> int:
        return len(self._sheet._cells)
