"""Text rendering of power/area/timing reports.

Produces the Figure 2 / Figure 5 style spreadsheet tables as monospace
text (the web layer has its own HTML renderer over the same report
trees).  Values print in the paper's engineering notation
(``7.438e-04 W``) or human notation (``743.8 uW``) per caller choice.
"""

from __future__ import annotations

import io
from typing import Iterable, List, Optional, Sequence, Tuple

from .estimator import AreaReport, PowerReport, TimingReport, coverage
from .units import format_eng, format_quantity


def _format_power(value: float, eng: bool) -> str:
    return format_eng(value, "W") if eng else format_quantity(value, "W")


def _format_params(parameters: dict, limit: int = 4) -> str:
    shown = []
    for name, value in parameters.items():
        if name.startswith("_"):
            continue
        shown.append(f"{name}={format_quantity(value)}")
        if len(shown) >= limit:
            break
    return ", ".join(shown)


def render_table(rows: Sequence[Sequence[str]], header: Sequence[str]) -> str:
    """Render a list of string rows as an aligned monospace table."""
    columns = len(header)
    widths = [len(str(title)) for title in header]
    for row in rows:
        for index in range(columns):
            cell = str(row[index]) if index < len(row) else ""
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        padded = [
            str(cells[index] if index < len(cells) else "").ljust(widths[index])
            for index in range(columns)
        ]
        return "| " + " | ".join(padded) + " |"

    rule = "+-" + "-+-".join("-" * width for width in widths) + "-+"
    out = [rule, line(list(header)), rule]
    out.extend(line(list(row)) for row in rows)
    out.append(rule)
    return "\n".join(out)


def render_power(
    report: PowerReport,
    eng: bool = True,
    max_depth: Optional[int] = None,
) -> str:
    """Render a power report as a spreadsheet table.

    One row per node, indented by hierarchy depth; each row shows the
    row-local parameter snapshot, its power, and its share of the total
    — matching the columns visible in the paper's Figure 2/5 shots.
    """
    total = report.power
    table_rows: List[List[str]] = []

    def emit(node: PowerReport, depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        indent = "  " * depth
        share = f"{100.0 * node.fraction_of(total):5.1f}%"
        quantity = str(node.quantity) if node.quantity != 1 else ""
        source = "" if node.source in ("modeled", "hierarchy") else node.source
        table_rows.append(
            [
                indent + node.name,
                quantity,
                _format_params(node.parameters),
                _format_power(node.power, eng),
                share,
                source,
            ]
        )
        for child in node.children:
            emit(child, depth + 1)

    emit(report, 0)
    header = ["Name", "Qty", "Parameters", "Power", "Share", "Source"]
    title = f"{report.name} summary"
    total_line = f"Total: {_format_power(total, eng)}"
    return "\n".join([title, render_table(table_rows, header), total_line])


def render_power_csv(report: PowerReport) -> str:
    """Flat CSV of every leaf: path,power_watts,share."""
    total = report.power
    out = io.StringIO()
    out.write("path,power_w,share\n")
    for path, power in report.flatten():
        share = power / total if total > 0 else 0.0
        out.write(f"{path},{power:.6e},{share:.4f}\n")
    return out.getvalue()


def render_coverage(report: PowerReport, limit: int = 10) -> str:
    """Diminishing-returns table: hottest leaves and cumulative share.

    The footer cites how much of the design the numbers cover — leaves
    shown vs. leaves evaluated, and the total row count the evaluator
    visited (recorded on the report by :func:`evaluate_power`).
    """
    rows = [
        [path, format_quantity(power, "W"), f"{100.0 * cumulative:5.1f}%"]
        for path, power, cumulative in coverage(report)[:limit]
    ]
    table = render_table(rows, ["Consumer", "Power", "Cumulative"])
    footer = (
        f"({len(rows)} of {report.leaf_count} leaves shown; "
        f"{report.evaluated_rows} rows evaluated)"
    )
    return f"{table}\n{footer}"


def render_area(report: AreaReport) -> str:
    """Area table; unmodeled rows print '-' rather than a false zero."""
    rows: List[List[str]] = []

    def emit(node: AreaReport, depth: int) -> None:
        indent = "  " * depth
        if node.modeled:
            text = format_quantity(node.area * 1e12, "um2")
        else:
            text = "-"
        rows.append([indent + node.name, text])
        for child in node.children:
            emit(child, depth + 1)

    emit(report, 0)
    return render_table(rows, ["Name", "Active area"])


def render_timing(report: TimingReport) -> str:
    """Per-row delay table, with the critical path at the root."""
    rows: List[List[str]] = []

    def emit(node: TimingReport, depth: int) -> None:
        indent = "  " * depth
        text = format_quantity(node.delay, "s") if node.modeled else "-"
        rows.append([indent + node.name, text])
        for child in node.children:
            emit(child, depth + 1)

    emit(report, 0)
    return render_table(rows, ["Name", "Delay"])


def render_comparison(results: Iterable[Tuple[str, float]]) -> str:
    """Side-by-side design comparison with ratios against the first.

    The Figure 1 vs Figure 3 presentation: "PowerPlay estimated the
    power dissipation of the second implementation to be ~150 uW, or
    1/5 that of the original design."
    """
    items = list(results)
    if not items:
        return "(no designs)"
    base = items[0][1]
    rows = []
    for name, power in items:
        ratio = f"{power / base:.3f}x" if base > 0 else "-"
        rows.append([name, format_quantity(power, "W"), ratio])
    return render_table(rows, ["Design", "Power", "vs " + items[0][0]])
