"""Design-space exploration helpers: the searches a designer runs.

The spreadsheet makes a single what-if cheap; these utilities run the
loops the paper's methodology implies but leaves to the user's fingers:

* :func:`minimum_voltage` — lowest supply at which a timing model still
  meets a required frequency (bisection on the monotone delay-vs-VDD
  curve);
* :func:`optimize_voltage` — combine with a design: the minimum-power
  operating point that meets timing, plus the savings against nominal;
* :func:`grid_search` — exhaustive sweep over a small parameter grid,
  returning a Pareto-annotated result list;
* :func:`pareto_front` — non-dominated points for two objectives
  (e.g. power vs delay, power vs area).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import ModelError, PowerPlayError
from .design import Design
from .estimator import evaluate_power
from .model import TimingModel
from .parameters import ParamValue


def minimum_voltage(
    timing: TimingModel,
    frequency: float,
    v_low: float = 0.8,
    v_high: float = 5.0,
    tolerance: float = 0.005,
    env: Optional[Mapping[str, float]] = None,
    supply: str = "VDD",
) -> float:
    """Lowest supply voltage at which ``timing`` meets ``frequency``.

    Assumes delay decreases monotonically with the supply (true of the
    alpha-power-law models).  ``supply`` names the environment variable
    the timing model reads — ``VDD2`` for InfoPad's low-voltage custom
    domain.  Raises :class:`ModelError` when even ``v_high`` misses
    timing.
    """
    if frequency <= 0:
        raise ModelError("frequency must be positive")
    if not v_low < v_high:
        raise ModelError("need v_low < v_high")
    period = 1.0 / frequency
    base = dict(env or {})

    def meets(vdd: float) -> bool:
        probe = dict(base)
        probe[supply] = vdd
        try:
            return timing.delay(probe) <= period
        except PowerPlayError:
            return False  # below threshold etc.

    if not meets(v_high):
        raise ModelError(
            f"timing model {getattr(timing, 'name', '?')!r} cannot reach "
            f"{frequency:.3g} Hz even at {v_high} V"
        )
    if meets(v_low):
        return v_low
    low, high = v_low, v_high
    while high - low > tolerance:
        mid = (low + high) / 2.0
        if meets(mid):
            high = mid
        else:
            low = mid
    return high


@dataclass
class VoltageOptimum:
    """Result of :func:`optimize_voltage`."""

    vdd: float
    power: float
    nominal_vdd: float
    nominal_power: float

    @property
    def saving(self) -> float:
        """Fractional power saving vs the nominal supply."""
        if self.nominal_power <= 0:
            return 0.0
        return 1.0 - self.power / self.nominal_power


def optimize_voltage(
    design: Design,
    timing: TimingModel,
    frequency: float,
    nominal_vdd: Optional[float] = None,
    v_low: float = 0.8,
    v_high: float = 5.0,
    supply: str = "VDD",
    timing_supply: str = "VDD",
) -> VoltageOptimum:
    """Minimum-power supply for a design under a timing constraint.

    ``timing`` is the design's critical path (possibly a
    :mod:`repro.core.composition` tree).  Dynamic power is monotone in
    the supply, so the optimum sits exactly at the minimum feasible
    voltage.  ``supply`` names the scaled rail in the *design* scope —
    InfoPad optimizes ``VDD2`` while the 5 V commodity rail stays put —
    and ``timing_supply`` names the variable the timing model reads
    (the alpha-power-law models read ``VDD``).
    """
    if nominal_vdd is None:
        nominal_vdd = design.scope.get(supply)
        if nominal_vdd is None:
            raise ModelError(
                f"design has no {supply} and none was given"
            )
    vdd = minimum_voltage(
        timing, frequency, v_low, v_high, supply=timing_supply
    )
    power = evaluate_power(design, overrides={supply: vdd}).power
    nominal_power = evaluate_power(
        design, overrides={supply: nominal_vdd}
    ).power
    return VoltageOptimum(
        vdd=vdd,
        power=power,
        nominal_vdd=float(nominal_vdd),
        nominal_power=nominal_power,
    )


@dataclass
class GridPoint:
    """One evaluated configuration of a grid search."""

    parameters: Dict[str, float]
    power: float
    metrics: Dict[str, float]

    def __repr__(self) -> str:
        values = ", ".join(f"{k}={v:g}" for k, v in self.parameters.items())
        return f"GridPoint({values}: {self.power:.3e} W)"


def grid_search(
    design: Design,
    grid: Mapping[str, Sequence[ParamValue]],
    metrics: Optional[Mapping[str, Callable[[Design], float]]] = None,
    limit: int = 10_000,
) -> List[GridPoint]:
    """Evaluate a design over the cartesian product of parameter values.

    ``metrics`` may add extra objectives, each a callable evaluated with
    the overrides applied (e.g. area or delay extractors).  Results come
    back sorted by power, cheapest first.  ``limit`` guards against
    accidentally exploding grids — the point count is checked *before*
    any combination is materialized, so an oversized grid fails in
    microseconds instead of first allocating a billion-tuple list.
    """
    if not grid:
        raise ModelError("empty parameter grid")
    names = list(grid)
    total = math.prod(len(grid[name]) for name in names)
    if total > limit:
        raise ModelError(
            f"grid has {total} points, over the limit of {limit}"
        )
    if total == 0:
        raise ModelError(
            "empty parameter grid: an axis has no values"
        )
    results: List[GridPoint] = []
    from .estimator import scope_overrides

    for combo in itertools.product(*(grid[name] for name in names)):
        overrides = dict(zip(names, combo))
        with scope_overrides(design.scope, overrides):
            power = evaluate_power(design).power
            extra = {
                key: metric(design) for key, metric in (metrics or {}).items()
            }
        results.append(
            GridPoint(
                parameters={k: float(v) for k, v in overrides.items()},
                power=power,
                metrics=extra,
            )
        )
    results.sort(key=lambda point: point.power)
    return results


def pareto_front(
    points: Iterable[Tuple[float, float]],
) -> List[Tuple[float, float]]:
    """Non-dominated (minimize, minimize) points, sorted by the first axis.

    A point dominates another when it is <= on both axes and < on one.
    Non-finite coordinates are rejected: a NaN never compares, so one
    bad point would silently poison the whole front.
    """
    candidates = []
    for point in points:
        first, second = point
        if not (math.isfinite(first) and math.isfinite(second)):
            raise ModelError(
                f"pareto_front: non-finite point ({first!r}, {second!r})"
            )
        candidates.append((float(first), float(second)))
    candidates = sorted(set(candidates))
    front: List[Tuple[float, float]] = []
    best_second = float("inf")
    for first, second in candidates:
        if second < best_second:
            front.append((first, second))
            best_second = second
    return front


def pareto_points(
    results: Sequence[GridPoint], metric: str
) -> List[GridPoint]:
    """GridPoints on the (power, metric) Pareto front."""
    front = set(
        pareto_front(
            (point.power, point.metrics[metric]) for point in results
        )
    )
    return [
        point
        for point in results
        if (point.power, point.metrics[metric]) in front
    ]
