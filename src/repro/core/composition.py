"""Compositional delay estimation.

The paper's status note: "(Compositional techniques for delay estimation
are currently being examined.)"  Power composes by summation; delay does
not — it follows the structure of the computation.  This module supplies
the composition algebra the paper was examining:

* :class:`Chain` — blocks in series: delays add;
* :class:`ParallelPaths` — independent paths joining at a merge point:
  the slowest dominates;
* :class:`Pipelined` — a registered chain: the *cycle time* is the
  slowest stage plus register overhead; latency is cycles × cycle time;
* :class:`Iterative` — one block reused N times (a serial architecture):
  delay multiplies.

Every node is itself a :class:`~repro.core.model.TimingModel`, so
compositions nest arbitrarily and slot into library entries, and they
all respond to ``VDD`` through their leaves — voltage exploration sees
the true critical structure, not a single scaled number.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ModelError
from .model import TimingModel, _get


class Chain(TimingModel):
    """Series composition: total delay is the sum over blocks."""

    def __init__(self, name: str, blocks: Sequence[TimingModel], doc: str = ""):
        if not blocks:
            raise ModelError(f"chain {name!r} has no blocks")
        self.name = name
        self.blocks = tuple(blocks)
        self.doc = doc or "series composition (delays add)"

    def delay(self, env: Mapping[str, float]) -> float:
        return sum(block.delay(env) for block in self.blocks)

    def breakdown(self, env: Mapping[str, float]) -> Dict[str, float]:
        return {
            getattr(block, "name", f"stage{index}"): block.delay(env)
            for index, block in enumerate(self.blocks)
        }


class ParallelPaths(TimingModel):
    """Reconvergent parallel paths: the slowest path sets the delay."""

    def __init__(self, name: str, paths: Sequence[TimingModel], doc: str = ""):
        if not paths:
            raise ModelError(f"parallel {name!r} has no paths")
        self.name = name
        self.paths = tuple(paths)
        self.doc = doc or "parallel composition (max of paths)"

    def delay(self, env: Mapping[str, float]) -> float:
        return max(path.delay(env) for path in self.paths)

    def critical_path(self, env: Mapping[str, float]) -> TimingModel:
        """Which path dominates at this operating point.

        Voltage scaling can move the critical path between a
        gate-dominated and a wire-dominated branch; this exposes that.
        """
        return max(self.paths, key=lambda path: path.delay(env))


class Pipelined(TimingModel):
    """A registered chain.

    ``delay`` reports the *cycle time* — the quantity a frequency check
    needs: the slowest stage plus register setup+clock-to-Q overhead.
    :meth:`latency` gives end-to-end time through all stages.
    """

    def __init__(
        self,
        name: str,
        stages: Sequence[TimingModel],
        register_overhead: float = 1.2e-9,
        doc: str = "",
    ):
        if not stages:
            raise ModelError(f"pipeline {name!r} has no stages")
        if register_overhead < 0:
            raise ModelError(f"pipeline {name!r}: negative register overhead")
        self.name = name
        self.stages = tuple(stages)
        self.register_overhead = register_overhead
        self.doc = doc or "pipelined composition (cycle = max stage + reg)"

    def delay(self, env: Mapping[str, float]) -> float:
        slowest = max(stage.delay(env) for stage in self.stages)
        return slowest + self.register_overhead

    def latency(self, env: Mapping[str, float]) -> float:
        return len(self.stages) * self.delay(env)

    def max_frequency(self, env: Mapping[str, float]) -> float:
        return 1.0 / self.delay(env)


class Iterative(TimingModel):
    """One block reused serially N times (area-for-time architectures)."""

    def __init__(
        self,
        name: str,
        block: TimingModel,
        iterations: int,
        doc: str = "",
    ):
        if iterations < 1:
            raise ModelError(f"iterative {name!r}: iterations must be >= 1")
        self.name = name
        self.block = block
        self.iterations = iterations
        self.doc = doc or f"serial reuse x{iterations}"

    def delay(self, env: Mapping[str, float]) -> float:
        return self.iterations * self.block.delay(env)


class FixedDelay(TimingModel):
    """A leaf with a constant delay (wire segments, pad delays)."""

    def __init__(self, name: str, delay_s: float, doc: str = ""):
        if delay_s < 0:
            raise ModelError(f"delay {name!r} cannot be negative")
        self.name = name
        self._delay = delay_s
        self.doc = doc

    def delay(self, env: Mapping[str, float]) -> float:
        return self._delay


def meets_frequency(
    model: TimingModel, frequency: float, env: Mapping[str, float]
) -> bool:
    """Does this (composed) path fit in a clock period at ``frequency``?"""
    if frequency <= 0:
        raise ModelError("frequency must be positive")
    return model.delay(env) <= 1.0 / frequency


def slack(
    model: TimingModel, frequency: float, env: Mapping[str, float]
) -> float:
    """Timing slack (seconds) against a clock; negative = violation."""
    if frequency <= 0:
        raise ModelError("frequency must be positive")
    return 1.0 / frequency - model.delay(env)
