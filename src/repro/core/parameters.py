"""Parameters and hierarchical parameter scopes.

The paper: "Subcircuits may be defined to inherit global parameters" and
"allows for the introduction of variables at any level in the design
hierarchy and where any parameter can be expressed as a function of these
parameters."  This module provides that machinery:

* :class:`Parameter` — a named value with documentation, unit, bounds
  and an optional enumerated choice set (the web input forms render
  these as fields/selects, exactly like Figure 4's multiplier form).
* :class:`ParameterScope` — a chain-of-scopes mapping.  A lookup walks
  from the instance scope up through its ancestors to the design's
  global scope, so setting ``VDD`` at the top level reaches every
  subcircuit that has not overridden it.
* Parameters whose value is an :class:`~repro.core.expressions.Expression`
  (or a formula string) are evaluated lazily against the scope itself,
  giving the "any parameter as a function of these parameters" behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Set, Union

from ..errors import EvaluationError, ParameterError
from .expressions import Expression, compile_expression

ParamValue = Union[float, int, str, Expression]


@dataclass
class Parameter:
    """Declaration of a single model/design parameter.

    ``name``
        Identifier used in formulas (``bitwidth``, ``VDD``).
    ``default``
        Default value; a string that is not a pure number is treated as
        a formula over other parameters.
    ``unit``
        Display unit (informational; values are in coherent SI scale).
    ``doc``
        One-line documentation shown next to the form field.
    ``minimum`` / ``maximum``
        Optional inclusive bounds validated on assignment.
    ``choices``
        Optional enumerated values (the multiplier form's "multiplier
        type" select is one of these).
    ``integer``
        If true, values are coerced with ``int()`` after validation.
    """

    name: str
    default: ParamValue = 0.0
    unit: str = ""
    doc: str = ""
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    choices: Optional[Sequence[float]] = None
    integer: bool = False

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ParameterError(f"invalid parameter name: {self.name!r}")
        head = self.name[0]
        if not (head.isalpha() or head == "_"):
            raise ParameterError(
                f"parameter name must start with a letter: {self.name!r}"
            )
        if any(not (c.isalnum() or c in "_.") for c in self.name):
            raise ParameterError(f"invalid parameter name: {self.name!r}")
        if (
            self.minimum is not None
            and self.maximum is not None
            and self.minimum > self.maximum
        ):
            raise ParameterError(
                f"{self.name}: minimum {self.minimum} > maximum {self.maximum}"
            )

    def validate(self, value: float) -> float:
        """Validate and coerce a numeric value against this declaration."""
        try:
            numeric = float(value)
        except (TypeError, ValueError):
            raise ParameterError(
                f"{self.name}: not a number: {value!r}"
            ) from None
        if self.minimum is not None and numeric < self.minimum:
            raise ParameterError(
                f"{self.name}: {numeric} below minimum {self.minimum}"
            )
        if self.maximum is not None and numeric > self.maximum:
            raise ParameterError(
                f"{self.name}: {numeric} above maximum {self.maximum}"
            )
        if self.choices is not None and numeric not in [
            float(c) for c in self.choices
        ]:
            raise ParameterError(
                f"{self.name}: {numeric} not one of {list(self.choices)}"
            )
        if self.integer:
            if numeric != int(numeric):
                raise ParameterError(
                    f"{self.name}: expected an integer, got {numeric}"
                )
            return float(int(numeric))
        return numeric


def _coerce(value: ParamValue) -> Union[float, Expression]:
    """Turn a raw assignment into either a float or an Expression."""
    if isinstance(value, Expression):
        return value
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        text = value.strip()
        try:
            return float(text)
        except ValueError:
            return compile_expression(text)
    raise ParameterError(f"cannot use {value!r} as a parameter value")


class ParameterScope(Mapping[str, float]):
    """A mapping of parameter values with single-parent inheritance.

    Lookups resolve in this scope first, then the parent chain.  Values
    may be formulas (Expressions) evaluated lazily against *this* scope,
    so a child that overrides ``VDD`` changes the result of a parent
    formula ``energy = C * VDD^2`` evaluated through the child.

    Iteration yields every visible parameter name (own + inherited).
    """

    def __init__(
        self,
        values: Optional[Mapping[str, ParamValue]] = None,
        parent: Optional["ParameterScope"] = None,
        declarations: Optional[Sequence[Parameter]] = None,
    ):
        self.parent = parent
        self.declarations: Dict[str, Parameter] = {}
        self._values: Dict[str, Union[float, Expression]] = {}
        for declaration in declarations or ():
            self.declare(declaration)
        for name, value in (values or {}).items():
            self.set(name, value)

    # -- declaration --------------------------------------------------

    def declare(self, declaration: Parameter) -> None:
        """Register a parameter declaration and install its default."""
        self.declarations[declaration.name] = declaration
        if declaration.name not in self._values:
            self._values[declaration.name] = _coerce(declaration.default)

    def declaration_for(self, name: str) -> Optional[Parameter]:
        """Find the nearest declaration for ``name`` up the chain."""
        scope: Optional[ParameterScope] = self
        while scope is not None:
            if name in scope.declarations:
                return scope.declarations[name]
            scope = scope.parent
        return None

    # -- assignment ----------------------------------------------------

    def set(self, name: str, value: ParamValue) -> None:
        """Assign ``name`` in *this* scope (shadowing any inherited value)."""
        coerced = _coerce(value)
        declaration = self.declaration_for(name)
        if declaration is not None and isinstance(coerced, float):
            coerced = declaration.validate(coerced)
        self._values[name] = coerced

    def update(self, values: Mapping[str, ParamValue]) -> None:
        for name, value in values.items():
            self.set(name, value)

    def unset(self, name: str) -> None:
        """Remove a local override, re-exposing any inherited value."""
        if name not in self._values:
            raise ParameterError(f"{name!r} is not set in this scope")
        del self._values[name]

    # -- lookup ---------------------------------------------------------

    def raw(self, name: str) -> Union[float, Expression]:
        """The stored value (float or formula) without evaluation."""
        scope: Optional[ParameterScope] = self
        while scope is not None:
            if name in scope._values:
                return scope._values[name]
            scope = scope.parent
        raise ParameterError(f"unknown parameter {name!r}")

    def __getitem__(self, name: str) -> float:
        return self.resolve(name)

    def resolve(self, name: str, _active: Optional[Set[str]] = None) -> float:
        """Evaluate ``name``, following formula references recursively.

        Self-referential formulas are detected and reported rather than
        recursing forever.
        """
        value = self.raw(name)
        if isinstance(value, float):
            return value
        active = _active if _active is not None else set()
        if name in active:
            chain = " -> ".join(sorted(active)) + f" -> {name}"
            raise ParameterError(f"circular parameter definition: {chain}")
        active.add(name)
        try:
            env = _ScopeEnv(self, active)
            return value.evaluate(env)
        except EvaluationError as exc:
            raise ParameterError(
                f"cannot evaluate parameter {name!r} = {value.source!r}: {exc}"
            ) from exc
        finally:
            active.discard(name)

    def get(self, name: str, default: Optional[float] = None):
        try:
            return self.resolve(name)
        except ParameterError:
            return default

    def __contains__(self, name: object) -> bool:
        if not isinstance(name, str):
            return False
        scope: Optional[ParameterScope] = self
        while scope is not None:
            if name in scope._values:
                return True
            scope = scope.parent
        return False

    def names(self) -> List[str]:
        """All visible names, own scope first, parents after (deduped)."""
        seen: List[str] = []
        scope: Optional[ParameterScope] = self
        while scope is not None:
            for name in scope._values:
                if name not in seen:
                    seen.append(name)
            scope = scope.parent
        return seen

    def local_names(self) -> List[str]:
        """Names assigned directly in this scope."""
        return list(self._values)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self.names())

    def child(
        self, values: Optional[Mapping[str, ParamValue]] = None
    ) -> "ParameterScope":
        """Create a child scope inheriting from this one."""
        return ParameterScope(values=values, parent=self)

    def flattened(self) -> Dict[str, float]:
        """Every visible parameter fully evaluated — what the spreadsheet
        shows in its Parameters column."""
        return {name: self.resolve(name) for name in self.names()}

    def __repr__(self) -> str:
        own = ", ".join(f"{k}={v!r}" for k, v in self._values.items())
        suffix = " +parent" if self.parent is not None else ""
        return f"ParameterScope({own}{suffix})"


class _ScopeEnv(Mapping[str, float]):
    """Adapter presenting a ParameterScope as an expression environment,
    threading the active-set through for cycle detection."""

    def __init__(self, scope: ParameterScope, active: Set[str]):
        self._scope = scope
        self._active = active

    def __getitem__(self, name: str) -> float:
        try:
            return self._scope.resolve(name, self._active)
        except ParameterError as exc:
            raise EvaluationError(str(exc)) from exc

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name in self._scope

    def __iter__(self) -> Iterator[str]:
        return iter(self._scope.names())

    def __len__(self) -> int:
        return len(self._scope)
