"""The PowerPlay model template and model protocols.

The paper's EQ 1 is the universal template every PowerPlay model maps
onto::

    P = sum_i( C_sw_i * V_swing_i * V_DD * f )  +  I * V_DD

"PowerPlay allows any block to be modeled using any combination of
C_sw_i, V_swing_i, and I as a function of any input parameters to give
maximum flexibility."

This module provides:

* :class:`PowerModel` / :class:`AreaModel` / :class:`TimingModel` —
  abstract protocols evaluated against a parameter environment (usually
  a :class:`~repro.core.parameters.ParameterScope`).
* :class:`CapacitiveTerm` / :class:`StaticTerm` — the two term species
  of EQ 1, with every field an expression over the model's parameters.
* :class:`TemplatePowerModel` — a list of terms + parameter
  declarations; computes power, per-access energy, and a per-term
  breakdown.
* :class:`ExpressionPowerModel` — a single free-form equation (what the
  "define your own model" web form produces).
* :class:`FixedPowerModel` — a constant (datasheet) value, optionally
  duty-cycled: EQ 11, ``P = alpha * P_avg``.
* expression-based area and timing models, including the classic CMOS
  delay–voltage scaling used to trade supply against speed.

Conventions: all values in coherent SI units.  The reserved parameter
names are ``VDD`` (supply, volts) and ``f`` (access/switching frequency,
hertz); models read anything else they declare.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import EvaluationError, ModelError
from .expressions import Expression, compile_expression
from .parameters import Parameter, ParameterScope

ExprLike = Union[str, float, int, Expression]


def _expr(value: ExprLike) -> Expression:
    """Coerce numbers or strings into Expressions."""
    if isinstance(value, Expression):
        return value
    if isinstance(value, (int, float)):
        return compile_expression(repr(float(value)))
    return compile_expression(value)


def _resolve(expression: Expression, env: Mapping[str, float], what: str) -> float:
    try:
        return expression.evaluate(env)
    except EvaluationError as exc:
        raise ModelError(f"cannot evaluate {what} ({expression.source!r}): {exc}") from exc


# ---------------------------------------------------------------------------
# Protocols
# ---------------------------------------------------------------------------


class PowerModel(abc.ABC):
    """Anything that can report power for a parameter environment."""

    #: Parameters this model understands (rendered as form fields).
    parameters: Tuple[Parameter, ...] = ()

    #: One-line documentation (hyperlinked next to each instantiation).
    doc: str = ""

    @abc.abstractmethod
    def power(self, env: Mapping[str, float]) -> float:
        """Average power in watts for the given environment."""

    def energy_per_access(self, env: Mapping[str, float]) -> float:
        """Dynamic energy per access in joules.

        Default: dynamic power divided by access frequency ``f``.
        Template models compute this exactly instead.
        """
        f = _get(env, "f")
        if f <= 0:
            raise ModelError("energy_per_access requires f > 0")
        return self.power(env) / f

    def breakdown(self, env: Mapping[str, float]) -> Dict[str, float]:
        """Per-term power in watts.  Defaults to one opaque term."""
        return {"total": self.power(env)}

    def default_scope(
        self, parent: Optional[ParameterScope] = None
    ) -> ParameterScope:
        """A scope pre-populated with this model's parameter defaults."""
        return ParameterScope(parent=parent, declarations=self.parameters)


class AreaModel(abc.ABC):
    """Active-area estimate in square meters."""

    parameters: Tuple[Parameter, ...] = ()
    doc: str = ""

    @abc.abstractmethod
    def area(self, env: Mapping[str, float]) -> float:
        """Active area in m^2."""


class TimingModel(abc.ABC):
    """Critical-path delay estimate in seconds."""

    parameters: Tuple[Parameter, ...] = ()
    doc: str = ""

    @abc.abstractmethod
    def delay(self, env: Mapping[str, float]) -> float:
        """Worst-case delay in seconds."""


def _get(env: Mapping[str, float], name: str, default: Optional[float] = None) -> float:
    if name in env:
        value = env[name]
        return float(value() if callable(value) else value)
    if default is not None:
        return default
    raise ModelError(f"environment is missing required parameter {name!r}")


# ---------------------------------------------------------------------------
# EQ 1 template
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CapacitiveTerm:
    """One switched-capacitance term of EQ 1.

    ``capacitance``
        Effective capacitance C_sw in farads, an expression over the
        model parameters (e.g. ``"bitwidthA * bitwidthB * 253f"``).
    ``v_swing``
        Voltage swing expression; ``None`` means rail-to-rail (VDD),
        the common digital CMOS case.  Reduced-swing memories (EQ 8)
        set this to the extracted bit-line swing.
    ``activity``
        Switching-probability multiplier (0..1 typically); defaults to 1
        so uncorrelated worst-case estimates fall out naturally.
    ``frequency``
        Optional expression overriding the environment's ``f`` for this
        term — e.g. a write port clocked at ``f / 2``.
    """

    name: str
    capacitance: Expression
    v_swing: Optional[Expression] = None
    activity: Expression = field(default_factory=lambda: _expr(1.0))
    frequency: Optional[Expression] = None
    doc: str = ""

    def energy(self, env: Mapping[str, float]) -> float:
        """Energy per access: activity * C * V_swing * VDD (joules)."""
        vdd = _get(env, "VDD")
        c = _resolve(self.capacitance, env, f"term {self.name!r} capacitance")
        if c < 0:
            raise ModelError(f"term {self.name!r}: negative capacitance {c}")
        swing = (
            vdd
            if self.v_swing is None
            else _resolve(self.v_swing, env, f"term {self.name!r} v_swing")
        )
        alpha = _resolve(self.activity, env, f"term {self.name!r} activity")
        return alpha * c * swing * vdd

    def power(self, env: Mapping[str, float]) -> float:
        """Average power: energy * f (watts)."""
        if self.frequency is not None:
            f = _resolve(self.frequency, env, f"term {self.name!r} frequency")
        else:
            f = _get(env, "f")
        return self.energy(env) * f


@dataclass(frozen=True)
class StaticTerm:
    """One static-current term of EQ 1: P = I * VDD.

    Models leakage, bias currents (the analog models of EQ 13 reduce to
    a list of these), or any other frequency-independent draw.
    """

    name: str
    current: Expression
    supply: Optional[Expression] = None  # defaults to VDD
    doc: str = ""

    def power(self, env: Mapping[str, float]) -> float:
        i = _resolve(self.current, env, f"term {self.name!r} current")
        supply = (
            _get(env, "VDD")
            if self.supply is None
            else _resolve(self.supply, env, f"term {self.name!r} supply")
        )
        return i * supply


class TemplatePowerModel(PowerModel):
    """EQ 1 as an executable object.

    >>> model = TemplatePowerModel(
    ...     name="mult_16x16",
    ...     capacitive=[CapacitiveTerm("array", _expr("bwA * bwB * 253f"))],
    ...     parameters=(Parameter("bwA", 16), Parameter("bwB", 16)),
    ... )
    >>> env = {"bwA": 16, "bwB": 16, "VDD": 1.5, "f": 2e6}
    >>> round(model.power(env) * 1e6, 3)   # microwatts
    291.456
    """

    def __init__(
        self,
        name: str,
        capacitive: Sequence[CapacitiveTerm] = (),
        static: Sequence[StaticTerm] = (),
        parameters: Sequence[Parameter] = (),
        doc: str = "",
    ):
        if not capacitive and not static:
            raise ModelError(f"model {name!r} has no terms")
        self.name = name
        self.capacitive = tuple(capacitive)
        self.static = tuple(static)
        self.parameters = tuple(parameters)
        self.doc = doc

    def power(self, env: Mapping[str, float]) -> float:
        dynamic = sum(term.power(env) for term in self.capacitive)
        leakage = sum(term.power(env) for term in self.static)
        return dynamic + leakage

    def energy_per_access(self, env: Mapping[str, float]) -> float:
        """Dynamic energy per access (static power excluded)."""
        return sum(term.energy(env) for term in self.capacitive)

    def effective_capacitance(self, env: Mapping[str, float]) -> float:
        """Total activity-weighted switched capacitance, farads.

        This is the C_T the paper's model sections report (EQ 2-10);
        swing weighting is folded in as C * (V_swing / VDD)."""
        vdd = _get(env, "VDD")
        total = 0.0
        for term in self.capacitive:
            energy = term.energy(env)
            total += energy / (vdd * vdd)
        return total

    def breakdown(self, env: Mapping[str, float]) -> Dict[str, float]:
        result: Dict[str, float] = {}
        for term in self.capacitive:
            result[term.name] = term.power(env)
        for term in self.static:
            result[term.name] = term.power(env)
        return result

    def __repr__(self) -> str:
        return (
            f"TemplatePowerModel({self.name!r}, "
            f"{len(self.capacitive)} capacitive, {len(self.static)} static)"
        )


# ---------------------------------------------------------------------------
# Free-form and fixed models
# ---------------------------------------------------------------------------


class ExpressionPowerModel(PowerModel):
    """Power given directly by a user equation (watts).

    This is what PowerPlay's "define a model for your own primitive"
    HTML form creates: the user supplies names, an equation, and
    documentation; the equation may reference any declared parameter
    plus ``VDD`` and ``f``.
    """

    def __init__(
        self,
        name: str,
        equation: ExprLike,
        parameters: Sequence[Parameter] = (),
        doc: str = "",
    ):
        self.name = name
        self.equation = _expr(equation)
        self.parameters = tuple(parameters)
        self.doc = doc

    def power(self, env: Mapping[str, float]) -> float:
        return _resolve(self.equation, env, f"model {self.name!r} power")

    def __repr__(self) -> str:
        return f"ExpressionPowerModel({self.name!r}, {self.equation.source!r})"


class FixedPowerModel(PowerModel):
    """Datasheet/measured power with a duty-cycle activity factor.

    EQ 11: ``P = alpha * P_AVG`` — the first-order programmable-processor
    and commodity-component model.  ``alpha`` defaults to 1 (no
    power-down capability).
    """

    parameters = (
        Parameter("alpha", 1.0, "", "activity (duty) factor", 0.0, 1.0),
    )

    def __init__(self, name: str, average_power: float, doc: str = ""):
        if average_power < 0:
            raise ModelError(f"model {name!r}: negative power {average_power}")
        self.name = name
        self.average_power = float(average_power)
        self.doc = doc

    def power(self, env: Mapping[str, float]) -> float:
        alpha = _get(env, "alpha", 1.0)
        if not 0.0 <= alpha <= 1.0:
            raise ModelError(f"model {self.name!r}: alpha {alpha} not in [0, 1]")
        return alpha * self.average_power

    def __repr__(self) -> str:
        return f"FixedPowerModel({self.name!r}, {self.average_power} W)"


class CallablePowerModel(PowerModel):
    """Adapter wrapping an arbitrary Python callable.

    The paper: "PowerPlay will accept any model and in fact will support
    paths to estimation tools in lieu of an equation."  Tool invocations
    (the Design Agent) surface as callables.
    """

    def __init__(
        self,
        name: str,
        func,
        parameters: Sequence[Parameter] = (),
        doc: str = "",
    ):
        self.name = name
        self._func = func
        self.parameters = tuple(parameters)
        self.doc = doc

    def power(self, env: Mapping[str, float]) -> float:
        result = self._func(env)
        try:
            return float(result)
        except (TypeError, ValueError):
            raise ModelError(
                f"model {self.name!r} returned non-numeric {result!r}"
            ) from None


# ---------------------------------------------------------------------------
# Area and timing
# ---------------------------------------------------------------------------


class ExpressionAreaModel(AreaModel):
    """Active area from a parameterized equation (m^2)."""

    def __init__(
        self,
        name: str,
        equation: ExprLike,
        parameters: Sequence[Parameter] = (),
        doc: str = "",
    ):
        self.name = name
        self.equation = _expr(equation)
        self.parameters = tuple(parameters)
        self.doc = doc

    def area(self, env: Mapping[str, float]) -> float:
        value = _resolve(self.equation, env, f"model {self.name!r} area")
        if value < 0:
            raise ModelError(f"model {self.name!r}: negative area {value}")
        return value


class ExpressionTimingModel(TimingModel):
    """Critical-path delay from a parameterized equation (seconds)."""

    def __init__(
        self,
        name: str,
        equation: ExprLike,
        parameters: Sequence[Parameter] = (),
        doc: str = "",
    ):
        self.name = name
        self.equation = _expr(equation)
        self.parameters = tuple(parameters)
        self.doc = doc

    def delay(self, env: Mapping[str, float]) -> float:
        return _resolve(self.equation, env, f"model {self.name!r} delay")


class VoltageScaledTimingModel(TimingModel):
    """First-order CMOS delay vs supply: t(V) = t_ref * scale(V).

    ``scale(V) = (V / V_ref) * ((V_ref - V_T) / (V - V_T))^2`` — the
    alpha-power-law (alpha=2) delay model used throughout the Berkeley
    low-power work.  It lets the spreadsheet check that a voltage chosen
    for power still meets the operating frequency.
    """

    parameters = (
        Parameter("VDD", 1.5, "V", "supply voltage", 0.0),
    )

    def __init__(
        self,
        name: str,
        delay_ref: float,
        v_ref: float = 1.5,
        v_threshold: float = 0.7,
        doc: str = "",
    ):
        if delay_ref <= 0:
            raise ModelError(f"model {name!r}: delay_ref must be positive")
        if v_ref <= v_threshold:
            raise ModelError(
                f"model {name!r}: v_ref {v_ref} must exceed V_T {v_threshold}"
            )
        self.name = name
        self.delay_ref = float(delay_ref)
        self.v_ref = float(v_ref)
        self.v_threshold = float(v_threshold)
        self.doc = doc

    def delay(self, env: Mapping[str, float]) -> float:
        vdd = _get(env, "VDD", self.v_ref)
        if vdd <= self.v_threshold:
            raise ModelError(
                f"model {self.name!r}: VDD {vdd} V at or below "
                f"threshold {self.v_threshold} V — circuit will not switch"
            )
        headroom_ref = self.v_ref - self.v_threshold
        headroom = vdd - self.v_threshold
        scale = (vdd / self.v_ref) * (headroom_ref / headroom) ** 2
        return self.delay_ref * scale

    def max_frequency(self, env: Mapping[str, float]) -> float:
        """1 / delay — the fastest clock this block supports at VDD."""
        return 1.0 / self.delay(env)


@dataclass
class ModelSet:
    """The power/area/timing triple a library entry carries.

    Area and timing are optional — the paper notes they exist but
    focuses on power; so do most entries."""

    power: PowerModel
    area: Optional[AreaModel] = None
    timing: Optional[TimingModel] = None

    @property
    def name(self) -> str:
        return getattr(self.power, "name", "model")

    @property
    def parameters(self) -> Tuple[Parameter, ...]:
        """Union of parameter declarations across the three models."""
        seen: Dict[str, Parameter] = {}
        for model in (self.power, self.area, self.timing):
            if model is None:
                continue
            for parameter in model.parameters:
                seen.setdefault(parameter.name, parameter)
        return tuple(seen.values())
