"""Bridging designs into the spreadsheet engine.

The paper's UI *is* a spreadsheet; internally the design hierarchy and
the cell engine are separate (designs know models, sheets know
formulas).  :func:`design_sheet` fuses them: a :class:`~repro.core.sheet
.Sheet` whose cells are

* one writable cell per global parameter (``g.VDD`` ...);
* one writable cell per row-local parameter (``<row>.<param>``),
  excluding formula-valued parameters (those stay owned by the scope so
  their dependencies keep working);
* one *bound* cell per row's power (``P.<row>``), recomputed only when
  a parameter in its dependency cone changes — incremental PLAY;
* a ``P.total`` cell summing the rows;
* user-added derived cells ("any parameter can be expressed as a
  function of these parameters"): energy per frame, battery current,
  whatever the exploration needs — they recalculate with everything
  else.

Writes to the parameter cells push straight into the design scopes, so
the sheet and the design can never disagree.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from ..errors import SheetError
from .design import Design, SubDesign
from .estimator import evaluate_power
from .expressions import Expression
from .parameters import ParameterScope
from .sheet import Sheet


class DesignSheet:
    """A Sheet view over a Design.

    >>> bridge = DesignSheet(design)
    >>> bridge.sheet["P.total"]            # evaluate
    >>> bridge.set_parameter("g.VDD", 1.1) # edit + auto-invalidate
    >>> bridge.sheet["P.total"]            # only dirty rows recompute
    """

    GLOBAL_PREFIX = "g."
    POWER_PREFIX = "P."
    TOTAL_CELL = "P.total"

    def __init__(self, design: Design, name: Optional[str] = None):
        self.design = design
        self.sheet = Sheet(name or f"{design.name}_sheet")
        #: cell name -> (scope, parameter name) for writable cells
        self._bindings: Dict[str, Tuple[ParameterScope, str]] = {}
        #: one hierarchical evaluation is shared by every row's power
        #: cell within a recalculation pass; edits invalidate it
        self._report = None
        self.evaluations = 0  # recomputation counter (observable in tests)
        self._build()

    # -- construction -----------------------------------------------------

    def _build(self) -> None:
        global_cells: List[str] = []
        for parameter in self.design.scope.local_names():
            raw = self.design.scope.raw(parameter)
            if isinstance(raw, Expression):
                continue
            cell = f"{self.GLOBAL_PREFIX}{parameter}"
            self.sheet.set(cell, raw)
            self._bindings[cell] = (self.design.scope, parameter)
            global_cells.append(cell)

        row_cells: List[str] = []
        for row in self.design:
            parameter_cells: List[str] = []
            if not isinstance(row, SubDesign):
                for parameter in row.scope.local_names():
                    raw = row.scope.raw(parameter)
                    if isinstance(raw, Expression):
                        continue
                    cell = f"{row.name}.{parameter}"
                    self.sheet.set(cell, raw)
                    self._bindings[cell] = (row.scope, parameter)
                    parameter_cells.append(cell)
            power_cell = f"{self.POWER_PREFIX}{row.name}"
            self.sheet.bind(
                power_cell,
                self._power_of(row.name),
                depends_on=tuple(parameter_cells) + tuple(global_cells),
                unit="W",
                doc=f"evaluated power of row {row.name!r}",
            )
            row_cells.append(power_cell)
        self.sheet.set(
            self.TOTAL_CELL,
            " + ".join(row_cells) if row_cells else "0",
            unit="W",
            doc="design total (PLAY)",
        )

    def _shared_report(self):
        if self._report is None:
            self._report = evaluate_power(self.design)
            self.evaluations += 1
        return self._report

    def _power_of(self, row_name: str):
        def compute() -> float:
            return self._shared_report()[row_name].power

        return compute

    # -- edits ------------------------------------------------------------

    def set_parameter(self, cell: str, value: float) -> None:
        """Write a parameter cell: updates sheet AND design scope."""
        binding = self._bindings.get(cell)
        if binding is None:
            raise SheetError(
                f"{cell!r} is not a writable parameter cell "
                f"(writable: {sorted(self._bindings)})"
            )
        scope, parameter = binding
        scope.set(parameter, value)
        self._report = None  # next power read re-evaluates once
        self.sheet.set(cell, float(scope.resolve(parameter)))

    def add_derived(self, name: str, formula: str, unit: str = "", doc: str = "") -> None:
        """Add a user cell computed from any existing cells."""
        self.sheet.set(name, formula, unit=unit, doc=doc)

    # -- reads ----------------------------------------------------------------

    @property
    def total_power(self) -> float:
        return self.sheet[self.TOTAL_CELL]

    def row_power(self, row_name: str) -> float:
        return self.sheet[f"{self.POWER_PREFIX}{row_name}"]

    def values(self) -> Dict[str, float]:
        return self.sheet.values()


def design_sheet(design: Design, name: Optional[str] = None) -> DesignSheet:
    """Convenience constructor mirroring the paper's workflow verb."""
    return DesignSheet(design, name)
