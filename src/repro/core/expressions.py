"""Safe arithmetic expression language for models and spreadsheet cells.

PowerPlay lets users type model equations and parameter formulas into web
forms ("The user is prompted for names, equations, and documentation
information").  Evaluating those with :func:`eval` would hand the server
to any browser, so this module implements a small, safe expression
language:

* tokenizer + recursive-descent parser producing an immutable AST;
* an evaluator over a name environment (plain ``dict`` or any mapping);
* :func:`variables` — static dependency extraction, which is what the
  spreadsheet engine uses to build its recalculation graph;
* a curated set of math functions and constants.

Grammar (standard precedence, ``^`` is right-associative power)::

    expr        := ternary
    ternary     := or_expr ("?" expr ":" expr)?
    or_expr     := and_expr ("or" and_expr)*
    and_expr    := not_expr ("and" not_expr)*
    not_expr    := "not" not_expr | comparison
    comparison  := additive (("<"|"<="|">"|">="|"=="|"!=") additive)?
    additive    := term (("+"|"-") term)*
    term        := power (("*"|"/"|"%") power)*
    power       := unary ("^" power)?
    unary       := ("-"|"+") unary | postfix
    postfix     := atom
    atom        := NUMBER | NAME ("(" args ")")? | "(" expr ")"

Names may be dotted (``lut.words``) — the spreadsheet resolves those
against hierarchical scopes.  Numbers accept engineering suffixes
(``253f`` = 253e-15) in addition to ``e`` notation, mirroring the input
forms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Set, Tuple, Union

from ..errors import EvaluationError, ParseError

# --------------------------------------------------------------------------
# Tokenizer
# --------------------------------------------------------------------------

_TWO_CHAR_OPS = ("<=", ">=", "==", "!=")
_ONE_CHAR_OPS = "+-*/%^()<>?:,"

#: Engineering suffixes accepted on numeric literals (``253f`` -> 253e-15).
_ENG_SUFFIXES = {
    "a": 1e-18,
    "f": 1e-15,
    "p": 1e-12,
    "n": 1e-9,
    "u": 1e-6,
    "m": 1e-3,
    "k": 1e3,
    "K": 1e3,
    "M": 1e6,
    "G": 1e9,
    "T": 1e12,
}


@dataclass(frozen=True)
class Token:
    kind: str  # "num", "name", "op", "end"
    text: str
    value: float
    position: int


def tokenize(source: str) -> List[Token]:
    """Split ``source`` into tokens.  Raises :class:`ParseError`."""
    tokens: List[Token] = []
    i, n = 0, len(source)
    while i < n:
        ch = source[i]
        if ch.isspace():
            i += 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            i, token = _read_number(source, i)
            tokens.append(token)
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] in "_."):
                i += 1
            text = source[start:i]
            if text.endswith("."):
                raise ParseError("name cannot end with '.'", source, start)
            tokens.append(Token("name", text, 0.0, start))
            continue
        two = source[i : i + 2]
        if two in _TWO_CHAR_OPS:
            tokens.append(Token("op", two, 0.0, i))
            i += 2
            continue
        if ch in _ONE_CHAR_OPS:
            tokens.append(Token("op", ch, 0.0, i))
            i += 1
            continue
        raise ParseError(f"unexpected character {ch!r}", source, i)
    tokens.append(Token("end", "", 0.0, n))
    return tokens


def _read_number(source: str, i: int) -> Tuple[int, Token]:
    start = i
    n = len(source)
    while i < n and (source[i].isdigit() or source[i] == "."):
        i += 1
    # exponent part
    if i < n and source[i] in "eE":
        j = i + 1
        if j < n and source[j] in "+-":
            j += 1
        if j < n and source[j].isdigit():
            i = j
            while i < n and source[i].isdigit():
                i += 1
    text = source[start:i]
    try:
        value = float(text)
    except ValueError:
        raise ParseError(f"bad number {text!r}", source, start) from None
    # engineering suffix: only when NOT followed by more letters (so the
    # name "freq" after "2 " stays a name, and "2f" is 2e-15 but "2fF"
    # is rejected — units belong in the surrounding form, not formulas).
    if i < n and source[i] in _ENG_SUFFIXES:
        after = source[i + 1] if i + 1 < n else ""
        if not (after.isalnum() or after == "_" or after == "."):
            value *= _ENG_SUFFIXES[source[i]]
            i += 1
            text = source[start:i]
    return i, Token("num", text, value, start)


# --------------------------------------------------------------------------
# AST
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Num:
    value: float


@dataclass(frozen=True)
class Name:
    identifier: str


@dataclass(frozen=True)
class Unary:
    op: str
    operand: "Node"


@dataclass(frozen=True)
class Binary:
    op: str
    left: "Node"
    right: "Node"


@dataclass(frozen=True)
class Call:
    function: str
    args: Tuple["Node", ...]


@dataclass(frozen=True)
class Ternary:
    condition: "Node"
    if_true: "Node"
    if_false: "Node"


Node = Union[Num, Name, Unary, Binary, Call, Ternary]


# --------------------------------------------------------------------------
# Parser
# --------------------------------------------------------------------------


class _Parser:
    def __init__(self, source: str):
        self.source = source
        self.tokens = tokenize(source)
        self.index = 0

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect(self, text: str) -> Token:
        token = self.current
        if token.kind != "op" or token.text != text:
            raise ParseError(
                f"expected {text!r}, found {token.text or 'end of input'!r}",
                self.source,
                token.position,
            )
        return self.advance()

    def match(self, *texts: str) -> Optional[Token]:
        token = self.current
        if token.kind == "op" and token.text in texts:
            return self.advance()
        return None

    def match_name(self, *names: str) -> Optional[Token]:
        token = self.current
        if token.kind == "name" and token.text in names:
            return self.advance()
        return None

    # grammar rules -------------------------------------------------------

    def parse(self) -> Node:
        node = self.expr()
        token = self.current
        if token.kind != "end":
            raise ParseError(
                f"trailing input {token.text!r}", self.source, token.position
            )
        return node

    def expr(self) -> Node:
        return self.ternary()

    def ternary(self) -> Node:
        condition = self.or_expr()
        if self.match("?"):
            if_true = self.expr()
            self.expect(":")
            if_false = self.expr()
            return Ternary(condition, if_true, if_false)
        return condition

    def or_expr(self) -> Node:
        node = self.and_expr()
        while self.match_name("or"):
            node = Binary("or", node, self.and_expr())
        return node

    def and_expr(self) -> Node:
        node = self.not_expr()
        while self.match_name("and"):
            node = Binary("and", node, self.not_expr())
        return node

    def not_expr(self) -> Node:
        if self.match_name("not"):
            return Unary("not", self.not_expr())
        return self.comparison()

    def comparison(self) -> Node:
        node = self.additive()
        token = self.match("<", "<=", ">", ">=", "==", "!=")
        if token:
            node = Binary(token.text, node, self.additive())
        return node

    def additive(self) -> Node:
        node = self.term()
        while True:
            token = self.match("+", "-")
            if not token:
                return node
            node = Binary(token.text, node, self.term())

    def term(self) -> Node:
        node = self.power()
        while True:
            token = self.match("*", "/", "%")
            if not token:
                return node
            node = Binary(token.text, node, self.power())

    def power(self) -> Node:
        node = self.unary()
        if self.match("^"):
            return Binary("^", node, self.power())  # right-assoc
        return node

    def unary(self) -> Node:
        token = self.match("-", "+")
        if token:
            operand = self.unary()
            if token.text == "+":
                return operand
            return Unary("-", operand)
        return self.atom()

    def atom(self) -> Node:
        token = self.current
        if token.kind == "num":
            self.advance()
            return Num(token.value)
        if token.kind == "name":
            self.advance()
            if self.match("("):
                args: List[Node] = []
                if not (self.current.kind == "op" and self.current.text == ")"):
                    args.append(self.expr())
                    while self.match(","):
                        args.append(self.expr())
                self.expect(")")
                return Call(token.text, tuple(args))
            return Name(token.text)
        if token.kind == "op" and token.text == "(":
            self.advance()
            node = self.expr()
            self.expect(")")
            return node
        raise ParseError(
            f"unexpected {token.text or 'end of input'!r}",
            self.source,
            token.position,
        )


def parse(source: str) -> Node:
    """Parse ``source`` into an AST.  Raises :class:`ParseError`."""
    if not isinstance(source, str):
        raise ParseError(f"expected a string, got {type(source).__name__}")
    if not source.strip():
        raise ParseError("empty expression", source, 0)
    return _Parser(source).parse()


# --------------------------------------------------------------------------
# Evaluation
# --------------------------------------------------------------------------

#: Constants every expression environment sees.  ``k`` and ``q`` support
#: the paper's analog models (EQ 14-17); ``kT_over_q`` is the thermal
#: voltage at 300 K.
CONSTANTS: Dict[str, float] = {
    "pi": math.pi,
    "e": math.e,
    "k": 1.380649e-23,       # Boltzmann constant, J/K
    "q": 1.602176634e-19,    # elementary charge, C
    "T_room": 300.0,         # K
    "kT_over_q": 1.380649e-23 * 300.0 / 1.602176634e-19,
    "true": 1.0,
    "false": 0.0,
}


def _safe_sqrt(x: float) -> float:
    if x < 0:
        raise EvaluationError(f"sqrt of negative value {x}")
    return math.sqrt(x)


def _safe_log(x: float, base: Optional[float] = None) -> float:
    if x <= 0:
        raise EvaluationError(f"log of non-positive value {x}")
    if base is None:
        return math.log(x)
    return math.log(x, base)


FUNCTIONS: Dict[str, Callable[..., float]] = {
    "abs": abs,
    "sqrt": _safe_sqrt,
    "exp": math.exp,
    "ln": _safe_log,
    "log": _safe_log,
    "log2": lambda x: _safe_log(x, 2.0),
    "log10": lambda x: _safe_log(x, 10.0),
    "floor": math.floor,
    "ceil": math.ceil,
    "round": round,
    "min": min,
    "max": max,
    "pow": lambda x, y: x**y,
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "atan": math.atan,
    "sum": lambda *xs: sum(xs),
    "avg": lambda *xs: sum(xs) / len(xs) if xs else 0.0,
    "if": lambda c, a, b: a if c else b,
    "clamp": lambda x, lo, hi: max(lo, min(hi, x)),
}

_ARITY = {
    "abs": (1, 1), "sqrt": (1, 1), "exp": (1, 1), "ln": (1, 2),
    "log": (1, 2), "log2": (1, 1), "log10": (1, 1), "floor": (1, 1),
    "ceil": (1, 1), "round": (1, 2), "min": (1, None), "max": (1, None),
    "pow": (2, 2), "sin": (1, 1), "cos": (1, 1), "tan": (1, 1),
    "atan": (1, 1), "sum": (0, None), "avg": (1, None), "if": (3, 3),
    "clamp": (3, 3),
}


def evaluate(node: Node, env: Optional[Mapping[str, float]] = None) -> float:
    """Evaluate an AST against a name environment.

    ``env`` maps names (possibly dotted) to floats or to zero-argument
    callables (lazy values — the design hierarchy uses these for
    inter-model references such as "power of the load of this DC-DC
    converter").  Unknown names raise :class:`EvaluationError`.
    """
    env = env or {}
    return _eval(node, env)


def _lookup(identifier: str, env: Mapping[str, float]) -> float:
    if identifier in env:
        value = env[identifier]
    elif identifier in CONSTANTS:
        value = CONSTANTS[identifier]
    else:
        raise EvaluationError(f"unknown name {identifier!r}")
    if callable(value):
        value = value()
    try:
        return float(value)
    except (TypeError, ValueError):
        raise EvaluationError(
            f"name {identifier!r} is not numeric: {value!r}"
        ) from None


def _eval(node: Node, env: Mapping[str, float]) -> float:
    if isinstance(node, Num):
        return node.value
    if isinstance(node, Name):
        return _lookup(node.identifier, env)
    if isinstance(node, Unary):
        value = _eval(node.operand, env)
        if node.op == "-":
            return -value
        if node.op == "not":
            return 0.0 if value else 1.0
        raise EvaluationError(f"unknown unary operator {node.op!r}")
    if isinstance(node, Ternary):
        condition = _eval(node.condition, env)
        branch = node.if_true if condition else node.if_false
        return _eval(branch, env)
    if isinstance(node, Binary):
        return _eval_binary(node, env)
    if isinstance(node, Call):
        return _eval_call(node, env)
    raise EvaluationError(f"unknown node type {type(node).__name__}")


def _eval_binary(node: Binary, env: Mapping[str, float]) -> float:
    op = node.op
    if op == "and":
        left = _eval(node.left, env)
        if not left:
            return 0.0
        return 1.0 if _eval(node.right, env) else 0.0
    if op == "or":
        left = _eval(node.left, env)
        if left:
            return 1.0
        return 1.0 if _eval(node.right, env) else 0.0
    left = _eval(node.left, env)
    right = _eval(node.right, env)
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise EvaluationError("division by zero")
        return left / right
    if op == "%":
        if right == 0:
            raise EvaluationError("modulo by zero")
        return math.fmod(left, right)
    if op == "^":
        try:
            result = left**right
        except (OverflowError, ValueError, ZeroDivisionError) as exc:
            raise EvaluationError(f"power error: {left} ^ {right}") from exc
        if isinstance(result, complex):
            raise EvaluationError(f"complex result: {left} ^ {right}")
        return result
    if op == "<":
        return 1.0 if left < right else 0.0
    if op == "<=":
        return 1.0 if left <= right else 0.0
    if op == ">":
        return 1.0 if left > right else 0.0
    if op == ">=":
        return 1.0 if left >= right else 0.0
    if op == "==":
        return 1.0 if left == right else 0.0
    if op == "!=":
        return 1.0 if left != right else 0.0
    raise EvaluationError(f"unknown operator {op!r}")


def _eval_call(node: Call, env: Mapping[str, float]) -> float:
    func = FUNCTIONS.get(node.function)
    if func is None:
        raise EvaluationError(f"unknown function {node.function!r}")
    lo, hi = _ARITY[node.function]
    argc = len(node.args)
    if argc < lo or (hi is not None and argc > hi):
        expected = str(lo) if lo == hi else f"{lo}..{hi if hi is not None else 'many'}"
        raise EvaluationError(
            f"{node.function}() takes {expected} args, got {argc}"
        )
    args = [_eval(arg, env) for arg in node.args]
    try:
        return float(func(*args))
    except EvaluationError:
        raise
    except (OverflowError, ValueError, ZeroDivisionError) as exc:
        raise EvaluationError(f"{node.function}() failed: {exc}") from exc


# --------------------------------------------------------------------------
# Static analysis & compiled expressions
# --------------------------------------------------------------------------


def variables(node: Node) -> Set[str]:
    """Names referenced by an AST, excluding built-in constants.

    The spreadsheet uses this to build its dependency graph.
    """
    found: Set[str] = set()
    _collect(node, found)
    return {name for name in found if name not in CONSTANTS}


def _collect(node: Node, out: Set[str]) -> None:
    if isinstance(node, Name):
        out.add(node.identifier)
    elif isinstance(node, Unary):
        _collect(node.operand, out)
    elif isinstance(node, Binary):
        _collect(node.left, out)
        _collect(node.right, out)
    elif isinstance(node, Ternary):
        _collect(node.condition, out)
        _collect(node.if_true, out)
        _collect(node.if_false, out)
    elif isinstance(node, Call):
        for arg in node.args:
            _collect(arg, out)


def unparse(node: Node) -> str:
    """Render an AST back to (fully parenthesized) source text.

    ``parse(unparse(t))`` evaluates identically to ``t`` — used by the
    web UI to echo stored model equations, and by the property tests.
    """
    if isinstance(node, Num):
        return repr(node.value)
    if isinstance(node, Name):
        return node.identifier
    if isinstance(node, Unary):
        if node.op == "not":
            return f"(not {unparse(node.operand)})"
        return f"({node.op}{unparse(node.operand)})"
    if isinstance(node, Binary):
        if node.op in ("and", "or"):
            return f"({unparse(node.left)} {node.op} {unparse(node.right)})"
        return f"({unparse(node.left)} {node.op} {unparse(node.right)})"
    if isinstance(node, Ternary):
        return (
            f"({unparse(node.condition)} ? {unparse(node.if_true)}"
            f" : {unparse(node.if_false)})"
        )
    if isinstance(node, Call):
        args = ", ".join(unparse(arg) for arg in node.args)
        return f"{node.function}({args})"
    raise EvaluationError(f"cannot unparse {type(node).__name__}")


class Expression:
    """A parsed, reusable expression.

    >>> Expression("bitwidth * c0").evaluate({"bitwidth": 8, "c0": 2e-15})
    1.6e-14
    """

    __slots__ = ("source", "ast", "_variables")

    def __init__(self, source: str):
        self.source = source
        self.ast = parse(source)
        self._variables = frozenset(variables(self.ast))

    @property
    def variables(self) -> frozenset:
        """Free variables (constants excluded)."""
        return self._variables

    def evaluate(self, env: Optional[Mapping[str, float]] = None) -> float:
        return evaluate(self.ast, env)

    def __call__(self, **env: float) -> float:
        return evaluate(self.ast, env)

    def __repr__(self) -> str:
        return f"Expression({self.source!r})"

    def __eq__(self, other) -> bool:
        return isinstance(other, Expression) and other.ast == self.ast

    def __hash__(self) -> int:
        return hash(self.ast)


def compile_expression(source: Union[str, Expression]) -> Expression:
    """Coerce a string (or pass through an Expression) to Expression."""
    if isinstance(source, Expression):
        return source
    return Expression(source)
