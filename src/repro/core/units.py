"""Engineering-notation quantities.

PowerPlay's spreadsheet (Figure 2 / Figure 5 of the paper) displays every
value in engineering notation — ``7.438e-04 W``, ``253 fF``, ``2 MHz`` —
and accepts the same notation in its input forms.  This module provides
the parsing and formatting used throughout the package:

* :func:`parse_quantity` — turn ``"253fF"`` / ``"2 MHz"`` / ``"1.5"``
  into a float in base SI units plus the unit string.
* :func:`format_quantity` — render a float with an SI prefix
  (``0.000253e-9 -> "253 fF"``); :func:`format_eng` for the raw
  engineering mantissa/exponent form the paper's screenshots use.
* :class:`Quantity` — a small value class pairing magnitude and unit,
  with arithmetic that checks unit compatibility.

Only multiplicative SI prefixes are handled; PowerPlay's models are all
expressed in coherent SI units internally (farad, volt, hertz, watt,
second, ampere, meter).
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import UnitError

#: SI prefix -> multiplier.  ``u`` is accepted as a plain-ASCII micro.
SI_PREFIXES = {
    "y": 1e-24,
    "z": 1e-21,
    "a": 1e-18,
    "f": 1e-15,
    "p": 1e-12,
    "n": 1e-9,
    "u": 1e-6,
    "µ": 1e-6,  # micro sign
    "μ": 1e-6,  # greek mu
    "m": 1e-3,
    "k": 1e3,
    "K": 1e3,
    "M": 1e6,
    "G": 1e9,
    "T": 1e12,
    "P": 1e15,
}

#: Ordered prefixes for formatting (exponent -> symbol).
_FORMAT_PREFIXES = [
    (-15, "f"),
    (-12, "p"),
    (-9, "n"),
    (-6, "u"),
    (-3, "m"),
    (0, ""),
    (3, "k"),
    (6, "M"),
    (9, "G"),
    (12, "T"),
]

#: Base units PowerPlay models use.  Anything else is passed through
#: verbatim (the framework accepts user-defined models in any unit).
KNOWN_UNITS = {
    "F",   # farad (capacitance)
    "V",   # volt
    "W",   # watt
    "Hz",  # hertz
    "s",   # second
    "A",   # ampere
    "J",   # joule
    "m",   # meter
    "m2",  # square meter (area)
    "S",   # siemens (transconductance)
    "Ohm", # resistance
    "",    # dimensionless
}

_QUANTITY_RE = re.compile(
    r"""^\s*
        (?P<num>[+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)
        \s*
        (?P<rest>[A-Za-zµμ][A-Za-z0-9µμ]*)?
        \s*$""",
    re.VERBOSE,
)


def parse_quantity(text: str, default_unit: str = "") -> Tuple[float, str]:
    """Parse ``"253 fF"`` into ``(2.53e-13, "F")``.

    The number may carry an SI prefix fused to the unit.  A bare number
    parses with ``default_unit``.  Raises :class:`UnitError` on garbage.

    The prefix/unit split is resolved greedily in favour of a *known*
    unit: ``"mW"`` is milli-watt, but a lone ``"m"`` is meters (not
    milli-nothing), and ``"Hz"`` is hertz (not hecto-``z``).
    """
    if not isinstance(text, str):
        raise UnitError(f"expected a string, got {type(text).__name__}")
    match = _QUANTITY_RE.match(text)
    if match is None:
        raise UnitError(f"cannot parse quantity: {text!r}")
    value = float(match.group("num"))
    rest = match.group("rest") or ""
    if not rest:
        return value, default_unit
    scale, unit = split_prefix(rest)
    return value * scale, unit


def split_prefix(symbol: str) -> Tuple[float, str]:
    """Split a fused prefix+unit symbol like ``"fF"`` or ``"MHz"``.

    Returns ``(multiplier, unit)``.  Resolution rules, in order:

    1. the whole symbol is a known unit (``"Hz"``, ``"m"``) -> no prefix;
    2. first char is a prefix and the remainder is a known unit;
    3. first char is a prefix and the remainder is non-empty -> accept
       the remainder as a user-defined unit;
    4. otherwise the whole symbol is a user-defined unit.
    """
    if symbol in KNOWN_UNITS:
        return 1.0, symbol
    head, tail = symbol[0], symbol[1:]
    if head in SI_PREFIXES and tail in KNOWN_UNITS and tail:
        return SI_PREFIXES[head], tail
    if head in SI_PREFIXES and tail:
        return SI_PREFIXES[head], tail
    # a lone prefix letter is a SPICE-style bare multiplier ("2M" = 2e6),
    # unless it is itself a unit ("2 m" stays meters, caught above).
    if not tail and head in SI_PREFIXES:
        return SI_PREFIXES[head], ""
    return 1.0, symbol


def format_quantity(value: float, unit: str = "", digits: int = 4) -> str:
    """Format ``2.53e-13, "F"`` as ``"253 fF"``.

    Picks the SI prefix that puts the mantissa in ``[1, 1000)``.  Values
    outside the prefix table fall back to plain exponent notation.  Zero,
    NaN and infinities format without a prefix.
    """
    if unit is None:
        unit = ""
    if value == 0 or not math.isfinite(value):
        text = f"{value:g}"
        return f"{text} {unit}".rstrip()
    exponent = math.floor(math.log10(abs(value)) / 3.0) * 3
    for exp, symbol in _FORMAT_PREFIXES:
        if exp == exponent:
            mantissa = value / 10.0**exp
            text = f"{mantissa:.{digits}g}"
            return f"{text} {symbol}{unit}".rstrip()
    return f"{value:.{digits}g} {unit}".rstrip()


def format_eng(value: float, unit: str = "", digits: int = 4) -> str:
    """Format in the paper's screenshot style: ``"7.438e-04 W"``."""
    if unit:
        return f"{value:.{digits}e} {unit}"
    return f"{value:.{digits}e}"


@dataclass(frozen=True)
class Quantity:
    """A magnitude with a unit, in coherent SI base scale.

    Supports the arithmetic PowerPlay's spreadsheet needs: add/subtract
    (same unit required), multiply/divide by scalars, and comparisons.
    Cross-unit multiplication returns a bare float (the caller knows the
    derived unit; PowerPlay models track units informally, as the paper's
    spreadsheet does).
    """

    value: float
    unit: str = ""

    @classmethod
    def parse(cls, text: str, default_unit: str = "") -> "Quantity":
        value, unit = parse_quantity(text, default_unit)
        return cls(value, unit)

    def _check(self, other: "Quantity") -> None:
        if self.unit != other.unit:
            raise UnitError(
                f"incompatible units: {self.unit!r} vs {other.unit!r}"
            )

    def __add__(self, other: "Quantity") -> "Quantity":
        if not isinstance(other, Quantity):
            return NotImplemented
        self._check(other)
        return Quantity(self.value + other.value, self.unit)

    def __sub__(self, other: "Quantity") -> "Quantity":
        if not isinstance(other, Quantity):
            return NotImplemented
        self._check(other)
        return Quantity(self.value - other.value, self.unit)

    def __mul__(self, other):
        if isinstance(other, (int, float)):
            return Quantity(self.value * other, self.unit)
        if isinstance(other, Quantity):
            return self.value * other.value
        return NotImplemented

    __rmul__ = __mul__

    def __truediv__(self, other):
        if isinstance(other, (int, float)):
            return Quantity(self.value / other, self.unit)
        if isinstance(other, Quantity):
            return self.value / other.value
        return NotImplemented

    def __neg__(self) -> "Quantity":
        return Quantity(-self.value, self.unit)

    def __lt__(self, other: "Quantity") -> bool:
        self._check(other)
        return self.value < other.value

    def __le__(self, other: "Quantity") -> bool:
        self._check(other)
        return self.value <= other.value

    def __float__(self) -> float:
        return float(self.value)

    def __str__(self) -> str:
        return format_quantity(self.value, self.unit)

    def eng(self, digits: int = 4) -> str:
        """Engineering (``1.234e-05 W``) rendering, as in Figure 2."""
        return format_eng(self.value, self.unit, digits)


def watts(value: float) -> Quantity:
    """Convenience constructor for power quantities."""
    return Quantity(value, "W")


def farads(value: float) -> Quantity:
    """Convenience constructor for capacitance quantities."""
    return Quantity(value, "F")


def volts(value: float) -> Quantity:
    """Convenience constructor for voltage quantities."""
    return Quantity(value, "V")


def hertz(value: float) -> Quantity:
    """Convenience constructor for frequency quantities."""
    return Quantity(value, "Hz")


def joules(value: float) -> Quantity:
    """Convenience constructor for energy quantities."""
    return Quantity(value, "J")


def parse_float(text: str, default_unit: str = "") -> float:
    """Parse a quantity string and return just the magnitude.

    Unit suffixes are honoured for scale (``"2 MHz"`` -> ``2e6``) but the
    unit itself is discarded — this is what the spreadsheet input forms
    use, since each field's unit is fixed by the model template.
    """
    value, _unit = parse_quantity(text, default_unit)
    return value
