"""Exception hierarchy for the PowerPlay reproduction.

Every error raised by this package derives from :class:`PowerPlayError`
so callers can catch the whole family with a single ``except`` clause.
"""

from __future__ import annotations


class PowerPlayError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class UnitError(PowerPlayError):
    """A quantity string could not be parsed or units are incompatible."""


class ExpressionError(PowerPlayError):
    """An expression failed to parse or evaluate."""


class ParseError(ExpressionError):
    """Syntax error while parsing an expression.

    Carries the offending source text and the character position where
    parsing failed, so web forms can point at the error.
    """

    def __init__(self, message: str, source: str = "", position: int = -1):
        super().__init__(message)
        self.source = source
        self.position = position

    def __str__(self) -> str:  # pragma: no cover - formatting only
        base = super().__str__()
        if self.position >= 0:
            return f"{base} (at position {self.position} in {self.source!r})"
        return base


class EvaluationError(ExpressionError):
    """Runtime error while evaluating an expression (bad name, math error)."""


class ParameterError(PowerPlayError):
    """Invalid parameter definition, value, or lookup."""


class SheetError(PowerPlayError):
    """Spreadsheet structural error (unknown cell, duplicate cell)."""


class CycleError(SheetError):
    """A dependency cycle was found among spreadsheet cells.

    ``cycle`` lists the cell names participating in the cycle, in order.
    """

    def __init__(self, cycle):
        self.cycle = list(cycle)
        super().__init__("dependency cycle: " + " -> ".join(self.cycle))


class ModelError(PowerPlayError):
    """A power/area/timing model was misconfigured or misapplied."""


class DesignError(PowerPlayError):
    """Design hierarchy error (unknown instance, duplicate name)."""


class LibraryError(PowerPlayError):
    """Library lookup or (de)serialization error."""


class CharacterizationError(PowerPlayError):
    """Characterization/fitting failed (degenerate sweep, bad data)."""


class SimulationError(PowerPlayError):
    """Netlist or simulation-level error."""


class NetlistError(SimulationError):
    """Malformed gate netlist (unknown node, bad fanin)."""


class WebError(PowerPlayError):
    """Web application error (bad route, malformed form)."""


class SessionError(WebError):
    """User session error (unknown user, corrupt state file)."""


class RemoteError(WebError):
    """Remote model access failed (unreachable server, bad payload)."""


class TransientRemoteError(RemoteError):
    """A remote failure that is plausibly temporary and worth retrying
    (connection refused/reset, timeout, 5xx status, truncated payload).

    Permanent refusals — unknown model, proprietary entry, malformed
    request — stay plain :class:`RemoteError` and are never retried.
    """


class CircuitOpenError(RemoteError):
    """A circuit breaker is open: the remote has failed repeatedly and
    calls are being skipped fast instead of waiting on a dead host.

    ``retry_after`` is the remaining cooldown in seconds before the
    breaker will allow a half-open probe.
    """

    def __init__(self, message: str, retry_after: float = 0.0):
        super().__init__(message)
        self.retry_after = retry_after


class FaultInjected(PowerPlayError):
    """An artificial fault from the chaos-testing harness
    (:mod:`repro.web.faults`) — never raised in production paths."""


class ExploreError(PowerPlayError):
    """Invalid sweep specification (bad axis, unknown target, a space
    over the configured point cap) or an exploration-engine failure."""


class SurrogateError(ExploreError):
    """Surrogate fit-predict-verify failure: too few training points,
    a degenerate basis no candidate form survives, or a fitted holdout
    error bound worse than the caller's ``--max-error`` budget."""


class RegistryError(PowerPlayError):
    """Federated model-registry error (unknown artifact, malformed wire
    payload, store misuse, an exhausted resolution chain)."""


class IntegrityError(RegistryError):
    """An artifact's content digest does not match its bytes.

    Raised on every read or fetch whose payload fails blake2b
    verification — a corrupt, truncated, or tampered artifact is
    quarantined and never silently used.
    """


class ArtifactConflict(RegistryError):
    """Two different artifacts claim the same (kind, name, version).

    Versions are immutable once published: a conflicting digest is
    rejected and reported, never silently replaced."""


class JobError(ExploreError):
    """Sweep-job persistence error (unknown job, corrupt checkpoint,
    an operation invalid for the job's current state)."""


class StateError(PowerPlayError):
    """Durable state-backend error (unknown backend kind, a backend
    that cannot open its storage, misuse of the document API)."""
