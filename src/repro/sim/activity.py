"""Signal statistics: activities, correlation, stimulus generation.

"In this example, signal correlations are neglected, yielding a
conservatively high power estimate" — PowerPlay's correlated model
variants need correlated stimulus to be characterized against.  This
module provides:

* measurement — per-bit signal probability and transition activity of a
  word stream, plus lag-1 word correlation;
* the *dual-bit-type* view (Landman): low-order bits of real data behave
  like uniform noise (alpha ~ 0.5 transitions), high-order sign/magnitude
  bits follow the word correlation; breakpoints locate the boundary;
* generation — IID uniform words, and lag-1 Gauss-Markov correlated
  words with a target correlation coefficient ``rho``;
* conversion of word streams into the bit-vector stimulus the gate
  simulator consumes.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import SimulationError


@dataclass(frozen=True)
class BitStatistics:
    """Per-bit statistics of a word stream."""

    signal_probability: Tuple[float, ...]     # P(bit = 1), LSB first
    transition_activity: Tuple[float, ...]    # P(bit flips between words)

    @property
    def bits(self) -> int:
        return len(self.signal_probability)

    def average_activity(self) -> float:
        if not self.transition_activity:
            return 0.0
        return sum(self.transition_activity) / len(self.transition_activity)


def measure_bits(words: Sequence[int], bits: int) -> BitStatistics:
    """Measure per-bit signal probability and transition activity."""
    if bits < 1:
        raise SimulationError("bits must be >= 1")
    if len(words) < 2:
        raise SimulationError("need at least two words to measure activity")
    ones = [0] * bits
    flips = [0] * bits
    previous = None
    for word in words:
        for bit in range(bits):
            value = (word >> bit) & 1
            ones[bit] += value
            if previous is not None and ((previous >> bit) & 1) != value:
                flips[bit] += 1
        previous = word
    count = len(words)
    return BitStatistics(
        signal_probability=tuple(one / count for one in ones),
        transition_activity=tuple(flip / (count - 1) for flip in flips),
    )


def word_correlation(words: Sequence[int]) -> float:
    """Lag-1 Pearson correlation of a word stream."""
    if len(words) < 3:
        raise SimulationError("need at least three words for correlation")
    x = [float(word) for word in words[:-1]]
    y = [float(word) for word in words[1:]]
    n = len(x)
    mean_x = sum(x) / n
    mean_y = sum(y) / n
    cov = sum((a - mean_x) * (b - mean_y) for a, b in zip(x, y)) / n
    var_x = sum((a - mean_x) ** 2 for a in x) / n
    var_y = sum((b - mean_y) ** 2 for b in y) / n
    if var_x <= 0 or var_y <= 0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


@dataclass(frozen=True)
class DualBitType:
    """Landman's dual-bit-type decomposition of a word stream.

    Bits below ``breakpoint_low`` behave as uniform white noise; bits
    above ``breakpoint_high`` behave as sign bits following the word
    correlation; bits between interpolate.
    """

    breakpoint_low: int
    breakpoint_high: int
    lsb_activity: float
    msb_activity: float

    def activity_of_bit(self, bit: int) -> float:
        if bit <= self.breakpoint_low:
            return self.lsb_activity
        if bit >= self.breakpoint_high:
            return self.msb_activity
        span = self.breakpoint_high - self.breakpoint_low
        fraction = (bit - self.breakpoint_low) / span
        return self.lsb_activity + fraction * (self.msb_activity - self.lsb_activity)


def dual_bit_type(statistics: BitStatistics, threshold: float = 0.1) -> DualBitType:
    """Fit the dual-bit-type breakpoints from measured activities.

    ``breakpoint_low`` is the last bit whose activity stays within
    ``threshold`` (relative) of the LSB region average; ``breakpoint_high``
    the first bit within ``threshold`` of the MSB region average.
    """
    activities = statistics.transition_activity
    bits = len(activities)
    if bits < 2:
        raise SimulationError("dual-bit-type needs at least 2 bits")
    lsb = activities[0]
    msb = activities[-1]
    low = 0
    for bit in range(bits):
        if lsb == 0 or abs(activities[bit] - lsb) > threshold * max(lsb, 1e-12):
            break
        low = bit
    high = bits - 1
    for bit in range(bits - 1, -1, -1):
        if msb == 0 or abs(activities[bit] - msb) > threshold * max(msb, 1e-12):
            break
        high = bit
    if high <= low:
        high = min(bits - 1, low + 1)
    return DualBitType(
        breakpoint_low=low,
        breakpoint_high=high,
        lsb_activity=lsb,
        msb_activity=msb,
    )


# ---------------------------------------------------------------------------
# Stimulus generation
# ---------------------------------------------------------------------------


def uniform_words(count: int, bits: int, seed: int = 1) -> List[int]:
    """IID uniform words in [0, 2^bits)."""
    if count < 1 or bits < 1:
        raise SimulationError("count and bits must be >= 1")
    rng = random.Random(seed)
    limit = (1 << bits) - 1
    return [rng.randint(0, limit) for _ in range(count)]


def correlated_words(
    count: int, bits: int, rho: float, seed: int = 1
) -> List[int]:
    """Lag-1 Gauss-Markov words with target correlation ``rho``.

    ``x[n] = rho * x[n-1] + sqrt(1 - rho^2) * noise`` around mid-scale,
    clamped to the representable range — the standard model for speech/
    video-like data in power characterization.
    """
    if count < 1 or bits < 1:
        raise SimulationError("count and bits must be >= 1")
    if not -1.0 < rho < 1.0:
        raise SimulationError(f"correlation {rho} outside (-1, 1)")
    rng = random.Random(seed)
    full_scale = (1 << bits) - 1
    mid = full_scale / 2.0
    sigma = full_scale / 6.0  # +-3 sigma spans the range
    innovation = math.sqrt(max(0.0, 1.0 - rho * rho))
    value = 0.0
    words: List[int] = []
    for _ in range(count):
        value = rho * value + innovation * rng.gauss(0.0, 1.0)
        sample = int(round(mid + sigma * value))
        words.append(max(0, min(full_scale, sample)))
    return words


def words_to_vectors(
    words: Sequence[int], bits: int, prefix: str = "a"
) -> List[Dict[str, int]]:
    """Expand a word stream into gate-simulator input vectors."""
    vectors: List[Dict[str, int]] = []
    for word in words:
        vectors.append(
            {f"{prefix}{bit}": (word >> bit) & 1 for bit in range(bits)}
        )
    return vectors


def merge_vectors(*streams: Sequence[Mapping[str, int]]) -> List[Dict[str, int]]:
    """Zip several vector streams (different prefixes) cycle by cycle."""
    if not streams:
        return []
    length = min(len(stream) for stream in streams)
    merged: List[Dict[str, int]] = []
    for index in range(length):
        vector: Dict[str, int] = {}
        for stream in streams:
            overlap = set(vector) & set(stream[index])
            if overlap:
                raise SimulationError(
                    f"stimulus streams overlap on {sorted(overlap)[:3]}"
                )
            vector.update(stream[index])
        merged.append(vector)
    return merged


def operand_vectors(
    count: int,
    bits: int,
    correlation: float = 0.0,
    seed: int = 1,
    prefixes: Sequence[str] = ("a", "b"),
) -> List[Dict[str, int]]:
    """Two-operand stimulus for adders/multipliers/comparators.

    ``correlation = 0`` gives IID uniform operands (the paper's
    "non-correlated inputs"); otherwise each operand stream is
    Gauss-Markov with the given lag-1 rho.
    """
    streams = []
    for offset, prefix in enumerate(prefixes):
        if correlation == 0.0:
            words = uniform_words(count, bits, seed + offset)
        else:
            words = correlated_words(count, bits, correlation, seed + offset)
        streams.append(words_to_vectors(words, bits, prefix))
    return merge_vectors(*streams)
