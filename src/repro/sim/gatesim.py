"""Switch-level capacitance simulator.

The paper's library is characterized empirically: "Landman uses
empirical analysis to provide a 'black box model' ... of the capacitance
switched in a digital hardware module."  That needs something to
measure.  The original work measured SPICE decks of the UCB 1.2 um
library; our substitute is this gate-level simulator, which:

* evaluates a combinational+register netlist cycle by cycle,
* attributes a physical capacitance to every net (from gate type and
  fanout), and
* accumulates the capacitance actually *switched* per cycle — including
  the clock load of every register, so "the clock capacitance is
  included in the model of each block" holds for characterized cells.

Glitching: gates are evaluated in topological order once per cycle, so
static hazards do not propagate — the count is the zero-delay switched
capacitance.  A configurable ``glitch_factor`` per netlist inflates
deep-logic nets to approximate the glitch energy Landman's black-box
coefficients absorb.

:mod:`repro.library.characterize` sweeps these simulations over
parameter ranges and fits the paper's model forms (EQ 3, 7, 20...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from ..errors import NetlistError, SimulationError
from ..obs import span

#: Supported gate types -> expected input count (None = 2+).
GATE_TYPES: Dict[str, Optional[int]] = {
    "not": 1,
    "buf": 1,
    "and": None,
    "or": None,
    "nand": None,
    "nor": None,
    "xor": None,
    "xnor": None,
    "mux2": 3,  # (a, b, sel) -> sel ? b : a
}

#: Unit capacitances (farads) for the synthetic 1.2 um-class process.
C_GATE_INPUT = 10e-15       # per gate input pin
C_OUTPUT_BASE = 8e-15       # gate output diffusion
C_WIRE_PER_FANOUT = 3e-15   # local wiring per driven pin
C_DFF_CLOCK = 14e-15        # clock pin of one register bit
C_PRIMARY_INPUT = 12e-15    # pad/driver load on primary inputs


@dataclass
class Gate:
    """One logic gate: ``output = kind(inputs)``."""

    kind: str
    output: str
    inputs: Tuple[str, ...]

    def evaluate(self, values: Mapping[str, int]) -> int:
        try:
            ins = [values[name] for name in self.inputs]
        except KeyError as exc:
            raise SimulationError(
                f"gate {self.output!r}: undriven input {exc.args[0]!r}"
            ) from None
        kind = self.kind
        if kind == "not":
            return 1 - ins[0]
        if kind == "buf":
            return ins[0]
        if kind == "and":
            return int(all(ins))
        if kind == "nand":
            return 1 - int(all(ins))
        if kind == "or":
            return int(any(ins))
        if kind == "nor":
            return 1 - int(any(ins))
        if kind == "xor":
            result = 0
            for value in ins:
                result ^= value
            return result
        if kind == "xnor":
            result = 0
            for value in ins:
                result ^= value
            return 1 - result
        if kind == "mux2":
            a, b, sel = ins
            return b if sel else a
        raise SimulationError(f"unknown gate kind {kind!r}")


class Netlist:
    """A synchronous gate netlist: primary inputs, gates, and registers.

    Every net is driven exactly once (by an input, a gate, or a
    register's Q).  Register D inputs sample at the end of each cycle.
    """

    def __init__(self, name: str = "netlist"):
        self.name = name
        self.inputs: List[str] = []
        self.outputs: List[str] = []
        self.gates: List[Gate] = []
        self.registers: List[Tuple[str, str]] = []  # (q_net, d_net)
        self._drivers: Dict[str, str] = {}          # net -> "input"/"gate"/"dff"
        self._order: Optional[List[Gate]] = None

    # -- construction ------------------------------------------------------

    def add_input(self, name: str) -> str:
        self._claim(name, "input")
        self.inputs.append(name)
        return name

    def add_gate(self, kind: str, output: str, inputs: Sequence[str]) -> str:
        if kind not in GATE_TYPES:
            raise NetlistError(f"unknown gate kind {kind!r}")
        expected = GATE_TYPES[kind]
        if expected is not None and len(inputs) != expected:
            raise NetlistError(
                f"gate {kind!r} takes {expected} inputs, got {len(inputs)}"
            )
        if expected is None and len(inputs) < 2:
            raise NetlistError(f"gate {kind!r} takes at least 2 inputs")
        self._claim(output, "gate")
        self.gates.append(Gate(kind, output, tuple(inputs)))
        self._order = None
        return output

    def add_register(self, q_net: str, d_net: str) -> str:
        self._claim(q_net, "dff")
        self.registers.append((q_net, d_net))
        return q_net

    def mark_output(self, name: str) -> None:
        self.outputs.append(name)

    def _claim(self, net: str, driver: str) -> None:
        if not net:
            raise NetlistError("empty net name")
        if net in self._drivers:
            raise NetlistError(
                f"net {net!r} already driven by a {self._drivers[net]}"
            )
        self._drivers[net] = driver

    # -- structure ------------------------------------------------------------

    def nets(self) -> List[str]:
        return list(self._drivers)

    def fanout(self) -> Dict[str, int]:
        counts: Dict[str, int] = {net: 0 for net in self._drivers}
        for gate in self.gates:
            for name in gate.inputs:
                if name in counts:
                    counts[name] += 1
        for _q, d_net in self.registers:
            if d_net in counts:
                counts[d_net] += 1
        return counts

    def net_capacitance(self) -> Dict[str, float]:
        """Physical capacitance of every net, from driver + fanout."""
        fanout = self.fanout()
        caps: Dict[str, float] = {}
        for net, driver in self._drivers.items():
            load = fanout.get(net, 0) * (C_GATE_INPUT + C_WIRE_PER_FANOUT)
            if driver == "input":
                caps[net] = C_PRIMARY_INPUT + load
            else:
                caps[net] = C_OUTPUT_BASE + load
        return caps

    def logic_depth(self) -> Dict[str, int]:
        """Levels from inputs/registers, for glitch weighting."""
        depth: Dict[str, int] = {net: 0 for net in self.inputs}
        for q_net, _d in self.registers:
            depth[q_net] = 0
        for gate in self.topological_gates():
            depth[gate.output] = 1 + max(
                (depth.get(name, 0) for name in gate.inputs), default=0
            )
        return depth

    def topological_gates(self) -> List[Gate]:
        """Gates ordered so every input is computed first.

        Register Q nets are sources.  Raises on combinational cycles or
        undriven nets.
        """
        if self._order is not None:
            return self._order
        producers: Dict[str, Gate] = {gate.output: gate for gate in self.gates}
        sources: Set[str] = set(self.inputs) | {q for q, _ in self.registers}
        state: Dict[str, int] = {}
        order: List[Gate] = []
        path: List[str] = []

        def visit(net: str) -> None:
            if net in sources:
                return
            mark = state.get(net)
            if mark == 1:
                return
            if mark == 0:
                cycle = path[path.index(net):] + [net]
                raise NetlistError(
                    f"combinational cycle: {' -> '.join(cycle)}"
                )
            gate = producers.get(net)
            if gate is None:
                raise NetlistError(f"net {net!r} is referenced but undriven")
            state[net] = 0
            path.append(net)
            for name in gate.inputs:
                visit(name)
            path.pop()
            state[net] = 1
            order.append(gate)

        for gate in self.gates:
            visit(gate.output)
        for _q, d_net in self.registers:
            visit(d_net)
        for net in self.outputs:
            visit(net)
        self._order = order
        return order

    def evaluate(
        self, input_values: Mapping[str, int], state: Mapping[str, int]
    ) -> Dict[str, int]:
        """One combinational settle: all net values for this cycle."""
        values: Dict[str, int] = {}
        for name in self.inputs:
            if name not in input_values:
                raise SimulationError(f"missing value for input {name!r}")
            values[name] = 1 if input_values[name] else 0
        for q_net, _d in self.registers:
            values[q_net] = state.get(q_net, 0)
        for gate in self.topological_gates():
            values[gate.output] = gate.evaluate(values)
        return values

    def __repr__(self) -> str:
        return (
            f"Netlist({self.name!r}, {len(self.inputs)} in, "
            f"{len(self.gates)} gates, {len(self.registers)} regs)"
        )


@dataclass
class SimulationResult:
    """Outcome of a multi-cycle capacitance simulation."""

    netlist_name: str
    cycles: int
    switched_capacitance: float          # farads, summed over all cycles
    clock_capacitance: float             # included register clock load
    per_net: Dict[str, float] = field(default_factory=dict)
    transitions: int = 0

    @property
    def capacitance_per_cycle(self) -> float:
        """The C_T a Landman characterization fits against."""
        if self.cycles == 0:
            return 0.0
        return self.switched_capacitance / self.cycles

    def energy(self, vdd: float) -> float:
        """Total energy at a supply voltage, joules (rail-to-rail)."""
        if vdd <= 0:
            raise SimulationError(f"VDD {vdd} must be positive")
        return self.switched_capacitance * vdd * vdd

    def power(self, vdd: float, frequency: float) -> float:
        """Average power when cycles run at ``frequency``."""
        if frequency <= 0:
            raise SimulationError("frequency must be positive")
        if self.cycles == 0:
            return 0.0
        return self.energy(vdd) * frequency / self.cycles


def simulate(
    netlist: Netlist,
    vectors: Sequence[Mapping[str, int]],
    glitch_factor: float = 0.0,
) -> SimulationResult:
    """Run ``vectors`` through the netlist and count switched capacitance.

    ``glitch_factor`` adds ``factor * (depth - 1)`` extra weighted
    transitions on nets deeper than one level — a first-order stand-in
    for the hazard activity a zero-delay evaluation misses (Landman's
    empirical coefficients include glitching; ours should too).
    """
    if glitch_factor < 0:
        raise SimulationError("glitch_factor cannot be negative")
    with span(
        "gatesim.simulate",
        netlist=netlist.name,
        cycles=len(vectors),
        gates=len(netlist.gates),
    ) as sp:
        result = _simulate_zero_delay(netlist, vectors, glitch_factor)
        sp.set(
            transitions=result.transitions,
            switched_pf=round(result.switched_capacitance * 1e12, 3),
        )
        return result


def _simulate_zero_delay(
    netlist: Netlist,
    vectors: Sequence[Mapping[str, int]],
    glitch_factor: float,
) -> SimulationResult:
    caps = netlist.net_capacitance()
    depth = netlist.logic_depth() if glitch_factor > 0 else {}
    state: Dict[str, int] = {q: 0 for q, _ in netlist.registers}
    previous: Optional[Dict[str, int]] = None
    switched = 0.0
    clock_cap = 0.0
    transitions = 0
    per_net: Dict[str, float] = {}
    for vector in vectors:
        values = netlist.evaluate(vector, state)
        if previous is not None:
            for net, value in values.items():
                if previous.get(net) != value:
                    weight = 1.0
                    if glitch_factor > 0:
                        weight += glitch_factor * max(0, depth.get(net, 0) - 1)
                    contribution = caps[net] * weight
                    switched += contribution
                    per_net[net] = per_net.get(net, 0.0) + contribution
                    transitions += 1
        # clock load: every register's clock pin toggles twice per cycle
        # (rise+fall) -> one full swing charge per cycle equivalent.
        cycle_clock = len(netlist.registers) * C_DFF_CLOCK
        switched += cycle_clock
        clock_cap += cycle_clock
        # registers capture D for next cycle
        state = {q: values[d] for q, d in netlist.registers}
        previous = values
    return SimulationResult(
        netlist_name=netlist.name,
        cycles=len(vectors),
        switched_capacitance=switched,
        clock_capacitance=clock_cap,
        per_net=per_net,
        transitions=transitions,
    )


def random_vectors(
    inputs: Sequence[str],
    cycles: int,
    seed: int = 1,
    probability: float = 0.5,
) -> List[Dict[str, int]]:
    """IID random stimulus with per-bit signal probability."""
    import random as _random

    if not 0.0 <= probability <= 1.0:
        raise SimulationError(f"probability {probability} outside [0, 1]")
    rng = _random.Random(seed)
    return [
        {name: 1 if rng.random() < probability else 0 for name in inputs}
        for _ in range(cycles)
    ]


def simulate_unit_delay(
    netlist: Netlist,
    vectors: Sequence[Mapping[str, int]],
) -> SimulationResult:
    """Event-driven simulation with unit gate delays — real glitches.

    Zero-delay evaluation (:func:`simulate`) settles each cycle in one
    topological pass, so static hazards never appear; Landman's
    empirical coefficients *include* glitch energy, which is why
    :func:`simulate` offers the ``glitch_factor`` approximation.  This
    variant measures the hazards instead: every gate takes one time
    unit, input changes schedule re-evaluations, and **every** output
    transition — including transient ones that settle back — switches
    the node's capacitance.

    Deep reconvergent logic (array multipliers, carry chains) shows
    substantially more switched capacitance here than under zero delay;
    shallow logic shows almost none extra.  The difference *is* the
    glitch energy.
    """
    with span(
        "gatesim.simulate_unit_delay",
        netlist=netlist.name,
        cycles=len(vectors),
        gates=len(netlist.gates),
    ) as sp:
        result = _simulate_unit_delay(netlist, vectors)
        sp.set(
            transitions=result.transitions,
            switched_pf=round(result.switched_capacitance * 1e12, 3),
        )
        return result


def _simulate_unit_delay(
    netlist: Netlist,
    vectors: Sequence[Mapping[str, int]],
) -> SimulationResult:
    caps = netlist.net_capacitance()
    order = netlist.topological_gates()
    consumers: Dict[str, List[Gate]] = {}
    for gate in order:
        for name in gate.inputs:
            consumers.setdefault(name, []).append(gate)

    state: Dict[str, int] = {q: 0 for q, _ in netlist.registers}
    values: Dict[str, int] = {}
    switched = 0.0
    clock_cap = 0.0
    transitions = 0
    per_net: Dict[str, float] = {}
    first_cycle = True

    for vector in vectors:
        # compute the new source values for this cycle
        pending: Dict[str, int] = {}
        for name in netlist.inputs:
            if name not in vector:
                raise SimulationError(f"missing value for input {name!r}")
            pending[name] = 1 if vector[name] else 0
        for q_net, _d in netlist.registers:
            pending[q_net] = state.get(q_net, 0)

        if first_cycle:
            # settle silently from all-X: one zero-delay pass, no counting
            values.update(pending)
            for gate in order:
                values[gate.output] = gate.evaluate(values)
            first_cycle = False
        else:
            # event queue: gates (by output net) to re-evaluate per step
            producers = {gate.output: gate for gate in order}
            wave: Dict[str, None] = {}
            for name, value in pending.items():
                if values.get(name) != value:
                    values[name] = value
                    contribution = caps[name]
                    switched += contribution
                    per_net[name] = per_net.get(name, 0.0) + contribution
                    transitions += 1
                    for gate in consumers.get(name, ()):
                        wave[gate.output] = None
            guard = 0
            while wave:
                guard += 1
                if guard > 10 * max(1, len(netlist.gates)):
                    raise SimulationError(
                        "unit-delay simulation did not settle — "
                        "oscillating combinational logic?"
                    )
                next_wave: Dict[str, None] = {}
                # evaluate this time step against a frozen snapshot so
                # simultaneous events are ordered consistently
                updates: List[Tuple[str, int]] = []
                for output in wave:
                    gate = producers[output]
                    new_value = gate.evaluate(values)
                    if values.get(output) != new_value:
                        updates.append((output, new_value))
                for name, value in updates:
                    values[name] = value
                    contribution = caps[name]
                    switched += contribution
                    per_net[name] = per_net.get(name, 0.0) + contribution
                    transitions += 1
                    for gate in consumers.get(name, ()):
                        next_wave[gate.output] = None
                wave = next_wave

        # clock load, as in the zero-delay mode
        cycle_clock = len(netlist.registers) * C_DFF_CLOCK
        switched += cycle_clock
        clock_cap += cycle_clock
        # registers capture the settled D values
        state = {q: values[d] for q, d in netlist.registers}

    return SimulationResult(
        netlist_name=netlist.name,
        cycles=len(vectors),
        switched_capacitance=switched,
        clock_capacitance=clock_cap,
        per_net=per_net,
        transitions=transitions,
    )


def glitch_energy_fraction(
    netlist: Netlist,
    vectors: Sequence[Mapping[str, int]],
) -> float:
    """Fraction of switched capacitance due to hazards.

    ``(unit_delay - zero_delay) / unit_delay`` over the same stimulus,
    clock load excluded from both sides.
    """
    zero = simulate(netlist, vectors, glitch_factor=0.0)
    unit = simulate_unit_delay(netlist, vectors)
    zero_data = zero.switched_capacitance - zero.clock_capacitance
    unit_data = unit.switched_capacitance - unit.clock_capacitance
    if unit_data <= 0:
        return 0.0
    return max(0.0, (unit_data - zero_data) / unit_data)
