"""Vector-quantization codec and the two luminance-chip architectures.

The paper's worked example (Figures 1-3): a real-time video
decompression chip decodes an 8-bit index into 16 six-bit luminance
words through a memory look-up table, with ping-pong index buffers in
front.  This module provides:

* :class:`Codebook` — the 256-entry, 16-word LUT, trainable by k-means
  (Gersho-style generalized Lloyd) on synthetic video, or built
  deterministically;
* :func:`encode` / :func:`decode` — the codec proper, with
  reconstruction-quality metrics via :mod:`repro.sim.traces`;
* :class:`LuminanceChip` — a functional simulator of the decompression
  datapath, parameterized by ``words_per_access`` so that 1 reproduces
  Figure 1 and 4 reproduces Figure 3 (and anything up to the block size
  generalizes the comparison, which the memory-partition ablation
  sweeps);
* access *counting*: per-component access totals over simulated frames,
  and the derived access **rates** that the paper quotes — pixel rate
  ``f = 2 MHz``, buffer reads at ``f/16``, buffer writes at ``f/32``.

These counts are what a PowerPlay design multiplies by energy/access —
the step "PowerPlay multiplied the resulting energy/operation by the
estimated number of accesses of each resource".
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SimulationError
from .traces import (
    DISPLAY_FPS,
    PIXEL_DEPTH,
    SCREEN_HEIGHT,
    SCREEN_WIDTH,
    SOURCE_FPS,
    Frame,
    VideoConfig,
    VideoSource,
    blocks_to_frame,
    frame_to_blocks,
)

#: The paper's block size: one 8-bit index covers 16 pixels.
BLOCK_SIZE = 16
CODEBOOK_ENTRIES = 256


class Codebook:
    """The decompression look-up table: entries x block_size words."""

    def __init__(self, entries: Sequence[Sequence[int]], depth: int = PIXEL_DEPTH):
        if not entries:
            raise SimulationError("codebook cannot be empty")
        length = len(entries[0])
        full_scale = (1 << depth) - 1
        table: List[Tuple[int, ...]] = []
        for row in entries:
            if len(row) != length:
                raise SimulationError("codebook entries differ in length")
            for value in row:
                if not 0 <= value <= full_scale:
                    raise SimulationError(
                        f"codeword value {value} outside 0..{full_scale}"
                    )
            table.append(tuple(int(v) for v in row))
        self._table = table
        self.depth = depth

    @property
    def size(self) -> int:
        return len(self._table)

    @property
    def block_size(self) -> int:
        return len(self._table[0])

    @property
    def index_bits(self) -> int:
        return max(1, math.ceil(math.log2(self.size)))

    def __getitem__(self, index: int) -> Tuple[int, ...]:
        if not 0 <= index < self.size:
            raise SimulationError(f"index {index} outside codebook")
        return self._table[index]

    def nearest(self, vector: Sequence[int]) -> int:
        """Index of the closest codeword (squared-error metric)."""
        if len(vector) != self.block_size:
            raise SimulationError(
                f"vector length {len(vector)} != block size {self.block_size}"
            )
        array = np.asarray(self._table, dtype=np.float64)
        target = np.asarray(vector, dtype=np.float64)
        distances = np.sum((array - target) ** 2, axis=1)
        return int(np.argmin(distances))

    # -- construction ---------------------------------------------------

    @classmethod
    def uniform(
        cls,
        entries: int = CODEBOOK_ENTRIES,
        block_size: int = BLOCK_SIZE,
        depth: int = PIXEL_DEPTH,
    ) -> "Codebook":
        """Deterministic codebook: flat fields plus left/right ramps.

        Good enough for access counting and for tests that must not pay
        for k-means training.
        """
        full_scale = (1 << depth) - 1
        table: List[List[int]] = []
        flats = entries // 2
        ramps = entries - flats
        for i in range(flats):
            level = round(i * full_scale / max(1, flats - 1))
            table.append([level] * block_size)
        for i in range(ramps):
            start = round((i / max(1, ramps - 1)) * full_scale)
            end = full_scale - start
            table.append(
                [
                    max(0, min(full_scale,
                               round(start + (end - start) * j / (block_size - 1))))
                    for j in range(block_size)
                ]
            )
        return cls(table[:entries], depth)

    @classmethod
    def train(
        cls,
        vectors: Sequence[Sequence[int]],
        entries: int = CODEBOOK_ENTRIES,
        depth: int = PIXEL_DEPTH,
        iterations: int = 10,
        seed: int = 3,
    ) -> "Codebook":
        """Generalized Lloyd (k-means) training on sample vectors."""
        if len(vectors) < entries:
            raise SimulationError(
                f"need at least {entries} training vectors, got {len(vectors)}"
            )
        data = np.asarray(vectors, dtype=np.float64)
        rng = np.random.default_rng(seed)
        centers = data[rng.choice(len(data), size=entries, replace=False)]
        for _ in range(iterations):
            distances = (
                np.sum(data**2, axis=1)[:, None]
                - 2.0 * data @ centers.T
                + np.sum(centers**2, axis=1)[None, :]
            )
            assignment = np.argmin(distances, axis=1)
            for k in range(entries):
                members = data[assignment == k]
                if len(members):
                    centers[k] = members.mean(axis=0)
                else:  # dead codeword: re-seed on a random sample
                    centers[k] = data[rng.integers(0, len(data))]
        full_scale = (1 << depth) - 1
        table = np.clip(np.rint(centers), 0, full_scale).astype(int)
        return cls(table.tolist(), depth)


def encode(frame: Frame, codebook: Codebook) -> List[int]:
    """Compress a frame to one index per block (the transmitter side)."""
    blocks = frame_to_blocks(frame, codebook.block_size)
    array = np.asarray(codebook._table, dtype=np.float64)
    data = np.asarray(blocks, dtype=np.float64)
    distances = (
        np.sum(data**2, axis=1)[:, None]
        - 2.0 * data @ array.T
        + np.sum(array**2, axis=1)[None, :]
    )
    return [int(i) for i in np.argmin(distances, axis=1)]


def decode(indices: Sequence[int], codebook: Codebook, width: int) -> Frame:
    """Reconstruct a frame from block indices (what the chip does)."""
    vectors = [list(codebook[index]) for index in indices]
    return blocks_to_frame(vectors, width)


# ---------------------------------------------------------------------------
# The luminance decompression chip
# ---------------------------------------------------------------------------


@dataclass
class AccessCounts:
    """Per-component access totals accumulated by the chip simulator."""

    lut_reads: int = 0
    read_bank_reads: int = 0
    write_bank_writes: int = 0
    output_register_loads: int = 0
    output_mux_selects: int = 0
    pixels_out: int = 0
    frames_displayed: int = 0
    frames_received: int = 0

    def merged(self, other: "AccessCounts") -> "AccessCounts":
        return AccessCounts(
            lut_reads=self.lut_reads + other.lut_reads,
            read_bank_reads=self.read_bank_reads + other.read_bank_reads,
            write_bank_writes=self.write_bank_writes + other.write_bank_writes,
            output_register_loads=self.output_register_loads
            + other.output_register_loads,
            output_mux_selects=self.output_mux_selects + other.output_mux_selects,
            pixels_out=self.pixels_out + other.pixels_out,
            frames_displayed=self.frames_displayed + other.frames_displayed,
            frames_received=self.frames_received + other.frames_received,
        )


class LuminanceChip:
    """Functional model of the decompression datapath.

    ``words_per_access = 1`` is the Figure 1 architecture: the LUT is
    read once per pixel.  ``words_per_access = 4`` is Figure 3: each LUT
    access yields four words, a 4:1 multiplexer selects the current
    pixel, and only the mux + output register run at the full pixel
    rate.  Any divisor of the block size is accepted — the generalized
    trade-off the memory-partition ablation sweeps.

    Ping-pong buffering: indices of the incoming frame go to the write
    bank while the read bank feeds the display; banks swap every
    received frame.  The display runs at ``display_fps`` while video
    arrives at ``source_fps``, so each received frame is displayed
    ``display_fps / source_fps`` times — the origin of the paper's
    read = f/16 vs write = f/32 asymmetry.
    """

    def __init__(
        self,
        codebook: Optional[Codebook] = None,
        words_per_access: int = 1,
        width: int = SCREEN_WIDTH,
        height: int = SCREEN_HEIGHT,
        display_fps: int = DISPLAY_FPS,
        source_fps: int = SOURCE_FPS,
    ):
        self.codebook = codebook or Codebook.uniform()
        block = self.codebook.block_size
        if words_per_access < 1 or block % words_per_access:
            raise SimulationError(
                f"words_per_access {words_per_access} must divide "
                f"block size {block}"
            )
        if width % block:
            raise SimulationError(
                f"screen width {width} not a multiple of block {block}"
            )
        if display_fps % source_fps:
            raise SimulationError(
                "display rate must be an integer multiple of source rate"
            )
        self.words_per_access = words_per_access
        self.width = width
        self.height = height
        self.display_fps = display_fps
        self.source_fps = source_fps
        self.counts = AccessCounts()
        self._banks: List[List[int]] = [[], []]
        self._read_bank = 0

    # -- derived quantities ---------------------------------------------

    @property
    def block_size(self) -> int:
        return self.codebook.block_size

    @property
    def blocks_per_frame(self) -> int:
        return (self.width * self.height) // self.block_size

    @property
    def pixel_rate(self) -> float:
        """f: the rate pixels must reach the screen (Hz)."""
        return float(self.width * self.height * self.display_fps)

    @property
    def repeats_per_source_frame(self) -> int:
        return self.display_fps // self.source_fps

    @property
    def bank_words(self) -> int:
        """Index words one ping-pong bank stores (2048 in the paper)."""
        return self.blocks_per_frame

    @property
    def lut_words(self) -> int:
        """Addressable LUT words for this organization."""
        return self.codebook.size * (self.block_size // self.words_per_access)

    @property
    def lut_bits(self) -> int:
        """Word width of the LUT for this organization."""
        return self.codebook.depth * self.words_per_access

    # -- operation ----------------------------------------------------------

    def receive_frame(self, frame: Frame) -> List[int]:
        """Encode an incoming frame into the write bank; swap banks.

        Returns the stored indices (for test inspection).  Counts one
        write-bank store per block index.
        """
        indices = encode(frame, self.codebook)
        if len(indices) != self.blocks_per_frame:
            raise SimulationError("encoded frame has wrong block count")
        write_bank = 1 - self._read_bank
        self._banks[write_bank] = indices
        self.counts.write_bank_writes += len(indices)
        self.counts.frames_received += 1
        self._read_bank = write_bank
        return indices

    def display_frame(self) -> Frame:
        """Decompress the read bank once, counting every access."""
        indices = self._banks[self._read_bank]
        if not indices:
            raise SimulationError("no frame received yet")
        words_out: List[List[int]] = []
        accesses_per_block = self.block_size // self.words_per_access
        for index in indices:
            self.counts.read_bank_reads += 1
            codeword = self.codebook[index]
            block_values: List[int] = []
            for access in range(accesses_per_block):
                self.counts.lut_reads += 1
                start = access * self.words_per_access
                group = codeword[start : start + self.words_per_access]
                for position, value in enumerate(group):
                    if self.words_per_access > 1:
                        self.counts.output_mux_selects += 1
                    self.counts.output_register_loads += 1
                    self.counts.pixels_out += 1
                    block_values.append(value)
            words_out.append(block_values)
        self.counts.frames_displayed += 1
        return blocks_to_frame(words_out, self.width)

    def run(self, frames: Iterable[Frame]) -> List[Frame]:
        """Pipe source frames through: receive, then display each
        ``display_fps/source_fps`` times.  Returns the displayed frames
        of the *last* source frame (reconstruction check)."""
        displayed: List[Frame] = []
        for frame in frames:
            self.receive_frame(frame)
            displayed = [
                self.display_frame() for _ in range(self.repeats_per_source_frame)
            ]
        return displayed

    # -- the numbers PowerPlay needs --------------------------------------

    def access_rates(self) -> Dict[str, float]:
        """Average access frequency (Hz) of each component.

        Derived from the counters over simulated display time, so for
        the paper's parameters they converge to: LUT at ``f`` (arch 1)
        or ``f/4`` (arch 2); read bank at ``f/16``; write bank at
        ``f/32``; register and mux at ``f``.
        """
        if self.counts.frames_displayed == 0:
            raise SimulationError("run the chip before asking for rates")
        elapsed = self.counts.frames_displayed / self.display_fps
        c = self.counts
        return {
            "lut": c.lut_reads / elapsed,
            "read_bank": c.read_bank_reads / elapsed,
            "write_bank": c.write_bank_writes / elapsed,
            "output_register": c.output_register_loads / elapsed,
            "output_mux": c.output_mux_selects / elapsed,
            "pixel": c.pixels_out / elapsed,
        }

    def expected_rates(self) -> Dict[str, float]:
        """Closed-form rates from the architecture parameters alone."""
        f = self.pixel_rate
        return {
            "lut": f / self.words_per_access,
            "read_bank": f / self.block_size,
            "write_bank": f / (self.block_size * self.repeats_per_source_frame),
            "output_register": f,
            "output_mux": f if self.words_per_access > 1 else 0.0,
            "pixel": f,
        }
