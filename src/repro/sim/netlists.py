"""Generators for the structural netlists the characterization flow uses.

Each generator returns a :class:`~repro.sim.gatesim.Netlist` whose input
naming convention the stimulus helpers understand (``a0..aN``,
``b0..bN`` for operands).  These are the circuits the original authors
would have had as library layouts; sweeping their size parameter and
fitting switched capacitance against it reproduces the Landman
characterization (EQ 3 for adders, EQ 20 for the multiplier...).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import NetlistError
from .gatesim import Netlist


def _operand(prefix: str, bits: int) -> List[str]:
    return [f"{prefix}{index}" for index in range(bits)]


def full_adder(
    netlist: Netlist, a: str, b: str, carry_in: Optional[str], tag: str
) -> Tuple[str, str]:
    """Instantiate one full adder; returns (sum_net, carry_out_net).

    With ``carry_in`` None a half adder is produced.
    """
    if carry_in is None:
        sum_net = netlist.add_gate("xor", f"{tag}_s", [a, b])
        carry = netlist.add_gate("and", f"{tag}_c", [a, b])
        return sum_net, carry
    p = netlist.add_gate("xor", f"{tag}_p", [a, b])
    sum_net = netlist.add_gate("xor", f"{tag}_s", [p, carry_in])
    g = netlist.add_gate("and", f"{tag}_g", [a, b])
    t = netlist.add_gate("and", f"{tag}_t", [p, carry_in])
    carry = netlist.add_gate("or", f"{tag}_c", [g, t])
    return sum_net, carry


def ripple_adder_netlist(bits: int, registered: bool = True) -> Netlist:
    """N-bit ripple-carry adder, optionally with input/output registers.

    Registered variants measure the clock load too, matching the
    library's "clock capacitance included" convention.
    """
    if bits < 1:
        raise NetlistError("adder needs at least 1 bit")
    netlist = Netlist(f"ripple_adder_{bits}")
    a_in = [netlist.add_input(name) for name in _operand("a", bits)]
    b_in = [netlist.add_input(name) for name in _operand("b", bits)]
    if registered:
        a_regs = [netlist.add_register(f"ra{i}", a_in[i]) for i in range(bits)]
        b_regs = [netlist.add_register(f"rb{i}", b_in[i]) for i in range(bits)]
        a_bits, b_bits = a_regs, b_regs
    else:
        a_bits, b_bits = a_in, b_in
    carry: Optional[str] = None
    sums: List[str] = []
    for index in range(bits):
        sum_net, carry = full_adder(
            netlist, a_bits[index], b_bits[index], carry, f"fa{index}"
        )
        sums.append(sum_net)
    outs = sums + [carry]
    for index, net in enumerate(outs):
        if registered:
            netlist.add_register(f"rs{index}", net)
            netlist.mark_output(f"rs{index}")
        else:
            netlist.mark_output(net)
    return netlist


def array_multiplier_netlist(
    bits_a: int, bits_b: Optional[int] = None, registered: bool = True
) -> Netlist:
    """Unsigned carry-save array multiplier, bitsA x bitsB.

    Partial products are AND gates; rows of carry-save adders reduce
    them; a final ripple stage produces the high half.  This is the
    structure whose switched capacitance grows ~ bitsA*bitsB — the
    physical origin of EQ 20's bilinear coefficient.
    """
    if bits_b is None:
        bits_b = bits_a
    if bits_a < 1 or bits_b < 1:
        raise NetlistError("multiplier needs at least 1x1 bits")
    netlist = Netlist(f"array_multiplier_{bits_a}x{bits_b}")
    a_in = [netlist.add_input(name) for name in _operand("a", bits_a)]
    b_in = [netlist.add_input(name) for name in _operand("b", bits_b)]
    if registered:
        a_bits = [netlist.add_register(f"ra{i}", a_in[i]) for i in range(bits_a)]
        b_bits = [netlist.add_register(f"rb{i}", b_in[i]) for i in range(bits_b)]
    else:
        a_bits, b_bits = a_in, b_in

    # partial products pp[i][j] = a[i] & b[j]
    pp: List[List[str]] = []
    for i in range(bits_a):
        row = []
        for j in range(bits_b):
            row.append(
                netlist.add_gate("and", f"pp_{i}_{j}", [a_bits[i], b_bits[j]])
            )
        pp.append(row)

    # column-wise accumulation with full adders (Wallace-ish, serial)
    columns: List[List[str]] = [[] for _ in range(bits_a + bits_b)]
    for i in range(bits_a):
        for j in range(bits_b):
            columns[i + j].append(pp[i][j])
    counter = 0
    products: List[str] = []
    for position in range(bits_a + bits_b):
        column = columns[position]
        while len(column) > 1:
            if len(column) >= 3:
                a, b, c = column.pop(), column.pop(), column.pop()
                sum_net, carry = full_adder(netlist, a, b, c, f"cs{counter}")
            else:
                a, b = column.pop(), column.pop()
                sum_net, carry = full_adder(netlist, a, b, None, f"cs{counter}")
            counter += 1
            column.append(sum_net)
            if position + 1 < len(columns):
                columns[position + 1].append(carry)
        products.append(column[0] if column else None)
    final = [net for net in products if net is not None]
    for index, net in enumerate(final):
        if registered:
            netlist.add_register(f"rp{index}", net)
            netlist.mark_output(f"rp{index}")
        else:
            netlist.mark_output(net)
    return netlist


def register_bank_netlist(bits: int) -> Netlist:
    """A plain N-bit register: D in, Q out — pure clock+data load."""
    if bits < 1:
        raise NetlistError("register needs at least 1 bit")
    netlist = Netlist(f"register_{bits}")
    for index in range(bits):
        d = netlist.add_input(f"d{index}")
        q = netlist.add_register(f"q{index}", d)
        netlist.mark_output(q)
    return netlist


def mux_tree_netlist(bits: int, inputs: int) -> Netlist:
    """N-way, ``bits``-wide multiplexer built from 2:1 stages.

    ``inputs`` must be a power of two.  Select lines are shared across
    all bit lanes, as in a real datapath mux.
    """
    if bits < 1:
        raise NetlistError("mux needs at least 1 bit")
    if inputs < 2 or inputs & (inputs - 1):
        raise NetlistError("mux input count must be a power of two >= 2")
    import math

    select_bits = int(math.log2(inputs))
    netlist = Netlist(f"mux_{inputs}to1_{bits}")
    selects = [netlist.add_input(f"sel{level}") for level in range(select_bits)]
    lanes: List[List[str]] = []
    for lane in range(bits):
        lanes.append(
            [netlist.add_input(f"in{port}_{lane}") for port in range(inputs)]
        )
    for lane in range(bits):
        current = lanes[lane]
        for level in range(select_bits):
            reduced = []
            for pair in range(len(current) // 2):
                out = netlist.add_gate(
                    "mux2",
                    f"m{lane}_{level}_{pair}",
                    [current[2 * pair], current[2 * pair + 1], selects[level]],
                )
                reduced.append(out)
            current = reduced
        netlist.mark_output(current[0])
    return netlist


def comparator_netlist(bits: int) -> Netlist:
    """N-bit equality comparator: XNOR per bit + AND reduction."""
    if bits < 1:
        raise NetlistError("comparator needs at least 1 bit")
    netlist = Netlist(f"comparator_{bits}")
    a_bits = [netlist.add_input(name) for name in _operand("a", bits)]
    b_bits = [netlist.add_input(name) for name in _operand("b", bits)]
    eq_bits = [
        netlist.add_gate("xnor", f"eq{i}", [a_bits[i], b_bits[i]])
        for i in range(bits)
    ]
    if bits == 1:
        netlist.add_gate("buf", "equal", [eq_bits[0]])
    else:
        netlist.add_gate("and", "equal", eq_bits)
    netlist.mark_output("equal")
    return netlist


def memory_column_netlist(words: int) -> Netlist:
    """One SRAM-like column: word-line select mux tree over cells.

    Models the bit-line loading growth with word count — enough
    structure for the EQ 7 per-words coefficient to be fit from
    simulation.  ``words`` must be a power of two.
    """
    if words < 2 or words & (words - 1):
        raise NetlistError("word count must be a power of two >= 2")
    import math

    address_bits = int(math.log2(words))
    netlist = Netlist(f"memory_column_{words}")
    addresses = [netlist.add_input(f"addr{i}") for i in range(address_bits)]
    write = netlist.add_input("write_data")
    write_enable = netlist.add_input("write_enable")
    cells: List[str] = []
    for word in range(words):
        # select = AND over address bits in true/complement form
        literals = []
        for bit, addr in enumerate(addresses):
            if (word >> bit) & 1:
                literals.append(addr)
            else:
                literals.append(
                    netlist.add_gate("not", f"naddr{bit}_{word}", [addr])
                )
        select = (
            netlist.add_gate("and", f"sel{word}", literals)
            if len(literals) > 1
            else netlist.add_gate("buf", f"sel{word}", literals)
        )
        enable = netlist.add_gate("and", f"we{word}", [select, write_enable])
        cell_q = f"cell{word}"
        next_value = netlist.add_gate(
            "mux2", f"cellin{word}", [cell_q, write, enable]
        )
        netlist.add_register(cell_q, next_value)
        cells.append(
            netlist.add_gate("and", f"read{word}", [cell_q, select])
        )
    netlist.add_gate("or", "bitline", cells) if len(cells) > 1 else None
    netlist.mark_output("bitline" if len(cells) > 1 else cells[0])
    return netlist


def memory_array_netlist(words: int, bits: int) -> Netlist:
    """A ``bits``-wide memory: parallel columns sharing address decode.

    The structure whose measured capacitance exhibits every EQ 7 term:
    a fixed clocking overhead, decode growing with ``words``, per-column
    sense/output growing with ``bits``, and cell/bit-line loading growing
    with ``words * bits``.  Sweeping (words, bits) through the gate
    simulator and fitting ``fit_sram`` against the measurements is the
    full Landman flow for memories.

    ``words`` must be a power of two.
    """
    if words < 2 or words & (words - 1):
        raise NetlistError("word count must be a power of two >= 2")
    if bits < 1:
        raise NetlistError("memory needs at least 1 bit of width")
    import math

    address_bits = int(math.log2(words))
    netlist = Netlist(f"memory_{words}x{bits}")
    addresses = [netlist.add_input(f"addr{i}") for i in range(address_bits)]
    write_enable = netlist.add_input("write_enable")
    write_data = [netlist.add_input(f"write_data{b}") for b in range(bits)]

    # shared word-line decode (true/complement literals per word)
    selects: List[str] = []
    for word in range(words):
        literals = []
        for bit, addr in enumerate(addresses):
            if (word >> bit) & 1:
                literals.append(addr)
            else:
                literals.append(
                    netlist.add_gate("not", f"naddr{bit}_{word}", [addr])
                )
        select = (
            netlist.add_gate("and", f"sel{word}", literals)
            if len(literals) > 1
            else netlist.add_gate("buf", f"sel{word}", literals)
        )
        selects.append(netlist.add_gate("and", f"we{word}", [select, write_enable]))
        # keep the bare select for reads
        netlist.add_gate("buf", f"rsel{word}", [select])

    for column in range(bits):
        reads: List[str] = []
        for word in range(words):
            cell_q = f"cell{word}_{column}"
            next_value = netlist.add_gate(
                "mux2",
                f"cellin{word}_{column}",
                [cell_q, write_data[column], selects[word]],
            )
            netlist.add_register(cell_q, next_value)
            reads.append(
                netlist.add_gate(
                    "and", f"read{word}_{column}", [cell_q, f"rsel{word}"]
                )
            )
        if len(reads) > 1:
            netlist.add_gate("or", f"bitline{column}", reads)
        else:
            netlist.add_gate("buf", f"bitline{column}", reads)
        netlist.mark_output(f"bitline{column}")
    return netlist
