"""Synthetic video generation for the decompression case study.

The paper's luminance chip decodes real-time video for the InfoPad's
256 x 128 screen.  We have no 1994 video capture, so this module
synthesizes luminance frames with the two statistics that matter to the
power analysis: *spatial* correlation (neighbouring pixels alike — what
vector quantization exploits) and *temporal* correlation (consecutive
frames alike — what keeps bus activity low).

Frames are plain ``List[List[int]]`` of ``depth``-bit luminance values,
row-major, so the VQ codec and chip simulators stay dependency-free.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from ..errors import SimulationError

#: The InfoPad screen the paper's numbers assume.
SCREEN_WIDTH = 256
SCREEN_HEIGHT = 128
PIXEL_DEPTH = 6           # 6-bit luminance words
DISPLAY_FPS = 60          # screen refresh
SOURCE_FPS = 30           # incoming video


Frame = List[List[int]]


@dataclass
class VideoConfig:
    """Knobs for the synthetic source."""

    width: int = SCREEN_WIDTH
    height: int = SCREEN_HEIGHT
    depth: int = PIXEL_DEPTH
    spatial_smoothness: float = 0.85   # 0 = white noise, ->1 = flat fields
    temporal_smoothness: float = 0.9   # frame-to-frame carry-over
    seed: int = 7

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise SimulationError("frame dimensions must be positive")
        if not 1 <= self.depth <= 16:
            raise SimulationError("pixel depth must be 1..16 bits")
        for value in (self.spatial_smoothness, self.temporal_smoothness):
            if not 0.0 <= value < 1.0:
                raise SimulationError("smoothness must be in [0, 1)")

    @property
    def full_scale(self) -> int:
        return (1 << self.depth) - 1


class VideoSource:
    """Deterministic synthetic luminance video.

    Each frame is a first-order 2-D autoregressive field: a pixel mixes
    its left and upper neighbours with fresh noise (spatial
    correlation), and the whole field mixes with the previous frame
    (temporal correlation).  The result quantizes well under VQ — block
    variance is low — which is the property the paper's architecture
    comparison leans on.
    """

    def __init__(self, config: Optional[VideoConfig] = None):
        self.config = config or VideoConfig()
        self._rng = random.Random(self.config.seed)
        self._previous: Optional[Frame] = None
        self.frames_generated = 0

    def next_frame(self) -> Frame:
        cfg = self.config
        s = cfg.spatial_smoothness
        noise_scale = cfg.full_scale * (1.0 - s)
        frame: Frame = []
        for y in range(cfg.height):
            row: List[int] = []
            for x in range(cfg.width):
                neighbours = []
                if x > 0:
                    neighbours.append(row[x - 1])
                if y > 0:
                    neighbours.append(frame[y - 1][x])
                if neighbours:
                    base = sum(neighbours) / len(neighbours)
                else:
                    base = cfg.full_scale / 2.0
                value = s * base + self._rng.uniform(-noise_scale, noise_scale)
                row.append(max(0, min(cfg.full_scale, int(round(value)))))
            frame.append(row)
        if self._previous is not None and cfg.temporal_smoothness > 0:
            t = cfg.temporal_smoothness
            for y in range(cfg.height):
                for x in range(cfg.width):
                    mixed = t * self._previous[y][x] + (1.0 - t) * frame[y][x]
                    frame[y][x] = max(0, min(cfg.full_scale, int(round(mixed))))
        self._previous = frame
        self.frames_generated += 1
        return frame

    def frames(self, count: int) -> Iterator[Frame]:
        if count < 0:
            raise SimulationError("frame count cannot be negative")
        for _ in range(count):
            yield self.next_frame()


def frame_to_blocks(frame: Frame, block: int = 16) -> List[List[int]]:
    """Split a frame into ``block``-pixel horizontal runs (VQ vectors).

    The paper's scheme vector-quantizes 16-pixel blocks; rows must be a
    multiple of the block length.
    """
    if block < 1:
        raise SimulationError("block length must be >= 1")
    width = len(frame[0]) if frame else 0
    if width % block:
        raise SimulationError(
            f"frame width {width} not a multiple of block {block}"
        )
    vectors: List[List[int]] = []
    for row in frame:
        for start in range(0, width, block):
            vectors.append(list(row[start : start + block]))
    return vectors


def blocks_to_frame(vectors: Sequence[Sequence[int]], width: int) -> Frame:
    """Reassemble block vectors into a frame of the given width."""
    if not vectors:
        return []
    block = len(vectors[0])
    if width % block:
        raise SimulationError(
            f"width {width} not a multiple of block {block}"
        )
    per_row = width // block
    if len(vectors) % per_row:
        raise SimulationError("vector count does not fill whole rows")
    frame: Frame = []
    for index in range(0, len(vectors), per_row):
        row: List[int] = []
        for vector in vectors[index : index + per_row]:
            row.extend(vector)
        frame.append(row)
    return frame


def mean_squared_error(a: Frame, b: Frame) -> float:
    """Reconstruction MSE between two frames."""
    if len(a) != len(b) or (a and len(a[0]) != len(b[0])):
        raise SimulationError("frames differ in shape")
    total = 0.0
    count = 0
    for row_a, row_b in zip(a, b):
        for pa, pb in zip(row_a, row_b):
            total += (pa - pb) ** 2
            count += 1
    return total / count if count else 0.0


def peak_signal_to_noise(a: Frame, b: Frame, depth: int = PIXEL_DEPTH) -> float:
    """PSNR in dB; infinity for identical frames."""
    mse = mean_squared_error(a, b)
    if mse == 0:
        return math.inf
    peak = (1 << depth) - 1
    return 10.0 * math.log10(peak * peak / mse)
