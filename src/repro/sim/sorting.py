"""Instrumented sorting algorithms for the Ong & Yan energy study.

"Ong and Yan have used this methodology on a fictitious processor to
determine that there can be orders of magnitude variance in power
consumption for different sorting algorithms."

Two measurement routes, both producing
:class:`~repro.models.processor.InstructionProfile` objects for EQ 12:

* **VM route** (:mod:`repro.sim.isa`) — bubble and insertion sort coded
  in the fictitious processor's assembly and executed instruction by
  instruction; exact counts, the paper's SPIX/Pixie analogue.
* **Instrumented route** (this module) — every algorithm expressed over
  a :class:`TracedArray` whose loads/stores/compares/arithmetic are
  tallied and mapped to instruction classes, plus explicit loop-overhead
  accounting.  This scales to the recursive algorithms (quick, merge,
  heap) that are unpleasant to hand-assemble, and cross-checks the VM:
  tests assert the two routes agree on bubble sort within a small
  factor.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import SimulationError
from ..models.processor import InstructionProfile


class TracedArray:
    """A list wrapper that charges instruction classes for every access.

    Reads charge ``load`` (+1 ``alu`` for address arithmetic), writes
    charge ``store`` (+1 ``alu``); comparisons charge ``alu`` + a
    ``branch`` (taken/not-taken split 50/50 is approximated by charging
    plain ``branch`` — the VM cross-check bounds the error).
    """

    def __init__(self, values: Sequence[int], profile: InstructionProfile):
        self._data = list(values)
        self._profile = profile

    def __len__(self) -> int:
        return len(self._data)

    def read(self, index: int) -> int:
        self._profile.record("alu")   # address computation
        self._profile.record("load")
        return self._data[index]

    def write(self, index: int, value: int) -> None:
        self._profile.record("alu")
        self._profile.record("store")
        self._data[index] = value

    def compare(self, a: int, b: int) -> int:
        """-1, 0, 1 — charges the compare+branch pair."""
        self._profile.record("alu")
        self._profile.record("branch")
        if a < b:
            return -1
        if a > b:
            return 1
        return 0

    def swap(self, i: int, j: int) -> None:
        a = self.read(i)
        b = self.read(j)
        self.write(i, b)
        self.write(j, a)

    def loop_step(self) -> None:
        """Index increment + loop-bound test."""
        self._profile.record("alu")
        self._profile.record("branch_taken")

    def call_overhead(self) -> None:
        """Function call: save/restore frame (approx 2 stores + 2 loads)."""
        for _ in range(2):
            self._profile.record("store")
            self._profile.record("load")
        self._profile.record("branch_taken")

    def snapshot(self) -> List[int]:
        return list(self._data)


SortFunction = Callable[[TracedArray], None]


def bubble_sort(array: TracedArray) -> None:
    n = len(array)
    for limit in range(n - 1, 0, -1):
        for i in range(limit):
            array.loop_step()
            if array.compare(array.read(i), array.read(i + 1)) > 0:
                array.swap(i, i + 1)


def insertion_sort(array: TracedArray) -> None:
    n = len(array)
    for i in range(1, n):
        array.loop_step()
        key = array.read(i)
        j = i
        while j > 0 and array.compare(array.read(j - 1), key) > 0:
            array.loop_step()
            array.write(j, array.read(j - 1))
            j -= 1
        array.write(j, key)


def selection_sort(array: TracedArray) -> None:
    n = len(array)
    for i in range(n - 1):
        array.loop_step()
        smallest = i
        for j in range(i + 1, n):
            array.loop_step()
            if array.compare(array.read(j), array.read(smallest)) < 0:
                smallest = j
        if smallest != i:
            array.swap(i, smallest)


def quick_sort(array: TracedArray) -> None:
    def partition(low: int, high: int) -> int:
        pivot = array.read(high)
        boundary = low - 1
        for j in range(low, high):
            array.loop_step()
            if array.compare(array.read(j), pivot) <= 0:
                boundary += 1
                array.swap(boundary, j)
        array.swap(boundary + 1, high)
        return boundary + 1

    def recurse(low: int, high: int) -> None:
        array.call_overhead()
        if low < high:
            split = partition(low, high)
            recurse(low, split - 1)
            recurse(split + 1, high)

    recurse(0, len(array) - 1)


def merge_sort(array: TracedArray) -> None:
    def merge(low: int, mid: int, high: int) -> None:
        left = [array.read(i) for i in range(low, mid + 1)]
        right = [array.read(i) for i in range(mid + 1, high + 1)]
        i = j = 0
        k = low
        while i < len(left) and j < len(right):
            array.loop_step()
            if array.compare(left[i], right[j]) <= 0:
                array.write(k, left[i])
                i += 1
            else:
                array.write(k, right[j])
                j += 1
            k += 1
        while i < len(left):
            array.loop_step()
            array.write(k, left[i])
            i += 1
            k += 1
        while j < len(right):
            array.loop_step()
            array.write(k, right[j])
            j += 1
            k += 1

    def recurse(low: int, high: int) -> None:
        array.call_overhead()
        if low < high:
            mid = (low + high) // 2
            recurse(low, mid)
            recurse(mid + 1, high)
            merge(low, mid, high)

    recurse(0, len(array) - 1)


def heap_sort(array: TracedArray) -> None:
    n = len(array)

    def sift_down(start: int, end: int) -> None:
        root = start
        while 2 * root + 1 <= end:
            array.loop_step()
            child = 2 * root + 1
            if child + 1 <= end and array.compare(
                array.read(child), array.read(child + 1)
            ) < 0:
                child += 1
            if array.compare(array.read(root), array.read(child)) < 0:
                array.swap(root, child)
                root = child
            else:
                return

    for start in range(n // 2 - 1, -1, -1):
        array.loop_step()
        sift_down(start, n - 1)
    for end in range(n - 1, 0, -1):
        array.loop_step()
        array.swap(0, end)
        sift_down(0, end - 1)


ALGORITHMS: Dict[str, SortFunction] = {
    "bubble": bubble_sort,
    "insertion": insertion_sort,
    "selection": selection_sort,
    "quick": quick_sort,
    "merge": merge_sort,
    "heap": heap_sort,
}


def profile_sort(
    algorithm: str, data: Sequence[int]
) -> Tuple[List[int], InstructionProfile]:
    """Run one algorithm over ``data``, returning (sorted, profile)."""
    function = ALGORITHMS.get(algorithm)
    if function is None:
        raise SimulationError(
            f"unknown algorithm {algorithm!r}; pick from {sorted(ALGORITHMS)}"
        )
    if not data:
        raise SimulationError("nothing to sort")
    profile = InstructionProfile(algorithm)
    array = TracedArray(data, profile)
    function(array)
    result = array.snapshot()
    if result != sorted(data):
        raise SimulationError(
            f"{algorithm} produced an unsorted result — instrumentation bug"
        )
    return result, profile


def random_data(count: int, seed: int = 11, limit: int = 10_000) -> List[int]:
    """Reproducible random test arrays for the study."""
    if count < 1:
        raise SimulationError("count must be >= 1")
    rng = random.Random(seed)
    return [rng.randint(0, limit) for _ in range(count)]
