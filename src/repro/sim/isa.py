"""A small register-machine VM with an assembler and profiler.

The paper's EQ 12 route to better processor estimates: "More detailed
information can be obtained by using a coded algorithm and profilers
(e.g. SPIX, Pixie)".  Ong and Yan ran sorting algorithms "on a
fictitious processor" and found orders-of-magnitude energy spread.  This
module supplies that fictitious processor:

* a load/store RISC with 8 registers, word-addressed memory, and the
  instruction classes of :data:`repro.models.processor.DEFAULT_ISA`
  (``alu``, ``mul``, ``load``, ``store``, ``branch``/``branch_taken``,
  ``nop``);
* a two-pass assembler with labels and comments;
* an executor that returns both the machine state and an
  :class:`~repro.models.processor.InstructionProfile` ready for EQ 12.

Assembly syntax (one instruction per line; ``;`` starts a comment)::

    loop:   ld   r2, r1, 0     ; r2 = mem[r1 + 0]
            addi r1, r1, 1
            add  r3, r3, r2
            subi r4, r4, 1
            bne  r4, r0, loop  ; branch if r4 != r0
            halt
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import SimulationError
from ..models.processor import InstructionProfile

REGISTER_COUNT = 8

#: opcode -> (operand kinds, instruction class)
#: operand kinds: r = register, i = immediate, l = label
OPCODES: Dict[str, Tuple[str, str]] = {
    "ldi": ("ri", "alu"),      # rd = imm
    "mov": ("rr", "alu"),      # rd = rs
    "add": ("rrr", "alu"),     # rd = ra + rb
    "sub": ("rrr", "alu"),
    "and": ("rrr", "alu"),
    "or": ("rrr", "alu"),
    "xor": ("rrr", "alu"),
    "shl": ("rrr", "alu"),
    "shr": ("rrr", "alu"),
    "addi": ("rri", "alu"),    # rd = ra + imm
    "subi": ("rri", "alu"),
    "mul": ("rrr", "mul"),
    "ld": ("rri", "load"),     # rd = mem[ra + imm]
    "st": ("rri", "store"),    # mem[ra + imm] = rd
    "beq": ("rrl", "branch"),
    "bne": ("rrl", "branch"),
    "blt": ("rrl", "branch"),
    "bge": ("rrl", "branch"),
    "jmp": ("l", "branch"),    # always taken
    "nop": ("", "nop"),
    "halt": ("", "nop"),
}


@dataclass(frozen=True)
class Instruction:
    opcode: str
    operands: Tuple[int, ...]
    source_line: int


def assemble(source: str) -> List[Instruction]:
    """Two-pass assembly of the syntax above into Instruction tuples."""
    labels: Dict[str, int] = {}
    raw: List[Tuple[int, str, List[str]]] = []
    address = 0
    for line_number, line in enumerate(source.splitlines(), start=1):
        text = line.split(";", 1)[0].strip()
        if not text:
            continue
        while ":" in text:
            label, _, text = text.partition(":")
            label = label.strip()
            if not label or not label.replace("_", "a").isalnum():
                raise SimulationError(
                    f"line {line_number}: bad label {label!r}"
                )
            if label in labels:
                raise SimulationError(
                    f"line {line_number}: duplicate label {label!r}"
                )
            labels[label] = address
            text = text.strip()
        if not text:
            continue
        parts = text.replace(",", " ").split()
        raw.append((line_number, parts[0].lower(), parts[1:]))
        address += 1

    program: List[Instruction] = []
    for line_number, opcode, operands in raw:
        if opcode not in OPCODES:
            raise SimulationError(f"line {line_number}: unknown opcode {opcode!r}")
        kinds, _class = OPCODES[opcode]
        if len(operands) != len(kinds):
            raise SimulationError(
                f"line {line_number}: {opcode} takes {len(kinds)} operands, "
                f"got {len(operands)}"
            )
        encoded: List[int] = []
        for kind, operand in zip(kinds, operands):
            if kind == "r":
                if not operand.lower().startswith("r"):
                    raise SimulationError(
                        f"line {line_number}: expected register, got {operand!r}"
                    )
                index = int(operand[1:])
                if not 0 <= index < REGISTER_COUNT:
                    raise SimulationError(
                        f"line {line_number}: register {operand!r} out of range"
                    )
                encoded.append(index)
            elif kind == "i":
                try:
                    encoded.append(int(operand, 0))
                except ValueError:
                    raise SimulationError(
                        f"line {line_number}: bad immediate {operand!r}"
                    ) from None
            elif kind == "l":
                if operand not in labels:
                    raise SimulationError(
                        f"line {line_number}: unknown label {operand!r}"
                    )
                encoded.append(labels[operand])
        program.append(Instruction(opcode, tuple(encoded), line_number))
    return program


@dataclass
class MachineState:
    """Final state of a VM run."""

    registers: List[int]
    memory: List[int]
    instructions_executed: int
    halted: bool


class Machine:
    """The fictitious processor: executes assembled programs, profiling
    every instruction into EQ 12 classes."""

    def __init__(self, memory_words: int = 1024):
        if memory_words < 1:
            raise SimulationError("memory must have at least one word")
        self.memory_words = memory_words

    def run(
        self,
        program: Sequence[Instruction],
        memory: Optional[Sequence[int]] = None,
        max_instructions: int = 2_000_000,
        profile_name: str = "run",
    ) -> Tuple[MachineState, InstructionProfile]:
        if not program:
            raise SimulationError("empty program")
        mem: List[int] = list(memory or [])
        if len(mem) > self.memory_words:
            raise SimulationError("initial memory larger than machine memory")
        mem.extend([0] * (self.memory_words - len(mem)))
        registers = [0] * REGISTER_COUNT
        profile = InstructionProfile(profile_name)
        pc = 0
        executed = 0
        halted = False
        while 0 <= pc < len(program):
            if executed >= max_instructions:
                raise SimulationError(
                    f"exceeded {max_instructions} instructions — runaway program?"
                )
            instruction = program[pc]
            opcode = instruction.opcode
            ops = instruction.operands
            _kinds, instruction_class = OPCODES[opcode]
            next_pc = pc + 1
            if opcode == "halt":
                profile.record("nop")
                executed += 1
                halted = True
                break
            if opcode == "nop":
                pass
            elif opcode == "ldi":
                registers[ops[0]] = ops[1]
            elif opcode == "mov":
                registers[ops[0]] = registers[ops[1]]
            elif opcode in ("add", "sub", "and", "or", "xor", "shl", "shr", "mul"):
                a, b = registers[ops[1]], registers[ops[2]]
                if opcode == "add":
                    value = a + b
                elif opcode == "sub":
                    value = a - b
                elif opcode == "and":
                    value = a & b
                elif opcode == "or":
                    value = a | b
                elif opcode == "xor":
                    value = a ^ b
                elif opcode == "shl":
                    value = a << (b & 31)
                elif opcode == "shr":
                    value = a >> (b & 31)
                else:
                    value = a * b
                registers[ops[0]] = value
            elif opcode == "addi":
                registers[ops[0]] = registers[ops[1]] + ops[2]
            elif opcode == "subi":
                registers[ops[0]] = registers[ops[1]] - ops[2]
            elif opcode == "ld":
                address = registers[ops[1]] + ops[2]
                if not 0 <= address < self.memory_words:
                    raise SimulationError(
                        f"load address {address} out of range "
                        f"(line {instruction.source_line})"
                    )
                registers[ops[0]] = mem[address]
            elif opcode == "st":
                address = registers[ops[1]] + ops[2]
                if not 0 <= address < self.memory_words:
                    raise SimulationError(
                        f"store address {address} out of range "
                        f"(line {instruction.source_line})"
                    )
                mem[address] = registers[ops[0]]
            elif opcode in ("beq", "bne", "blt", "bge"):
                a, b = registers[ops[0]], registers[ops[1]]
                taken = (
                    (opcode == "beq" and a == b)
                    or (opcode == "bne" and a != b)
                    or (opcode == "blt" and a < b)
                    or (opcode == "bge" and a >= b)
                )
                if taken:
                    next_pc = ops[2]
                    instruction_class = "branch_taken"
            elif opcode == "jmp":
                next_pc = ops[0]
                instruction_class = "branch_taken"
            else:  # pragma: no cover - table and dispatch kept in sync
                raise SimulationError(f"unimplemented opcode {opcode!r}")
            profile.record(instruction_class)
            executed += 1
            pc = next_pc
        # register r0 is conventionally zero in the sorting programs;
        # the machine itself leaves it writable.
        return (
            MachineState(registers, mem, executed, halted),
            profile,
        )


# ---------------------------------------------------------------------------
# Reference assembly programs
# ---------------------------------------------------------------------------

#: Bubble sort of mem[0..n-1]; n preloaded in r1.
BUBBLE_SORT = """
        ; r1 = n, r0 = 0 (by convention)
        ldi  r0, 0
outer:  subi r1, r1, 1
        beq  r1, r0, done
        ldi  r2, 0          ; i = 0
inner:  ld   r3, r2, 0      ; a = mem[i]
        ld   r4, r2, 1      ; b = mem[i+1]
        blt  r3, r4, noswap
        beq  r3, r4, noswap
        st   r4, r2, 0      ; swap
        st   r3, r2, 1
noswap: addi r2, r2, 1
        blt  r2, r1, inner
        jmp  outer
done:   halt
"""

#: Insertion sort of mem[0..n-1]; n preloaded in r1.
INSERTION_SORT = """
        ldi  r0, 0
        ldi  r2, 1          ; i = 1
outer:  bge  r2, r1, done
        ld   r3, r2, 0      ; key = mem[i]
        mov  r4, r2         ; j = i
inner:  beq  r4, r0, place
        subi r5, r4, 1
        ld   r6, r5, 0      ; mem[j-1]
        blt  r6, r3, place  ; mem[j-1] < key -> stop
        beq  r6, r3, place
        st   r6, r4, 0      ; shift right
        mov  r4, r5
        jmp  inner
place:  st   r3, r4, 0
        addi r2, r2, 1
        jmp  outer
done:   halt
"""


def run_sort_program(
    source: str, data: Sequence[int], name: str = "sort"
) -> Tuple[List[int], InstructionProfile]:
    """Assemble and run a sorting program over ``data``.

    ``r1`` is preloaded with ``len(data)`` by prepending an ``ldi``;
    returns the sorted memory slice and the instruction profile.
    """
    if not data:
        raise SimulationError("nothing to sort")
    preload = f"ldi r1, {len(data)}\n"
    program = assemble(preload + source)
    machine = Machine(memory_words=max(1024, len(data) + 16))
    state, profile = machine.run(program, memory=list(data), profile_name=name)
    if not state.halted:
        raise SimulationError("program ran off the end without halt")
    return state.memory[: len(data)], profile
