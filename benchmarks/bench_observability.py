"""Observability overhead — instrumentation must not tax the engine.

The paper's usability story ("virtually instantaneous" feedback) is
why ``repro.obs`` defaults to no-op mode: ``span()`` returns a shared
null context manager and loggers drop records before formatting.  These
benches pin the cost down:

* the headline PLAY benchmark with observability disabled (the
  default every user and test sees);
* the same PLAY with tracing fully enabled, for the JSON artifact;
* a direct accounting that the no-op instrumentation adds **< 5%**
  to the 200-row evaluation — the acceptance bound committed in
  EXPERIMENTS.md.
"""

import statistics
import time

from conftest import banner

from repro import obs
from repro.core.design import Design
from repro.core.estimator import evaluate_power
from repro.core.expressions import compile_expression as E
from repro.core.model import CapacitiveTerm, TemplatePowerModel
from repro.core.parameters import Parameter

ADDER = TemplatePowerModel(
    "adder",
    capacitive=[CapacitiveTerm("bits", E("bitwidth * 68f"))],
    parameters=(Parameter("bitwidth", 16),),
)


def big_design(groups: int = 20, rows_per_group: int = 10) -> Design:
    """20 subdesigns x 10 rows: every subdesign opens a span."""
    design = Design("big")
    design.scope.set("VDD", 1.5)
    design.scope.set("f", 2e6)
    for group in range(groups):
        sub = Design(f"block{group:02d}")
        for index in range(rows_per_group):
            sub.add(f"row{index:03d}", ADDER,
                    params={"bitwidth": 8 + (group * rows_per_group + index) % 24})
        design.add_subdesign(f"block{group:02d}", sub)
    return design


def test_play_with_noop_observability(benchmark):
    """The default mode: spans are a shared null, loggers drop early."""
    design = big_design()
    assert not obs.is_enabled()
    report = benchmark(evaluate_power, design)

    banner(
        "Observability — PLAY with obs disabled (the default)",
        "instrumented hot paths must stay 'virtually instantaneous'",
    )
    print(f"no-op mode: {report.power * 1e3:.2f} mW, "
          f"{report.evaluated_rows} rows evaluated, "
          f"{report.leaf_count} leaves")
    assert report.leaf_count == 200


def test_play_with_tracing_enabled(benchmark):
    """Full span collection on, logs to the null sink."""
    design = big_design()

    def play():
        with obs.overridden(enabled=True):
            return evaluate_power(design)

    report = benchmark(play)
    trace = obs.last_trace()

    banner(
        "Observability — PLAY with tracing enabled",
        "the spans exist to be cheap enough to leave on in production",
    )
    spans = len(list(trace.walk())) if trace else 0
    print(f"traced: {report.power * 1e3:.2f} mW, {spans} spans collected")
    assert trace is not None
    assert trace.name == "evaluate_power"
    obs.clear_traces()


def _median_seconds(fn, repeats: int = 15) -> float:
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def test_noop_overhead_under_five_percent():
    """Account for every no-op span a PLAY issues: total cost < 5%.

    Overhead is measured directly — per-call cost of a disabled
    ``span()`` times the number of spans one evaluation opens, as a
    fraction of the evaluation's median wall time — rather than by
    diffing two noisy end-to-end runs.
    """
    design = big_design()
    assert not obs.is_enabled()

    # per-call cost of a disabled span() vs. an empty call
    calls = 50_000
    spanner = obs.span

    def spin_spans():
        for _ in range(calls):
            spanner("x")

    def noop():
        pass

    def spin_noops():
        for _ in range(calls):
            noop()

    per_span = _median_seconds(spin_spans) / calls
    per_call = _median_seconds(spin_noops) / calls
    net_per_span = max(0.0, per_span - per_call)

    # spans issued by one PLAY on this design (root + per-design nodes)
    with obs.overridden(enabled=True):
        evaluate_power(design)
        spans_per_play = len(list(obs.last_trace().walk()))
    obs.clear_traces()

    play_s = _median_seconds(lambda: evaluate_power(design))
    overhead = spans_per_play * net_per_span / play_s

    banner(
        "Observability — no-op overhead accounting",
        "acceptance bound: instrumentation < 5% of the hot path",
    )
    print(f"disabled span(): {net_per_span * 1e9:.0f} ns net per call; "
          f"{spans_per_play} spans per PLAY; "
          f"PLAY median {play_s * 1e3:.3f} ms; "
          f"overhead {overhead * 100:.2f}%")
    assert overhead < 0.05


def test_metrics_counting_cost_per_request():
    """The always-on half: one labelled inc + histogram observe."""
    registry = obs.MetricsRegistry(namespace="bench")
    requests = registry.counter("requests_total", "r", ("method", "route"))
    latency = registry.histogram("latency_seconds", "l", ("route",))

    calls = 20_000

    def account():
        for _ in range(calls):
            requests.inc(method="GET", route="/menu")
            latency.observe(0.0004, route="/menu")

    per_request = _median_seconds(account, repeats=7) / calls

    banner(
        "Observability — per-request metric accounting cost",
        "metrics always count; the increment must be beneath notice",
    )
    print(f"counter.inc + histogram.observe: "
          f"{per_request * 1e6:.2f} us per request")
    assert requests.value(method="GET", route="/menu") > 0
    # a generous ceiling: far below a single ~ms-scale page render
    assert per_request < 0.001
