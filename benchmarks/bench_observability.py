"""Observability overhead — instrumentation must not tax the engine.

The paper's usability story ("virtually instantaneous" feedback) is
why ``repro.obs`` defaults to no-op mode: ``span()`` returns a shared
null context manager and loggers drop records before formatting.  These
benches pin the cost down:

* the headline PLAY benchmark with observability disabled (the
  default every user and test sees);
* the same PLAY with tracing fully enabled, for the JSON artifact;
* a direct accounting that the no-op instrumentation adds **< 5%**
  to the 200-row evaluation — the acceptance bound committed in
  EXPERIMENTS.md.
"""

import json
import pathlib
import statistics
import time

from conftest import banner

from repro import obs
from repro.obs import propagate
from repro.core.design import Design
from repro.core.estimator import evaluate_power
from repro.core.expressions import compile_expression as E
from repro.core.model import CapacitiveTerm, TemplatePowerModel
from repro.core.parameters import Parameter

ADDER = TemplatePowerModel(
    "adder",
    capacitive=[CapacitiveTerm("bits", E("bitwidth * 68f"))],
    parameters=(Parameter("bitwidth", 16),),
)


def big_design(groups: int = 20, rows_per_group: int = 10) -> Design:
    """20 subdesigns x 10 rows: every subdesign opens a span."""
    design = Design("big")
    design.scope.set("VDD", 1.5)
    design.scope.set("f", 2e6)
    for group in range(groups):
        sub = Design(f"block{group:02d}")
        for index in range(rows_per_group):
            sub.add(f"row{index:03d}", ADDER,
                    params={"bitwidth": 8 + (group * rows_per_group + index) % 24})
        design.add_subdesign(f"block{group:02d}", sub)
    return design


def test_play_with_noop_observability(benchmark):
    """The default mode: spans are a shared null, loggers drop early."""
    design = big_design()
    assert not obs.is_enabled()
    report = benchmark(evaluate_power, design)

    banner(
        "Observability — PLAY with obs disabled (the default)",
        "instrumented hot paths must stay 'virtually instantaneous'",
    )
    print(f"no-op mode: {report.power * 1e3:.2f} mW, "
          f"{report.evaluated_rows} rows evaluated, "
          f"{report.leaf_count} leaves")
    assert report.leaf_count == 200


def test_play_with_tracing_enabled(benchmark):
    """Full span collection on, logs to the null sink."""
    design = big_design()

    def play():
        with obs.overridden(enabled=True):
            return evaluate_power(design)

    report = benchmark(play)
    trace = obs.last_trace()

    banner(
        "Observability — PLAY with tracing enabled",
        "the spans exist to be cheap enough to leave on in production",
    )
    spans = len(list(trace.walk())) if trace else 0
    print(f"traced: {report.power * 1e3:.2f} mW, {spans} spans collected")
    assert trace is not None
    assert trace.name == "evaluate_power"
    obs.clear_traces()


def _median_seconds(fn, repeats: int = 15) -> float:
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def test_noop_overhead_under_five_percent():
    """Account for every no-op span a PLAY issues: total cost < 5%.

    Overhead is measured directly — per-call cost of a disabled
    ``span()`` times the number of spans one evaluation opens, as a
    fraction of the evaluation's median wall time — rather than by
    diffing two noisy end-to-end runs.
    """
    design = big_design()
    assert not obs.is_enabled()

    # per-call cost of a disabled span() vs. an empty call
    calls = 50_000
    spanner = obs.span

    def spin_spans():
        for _ in range(calls):
            spanner("x")

    def noop():
        pass

    def spin_noops():
        for _ in range(calls):
            noop()

    per_span = _median_seconds(spin_spans) / calls
    per_call = _median_seconds(spin_noops) / calls
    net_per_span = max(0.0, per_span - per_call)

    # spans issued by one PLAY on this design (root + per-design nodes)
    with obs.overridden(enabled=True):
        evaluate_power(design)
        spans_per_play = len(list(obs.last_trace().walk()))
    obs.clear_traces()

    play_s = _median_seconds(lambda: evaluate_power(design))
    overhead = spans_per_play * net_per_span / play_s

    banner(
        "Observability — no-op overhead accounting",
        "acceptance bound: instrumentation < 5% of the hot path",
    )
    print(f"disabled span(): {net_per_span * 1e9:.0f} ns net per call; "
          f"{spans_per_play} spans per PLAY; "
          f"PLAY median {play_s * 1e3:.3f} ms; "
          f"overhead {overhead * 100:.2f}%")
    assert overhead < 0.05


def test_propagation_overhead_under_five_percent(tmp_path):
    """Cross-server propagation must cost < 5% of the fetch it traces.

    One federated hop adds, at most: inject (``outbound_headers``) on
    the requester plus extract (``parse_trace_header``) on the
    provider.  The baseline is the thing the overhead rides on — a real
    ``/api/model`` fetch over loopback HTTP, the cheapest federated
    fetch that exists (any real federation pays more wire time).  The
    in-process handler cost and the per-graft span-tree decode are
    printed alongside for context.
    """
    from repro.web.app import Application
    from repro.web.client import Browser
    from repro.web.server import PowerPlayServer

    application = Application(tmp_path / "state", server_name="bench")
    handle = application.handle
    path = "/api/model?name=ripple_adder"
    assert handle("GET", path).status == 200

    with obs.overridden(enabled=True):
        obs.clear_traces()
        # a realistic handler span: serve the request once, traced
        context_header = propagate.TraceContext("ab" * 16, "beef").header_value()
        response = handle("GET", path, headers={
            propagate.TRACE_HEADER: context_header,
        })
        encoded_span = response.headers[propagate.SPAN_HEADER]

        calls = 5_000

        def context_overhead():
            with obs.span("fetch"):
                for _ in range(calls):
                    propagate.outbound_headers()                  # inject
                    propagate.parse_trace_header(context_header)  # extract
            obs.clear_traces()

        def graft_cost():
            for _ in range(calls):
                propagate.decode_span_header(encoded_span)

        per_hop = _median_seconds(context_overhead, repeats=7) / calls
        per_graft = _median_seconds(graft_cost, repeats=7) / calls
        handler_s = _median_seconds(lambda: handle("GET", path), repeats=15)

        with PowerPlayServer(
            tmp_path / "wire", application=application
        ) as server:
            browser = Browser(server.base_url)
            fetch_s = _median_seconds(
                lambda: browser.get(path), repeats=15
            )
    obs.clear_traces()

    overhead = per_hop / fetch_s
    banner(
        "Observability — trace-propagation overhead per federated hop",
        "acceptance bound: inject + extract < 5% of the fetch",
    )
    print(f"inject+extract: {per_hop * 1e6:.2f} us per hop; "
          f"loopback /api/model fetch median {fetch_s * 1e3:.3f} ms "
          f"(handler alone {handler_s * 1e3:.3f} ms); "
          f"overhead {overhead * 100:.2f}%")
    # the graft (JSON decode + validation of the provider's span tree)
    # is paid once per *successful* federated fetch — report it so a
    # regression is visible, but the bound is on the per-request path
    print(f"span-tree decode (per successful graft): "
          f"{per_graft * 1e6:.2f} us")
    assert overhead < 0.05


def test_profile_artifact_for_ci():
    """Write the evaluate_power hot-path profile CI uploads.

    The artifact (``profile_evaluate_power.json``) is the
    ``GET /profile?fmt=json`` payload shape over 10 traced PLAYs of the
    200-row design — reviewers diff it across commits to spot hot-path
    regressions before they reach the headline benchmark.
    """
    design = big_design()
    with obs.overridden(enabled=True):
        obs.clear_traces()
        for _ in range(10):
            evaluate_power(design)
        profile = obs.aggregate(obs.recent_traces())
        payload = obs.profile_payload(profile, top=20)
    obs.clear_traces()

    artifact = pathlib.Path(__file__).parent / "profile_evaluate_power.json"
    artifact.write_text(json.dumps(payload, indent=1, sort_keys=True))

    banner(
        "Observability — evaluate_power hot-path profile (CI artifact)",
        "self time must be non-negative and sum back to the total",
    )
    top_rows = payload["hot_paths"][:5]
    for row in top_rows:
        print(f"  {row['path']:<45} self {row['self_s'] * 1e3:8.3f} ms "
              f"({row['count']} calls)")
    assert payload["traces"] == 10
    assert all(row["self_s"] >= 0.0 for row in payload["hot_paths"])
    assert payload["self_total_s"] <= payload["total_s"] + 1e-9


def test_metrics_counting_cost_per_request():
    """The always-on half: one labelled inc + histogram observe."""
    registry = obs.MetricsRegistry(namespace="bench")
    requests = registry.counter("requests_total", "r", ("method", "route"))
    latency = registry.histogram("latency_seconds", "l", ("route",))

    calls = 20_000

    def account():
        for _ in range(calls):
            requests.inc(method="GET", route="/menu")
            latency.observe(0.0004, route="/menu")

    per_request = _median_seconds(account, repeats=7) / calls

    banner(
        "Observability — per-request metric accounting cost",
        "metrics always count; the increment must be beneath notice",
    )
    print(f"counter.inc + histogram.observe: "
          f"{per_request * 1e6:.2f} us per request")
    assert requests.value(method="GET", route="/menu") > 0
    # a generous ceiling: far below a single ~ms-scale page render
    assert per_request < 0.001
