"""Ablation — generalizing Figure 1 -> Figure 3: memory organization.

The paper compares exactly two points (1 and 4 words per LUT access).
This ablation sweeps every divisor of the 16-pixel block, separating
the competing effects: the LUT's per-access capacitance grows with word
width while its access rate falls, and the full-rate output mux grows
with fan-in.  It also sweeps the *codebook size*, the other memory knob
an early exploration would turn.
"""

import pytest

from conftest import banner

from repro.core.estimator import evaluate_power
from repro.designs.luminance import build_luminance_design

WORDS_PER_ACCESS = (1, 2, 4, 8, 16)


def test_partition_sweep(benchmark):
    def sweep():
        rows = []
        for words in WORDS_PER_ACCESS:
            design = build_luminance_design(words_per_access=words)
            report = evaluate_power(design)
            mux = report["output_mux"].power if "output_mux" in [
                c.name for c in report.children
            ] else 0.0
            rows.append((words, report.power, report["lut"].power, mux))
        return rows

    rows = benchmark(sweep)

    banner(
        "Ablation — words per LUT access (generalized Fig 1 -> Fig 3)",
        "impl 2 (w=4) is ~1/5 of impl 1 (w=1); sweep exposes the trend",
    )
    print(f"{'w':>3} {'total':>10} {'lut':>10} {'mux':>9} {'vs w=1':>7}")
    base = rows[0][1]
    for words, total, lut, mux in rows:
        print(
            f"{words:>3} {total * 1e6:>8.1f}uW {lut * 1e6:>8.1f}uW "
            f"{mux * 1e6:>7.2f}uW {total / base:>6.2f}x"
        )

    totals = {words: total for words, total, _l, _m in rows}
    muxes = {words: mux for words, _t, _l, mux in rows}
    # the paper's two points land where it says
    assert totals[4] / totals[1] == pytest.approx(0.2, rel=0.5)
    # monotone improvement with diminishing returns across the block
    gains = [
        totals[a] - totals[b]
        for a, b in zip(WORDS_PER_ACCESS, WORDS_PER_ACCESS[1:])
    ]
    assert all(gain > 0 for gain in gains)
    assert gains == sorted(gains, reverse=True)
    # while the mux tax rises with fan-in
    assert muxes[16] > muxes[4] > muxes[2]


def test_codebook_size_sweep(benchmark):
    """The other axis: codebook entries trade LUT power for quality."""

    def sweep():
        rows = []
        for entries in (64, 128, 256, 512):
            design = build_luminance_design(
                words_per_access=4, codebook_entries=entries
            )
            rows.append((entries, evaluate_power(design)["lut"].power))
        return rows

    rows = benchmark(sweep)
    print(f"\n{'entries':>8} {'LUT power':>11}")
    for entries, watts in rows:
        print(f"{entries:>8} {watts * 1e6:>9.1f}uW")
    watts = dict(rows)
    assert watts[512] > watts[256] > watts[64]


def test_rom_vs_sram_lut(benchmark):
    """The codebook is fixed content — implement the LUT as a mask ROM.

    A follow-on the paper's framework makes answerable in seconds: the
    ROM saves on both organizations, compounding with the Figure 3
    reorganization.
    """
    from repro.models.storage import rom_memory, sram

    def compare_luts():
        rows = []
        for words, bits, f in ((4096, 6, 1.966e6), (1024, 24, 0.4915e6)):
            env = {"words": words, "bits": bits, "VDD": 1.5, "f": f,
                   "P_O": 0.5}
            sram_watts = sram(words, bits).power(env)
            rom_watts = rom_memory(words, bits).power(env)
            rows.append(((words, bits), sram_watts, rom_watts))
        return rows

    rows = benchmark(compare_luts)
    print(f"\n{'LUT org':>12} {'SRAM':>10} {'ROM':>10} {'saving':>8}")
    for (words, bits), sram_watts, rom_watts in rows:
        print(
            f"{words:>6}x{bits:<5} {sram_watts * 1e6:>8.1f}uW "
            f"{rom_watts * 1e6:>8.1f}uW "
            f"{100 * (1 - rom_watts / sram_watts):>6.0f}%"
        )
        assert rom_watts < sram_watts
