"""Telemetry history — sampler overhead, compaction throughput, recovery.

Three acceptance bounds from the durable-history PR, pinned as benches:

* one history sampling round (registry export + journaled append),
  amortised over the sampling interval, costs **< 1%** of the cheapest
  loopback request (``GET /api/ping`` over localhost HTTP) — recording
  history must be invisible next to serving traffic;
* compaction sustains **>= 10k samples/s** turning raw segments into
  1-minute rollups, so a day of 5 s samples folds in well under a
  minute;
* a kill -9 simulated at the worst instant (torn journal tail) loses
  nothing outside the torn line, and the recovered store answers
  queries byte-identically across two replays.

Writes ``bench_history.json`` (flat facts dict) for CI upload and the
benchmark trajectory.
"""

import json
import pathlib
import statistics
import time

from conftest import banner

from repro import obs
from repro.obs.history import (
    HistoryConfig,
    HistoryRecorder,
    HistoryStore,
)
from repro.web.app import Application
from repro.web.server import PowerPlayServer

import pytest

#: facts accumulated across the tests; the last test writes the artifact
RESULTS = {"bench": "telemetry_history"}

#: the recorded store samples on this cadence; overhead amortises over it
SAMPLE_INTERVAL_S = 5.0


@pytest.fixture(autouse=True)
def _fresh_registry():
    obs.get_registry().reset()
    yield
    obs.get_registry().reset()


def _median_seconds(fn, repeats: int = 15) -> float:
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


class _FakeClock:
    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def test_sampler_overhead_under_one_percent(tmp_path):
    """One sampling round, amortised, must cost < 1% of a loopback hit.

    Accounting: the sampler spends ``sample_s`` out of every
    ``interval_s`` of wall time, so at *any* request rate each request's
    amortised share of sampler work is ``sample_s / interval_s`` of its
    own duration — serving requests back-to-back at loopback speed,
    each ``/api/ping`` fetch carries ``(sample_s / interval_s) x
    fetch_s`` of history cost.  That fraction (which is rate-
    independent) must stay under 1%.  The loopback fetch median is
    measured alongside so the absolute scale is on record.
    """
    from repro.web.client import Browser

    app = Application(tmp_path / "app", server_name="bench-history")
    recorder = app.attach_history(
        tmp_path / "history",
        config=HistoryConfig(interval_s=SAMPLE_INTERVAL_S,
                             seal_every=120),
    )
    # realistic registry: a spread of routes and latency observations
    browserless_routes = ("/api/ping", "/healthz", "/menu", "/status")
    for route in browserless_routes:
        for _ in range(25):
            app.handle("GET", route)

    sample_s = _median_seconds(recorder.sample_once, repeats=25)

    with PowerPlayServer(
        tmp_path / "wire",
        application=Application(tmp_path / "wire-state",
                                server_name="wire", telemetry=False),
    ) as server:
        browser = Browser(server.base_url)
        fetch_s = _median_seconds(
            lambda: browser.get("/api/ping"), repeats=15
        )

    overhead = sample_s / SAMPLE_INTERVAL_S
    per_fetch_s = overhead * fetch_s

    banner(
        "Telemetry history — sampler overhead on the request path",
        "acceptance bound: amortised sampling < 1% of a loopback fetch",
    )
    print(f"sample round: {sample_s * 1e3:.3f} ms "
          f"({len(app.history.series_keys())} series) every "
          f"{SAMPLE_INTERVAL_S:g} s; loopback fetch median "
          f"{fetch_s * 1e3:.3f} ms carries {per_fetch_s * 1e6:.2f} us "
          f"of amortised history cost; overhead {overhead * 100:.3f}%")
    RESULTS["sample_round_s"] = sample_s
    RESULTS["sample_series"] = len(app.history.series_keys())
    RESULTS["loopback_fetch_s"] = fetch_s
    RESULTS["sampler_overhead_fraction"] = overhead
    assert overhead < 0.01


def test_compaction_throughput_over_10k_samples_per_second(tmp_path):
    """Raw -> m1 compaction must sustain >= 10k samples/s."""
    clock = _FakeClock()
    config = HistoryConfig(interval_s=5.0, seal_every=120,
                           fsync_journal=False)
    store = HistoryStore(tmp_path / "history", config, clock=clock)

    series_count = 40
    rounds = 1440  # two hours of 5 s samples, 12 raw segments
    for index in range(rounds):
        state = {
            "bench_counter_total": {
                "kind": "counter",
                "series": {
                    f'bench_counter_total{{worker="{worker}"}}':
                        float(index * (worker + 1))
                    for worker in range(series_count)
                },
            },
        }
        store.append(state, when=clock.now)
        clock.advance(5.0)
    store.seal()
    samples = rounds * series_count

    clock.advance(config.raw_retention_s + 1)
    start = time.perf_counter()
    done = store.compact()
    elapsed = time.perf_counter() - start
    throughput = samples / elapsed

    banner(
        "Telemetry history — compaction throughput",
        "acceptance bound: raw -> 1m rollup at >= 10k samples/s",
    )
    print(f"{samples} samples ({rounds} rounds x {series_count} series) "
          f"-> {done['m1']} rollup files in {elapsed * 1e3:.1f} ms "
          f"({throughput / 1e3:.1f}k samples/s)")
    RESULTS["compaction_samples"] = samples
    RESULTS["compaction_seconds"] = elapsed
    RESULTS["compaction_samples_per_s"] = throughput
    assert done["m1"] == rounds // config.seal_every
    assert throughput >= 10_000


def test_kill_recovery_loses_only_the_torn_tail(tmp_path):
    """Torn-journal recovery: sealed + intact rounds all survive, and
    the recovered store replays queries byte-identically."""
    clock = _FakeClock()
    config = HistoryConfig(interval_s=5.0, seal_every=100,
                           fsync_journal=False)
    store = HistoryStore(tmp_path / "history", config, clock=clock)
    rounds = 250  # 2 sealed segments + 50 journaled rounds
    for index in range(rounds):
        store.append({
            "bench_counter_total": {
                "kind": "counter",
                "series": {"bench_counter_total": float(index)},
            },
        }, when=clock.now)
        clock.advance(5.0)
    store.close()

    # kill -9 mid-append: tear the last journal line in half
    journal = store.journal_path.read_bytes()
    store.journal_path.write_bytes(journal[: len(journal) - 20])

    recover_s = _median_seconds(
        lambda: HistoryStore(tmp_path / "history", config,
                             clock=clock).close(),
        repeats=5,
    )
    recovered = HistoryStore(tmp_path / "history", config, clock=clock)
    first = recovered.query("bench_counter_total").to_json()
    second = HistoryStore(
        tmp_path / "history", config, clock=clock
    ).query("bench_counter_total").to_json()

    (series,) = json.loads(first)["series"]
    kept = len(series["points"])

    banner(
        "Telemetry history — kill -9 recovery",
        "only the torn journal line is lost; replays are byte-identical",
    )
    print(f"{rounds} rounds recorded, {kept} recovered "
          f"({rounds - kept} lost to the torn tail); reopen median "
          f"{recover_s * 1e3:.2f} ms; double replay byte-identical: "
          f"{first == second}")
    assert kept == rounds - 1  # exactly the torn line, nothing else
    assert first == second
    RESULTS["recovery_rounds_recorded"] = rounds
    RESULTS["recovery_rounds_kept"] = kept
    RESULTS["recovery_reopen_s"] = recover_s
    RESULTS["recovery_replay_deterministic"] = first == second


def test_write_artifact():
    """Persist the facts the earlier tests measured (CI artifact)."""
    required = (
        "sampler_overhead_fraction",
        "compaction_samples_per_s",
        "recovery_replay_deterministic",
    )
    missing = [key for key in required if key not in RESULTS]
    assert not missing, f"earlier bench tests did not run: {missing}"
    artifact = pathlib.Path(__file__).parent / "bench_history.json"
    artifact.write_text(json.dumps(RESULTS, indent=1, sort_keys=True))
    banner(
        "Telemetry history — bench_history.json artifact",
        "one flat facts dict for CI upload and the benchmark trajectory",
    )
    print(f"wrote {artifact.name}: sampler overhead "
          f"{RESULTS['sampler_overhead_fraction'] * 100:.3f}%, "
          f"compaction "
          f"{RESULTS['compaction_samples_per_s'] / 1e3:.1f}k samples/s, "
          "replay deterministic: "
          f"{RESULTS['recovery_replay_deterministic']}")
