"""R2 — the federated registry under a provider blackout.

The registry's claim: once a server has synced a provider's catalog, a
**total provider outage** costs nothing — every design still evaluates,
bit-identically, from the digest-verified local mirror.  This bench
stages the claim at fleet scale:

* a 10-server federation: 2 providers publishing the paper's designs
  (luminance Figures 1/3, the full InfoPad system) plus shared entries,
  and 8 subscribers;
* one provider **flaps** on a deterministic up/down schedule for the
  whole run; the other is **partitioned** (stopped) midway through the
  subscribers' sync wave;
* after one sync pass each, *all* providers go dark (100% outage) and
  every subscriber evaluates every design purely from its mirror.

Gates (the CI `registry` job fails if any is violated):

* 100% design evaluability at 100% provider outage after one sync;
* every mirrored evaluation is bit-identical to the all-healthy run;
* zero digest-unverified loads (every artifact read re-verifies; any
  truncated fetch the chaos layer produced was rejected, not mirrored);
* the degraded state is visible in /healthz, /status and /metrics.

Writes ``bench_registry.json`` next to this file for the CI artifact.
"""

import json
from pathlib import Path

from conftest import banner

from repro import obs
from repro.core.estimator import evaluate_power
from repro.designs.infopad import build_infopad
from repro.designs.luminance import build_figure1_design, build_figure3_design
from repro.library.catalog import Library
from repro.library.cells import build_default_library
from repro.registry.registry import ModelRegistry
from repro.registry.resolve import RegistryResolver
from repro.registry.store import MirrorStore
from repro.registry.sync import RegistrySyncClient, sync_from
from repro.web.app import Application
from repro.web.faults import ChaosServer, FaultPlan
from repro.web.resilience import CircuitBreaker, RetryPolicy
from repro.web.server import PowerPlayServer

SUBSCRIBERS = 8
DESIGNS = {
    "luminance_fig1": build_figure1_design,
    "luminance_fig3": build_figure3_design,
    "infopad": build_infopad,
}
ENTRIES = ("sram", "multiplier", "register", "ripple_adder")
RESULTS_PATH = Path(__file__).with_name("bench_registry.json")


def _publish_fleet_catalog(application):
    """The same artifacts (same publisher => same digests) on a provider."""
    registry = application.models_registry
    library = build_default_library()
    for name in ENTRIES:
        registry.publish_entry(library.get(name), publisher="fleet")
    for builder in DESIGNS.values():
        registry.publish_design(builder(), publisher="fleet")


def _sync_client(url):
    return RegistrySyncClient(
        url,
        retry_policy=RetryPolicy(max_attempts=8, sleep=lambda s: None),
        breaker=CircuitBreaker(failure_threshold=1000),
    )


def test_registry_survives_provider_blackout(tmp_path):
    banner(
        "R2 — 10-server federation: sync through chaos, evaluate through a "
        "blackout",
        "models put on the web stay usable when the web goes away",
    )
    obs.get_registry().reset()

    # -- the all-healthy baseline: what every design must evaluate to ----
    baseline = {
        name: evaluate_power(builder()).power
        for name, builder in DESIGNS.items()
    }

    # -- providers: one flapping all run, one partitioned mid-wave -------
    flap_plan = FaultPlan(flap_up=3, flap_down=2)
    flapping_app = Application(tmp_path / "flapping", server_name="flapping")
    _publish_fleet_catalog(flapping_app)
    flapping = ChaosServer(
        tmp_path / "flapping", flap_plan, application=flapping_app
    )

    doomed_app = Application(tmp_path / "doomed", server_name="doomed")
    _publish_fleet_catalog(doomed_app)
    doomed = PowerPlayServer(tmp_path / "doomed", application=doomed_app)

    mirrors = []
    sync_failures = 0
    with flapping:
        doomed.start()
        for index in range(SUBSCRIBERS):
            if index == SUBSCRIBERS // 2:
                doomed.stop()  # partition mid-wave: half the fleet loses it
            registry = ModelRegistry(
                MirrorStore(tmp_path / f"sub{index}" / "registry"),
                publisher=f"sub{index}",
            )
            for peer in (doomed.base_url, flapping.base_url):
                try:
                    sync_from(registry, _sync_client(peer))
                except Exception:
                    sync_failures += 1  # partitioned peer: expected
            mirrors.append(registry)
        doomed.stop()
    # ALL providers are now dark: 100% outage

    assert flap_plan.flap_outages > 0, "the flap schedule never fired"
    assert sync_failures > 0, "the partition never bit anyone"

    # -- the gate: every server evaluates every design from its mirror --
    evaluated = 0
    exact = 0
    for registry in mirrors:
        for name in DESIGNS:
            design = registry.get_design(name)  # digest-verified read
            evaluated += 1
            if evaluate_power(design).power == baseline[name]:
                exact += 1
        for entry_name in ENTRIES:
            assert registry.get_entry(entry_name).name == entry_name
    evaluability = evaluated / (SUBSCRIBERS * len(DESIGNS))
    print(
        f"subscribers={SUBSCRIBERS} designs={len(DESIGNS)} "
        f"evaluated={evaluated} bit_identical={exact} "
        f"flap_outages={flap_plan.flap_outages} "
        f"partitioned_syncs={sync_failures}"
    )
    assert evaluability == 1.0, "a subscriber could not evaluate offline"
    assert exact == evaluated, "a mirrored evaluation diverged"

    # -- zero digest-unverified loads ------------------------------------
    quarantines = 0
    for registry in mirrors:
        result = registry.verify_all()
        assert result["corrupt"] == []
        quarantines += len(registry.store.quarantined)
    integrity = obs.get_registry().counter(
        "powerplay_registry_integrity_total", "", ("event",)
    )
    verified_loads = integrity.value(event="verified")
    unverified_loads = quarantines + integrity.value(event="quarantine")
    print(
        f"digest_verified_loads={verified_loads:.0f} "
        f"unverified_loads={unverified_loads:.0f}"
    )
    assert verified_loads > 0
    assert unverified_loads == 0

    # -- degraded state is visible on every surface ----------------------
    subscriber_app = Application(tmp_path / "sub0", server_name="sub0")
    # no remotes configured: providers are dark, the mirror is all there is
    subscriber_app.model_resolver = RegistryResolver(
        Library("local"), registry=mirrors[0]
    )
    for entry_name in ENTRIES:
        entry, report = subscriber_app.model_resolver.resolve(entry_name)
        assert entry is not None and report.outcome == "mirror"

    healthz = subscriber_app.handle("GET", "/healthz")
    health = json.loads(healthz.body)
    assert healthz.status == 200  # mirror-serving is NOT a drain signal
    assert health["status"] == "degraded"

    status_body = subscriber_app.handle("GET", "/status").body
    assert "degraded" in status_body

    metrics_body = subscriber_app.handle("GET", "/metrics").body
    assert "powerplay_health_state 1" in metrics_body
    assert (
        'powerplay_registry_resolutions_total{outcome="mirror"}'
        in metrics_body
    )

    RESULTS_PATH.write_text(
        json.dumps(
            {
                "bench": "registry_chaos_federation",
                "servers": SUBSCRIBERS + 2,
                "subscribers": SUBSCRIBERS,
                "designs": sorted(DESIGNS),
                "entries": list(ENTRIES),
                "evaluability_at_full_outage": evaluability,
                "bit_identical": exact == evaluated,
                "digest_verified_loads": verified_loads,
                "unverified_loads": unverified_loads,
                "flap_outages": flap_plan.flap_outages,
                "partitioned_syncs": sync_failures,
                "health_at_outage": health["status"],
            },
            indent=1,
            sort_keys=True,
        )
    )
    print(f"results -> {RESULTS_PATH.name}")
