"""Ablation — implementation platform: custom silicon vs FPGA macro.

The paper flags FPGA macro-modeling as open further research; we built
the model (``repro.models.fpga``).  This ablation runs the platform
question an early exploration actually asks: *what does prototyping the
decompression datapath on an FPGA cost in power* — splitting the gap
into its two causes, interconnect capacitance (same-supply ratio) and
the supply difference (5 V part vs 1.5 V custom).
"""

import pytest

from conftest import banner

from repro.models.fpga import custom_vs_fpga, fpga_macro

GATE_COUNTS = (2000, 8000, 32000, 100_000)


def test_custom_vs_fpga_sweep(benchmark):
    def sweep():
        rows = []
        for gates in GATE_COUNTS:
            mixed = custom_vs_fpga(gates)  # 1.5 V custom vs 5 V FPGA
            same = custom_vs_fpga(gates, vdd_custom=5.0, vdd_fpga=5.0)
            rows.append((gates, mixed["custom"], mixed["fpga"],
                         same["ratio"], mixed["ratio"]))
        return rows

    rows = benchmark(sweep)

    banner(
        "Ablation — custom vs FPGA implementation platform",
        "FPGA macro-modeling is the paper's flagged further research",
    )
    print(f"{'gates':>8} {'custom@1.5V':>12} {'fpga@5V':>10} "
          f"{'C ratio':>8} {'total':>8}")
    for gates, custom, fpga, same_ratio, full_ratio in rows:
        print(
            f"{gates:>8} {custom * 1e6:>10.1f}uW {fpga * 1e3:>8.1f}mW "
            f"{same_ratio:>7.1f}x {full_ratio:>7.0f}x"
        )

    for gates, _custom, _fpga, same_ratio, full_ratio in rows:
        # interconnect-only gap sits in the classic band at scale
        if gates >= 32000:
            assert 8 < same_ratio < 60
        # supply difference multiplies it by (5/1.5)^2 ~ 11
        assert full_ratio > same_ratio


def test_fpga_utilization_effect(benchmark):
    """Underfilling the array costs clock power — a knob the macro
    exposes that a single datasheet number cannot."""
    model = fpga_macro()
    env = {"gates": 8000, "toggle": 0.125, "VDD": 5.0, "f": 2e6}

    def sweep():
        return {
            utilization: model.power(dict(env, utilization=utilization))
            for utilization in (0.3, 0.5, 0.7, 0.9)
        }

    results = benchmark(sweep)
    print(f"\n{'utilization':>12} {'power':>10}")
    for utilization, watts in sorted(results.items()):
        print(f"{utilization:>12.1f} {watts * 1e3:>8.2f}mW")
    assert results[0.3] > results[0.9]
