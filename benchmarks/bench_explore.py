"""The exploration engine vs the paper's one-PLAY-at-a-time loop.

The 1996 methodology varies "parameters such as bit-widths and supply
voltages" by hand, one spreadsheet edit per point.  ``grid_search``
automates the loop but still pays a full estimator pass per point;
:mod:`repro.explore` compiles the design once and memoizes row read
sets, so an InfoPad voltage x bit-width sweep re-computes only the rows
each step actually disturbs.

Two deterministic gates:

* the 8-worker engine sweep is at least 3x faster than the serial
  ``grid_search`` baseline, with bit-identical powers at every point;
* a job killed half-way and resumed from its checkpoint exports the
  byte-identical JSON an uninterrupted run produces.

Results land in ``bench_explore.json`` (the CI artifact).
"""

import json
import time
from pathlib import Path

from conftest import banner

from repro.core.optimize import grid_search
from repro.designs.infopad import build_infopad
from repro.explore import (
    Axis,
    JobStore,
    ParameterSpace,
    export_json,
    parse_axis_spec,
    run_sweep,
)
from repro.explore.engine import run_job

ARTIFACT = Path(__file__).with_name("bench_explore.json")

BITS_TARGET = "custom_hardware.luminance_chip.read_bank.bits"
BITS_VALUES = (8.0, 10.0, 12.0, 14.0, 16.0)
VDD2_SPEC = "VDD2=1.1:3.3:0.05"  # 45 supplies x 5 widths = 225 points


def make_space() -> ParameterSpace:
    return ParameterSpace(
        [
            parse_axis_spec(VDD2_SPEC),
            Axis("bw", BITS_VALUES, target=BITS_TARGET),
        ]
    )


def _record(update: dict) -> None:
    payload = {}
    if ARTIFACT.exists():
        payload = json.loads(ARTIFACT.read_text())
    payload.update(update)
    ARTIFACT.write_text(json.dumps(payload, indent=1, sort_keys=True))


def test_eight_workers_beat_serial_grid_search():
    design = build_infopad()
    bank = (
        design.row("custom_hardware").design
        .row("luminance_chip").design
        .row("read_bank")
    )
    vdd2_axis = parse_axis_spec(VDD2_SPEC)

    # serial baseline: grid_search per bit-width, exactly the loop a
    # designer would script around the PLAY button
    started = time.perf_counter()
    baseline = {}
    nominal_bits = bank.scope.raw("bits")
    try:
        for bits in BITS_VALUES:
            bank.scope.set("bits", bits)
            for point in grid_search(
                design, {"VDD2": list(vdd2_axis.values)}
            ):
                baseline[(bits, point.parameters["VDD2"])] = point.power
    finally:
        bank.scope.set("bits", nominal_bits)
    serial_s = time.perf_counter() - started

    # the engine: compiled once, memoized, 8 workers
    started = time.perf_counter()
    outcome = run_sweep(
        build_infopad(), make_space(),
        workers=8, mode="thread", chunk_size=64,
    )
    engine_s = time.perf_counter() - started

    assert len(outcome.rows) == len(baseline) == 225
    for row in outcome.rows:
        key = (row["values"]["bw"], row["values"]["VDD2"])
        assert row["objectives"]["power"] == baseline[key]  # bit-identical

    speedup = serial_s / engine_s
    banner(
        "Exploration engine — InfoPad VDD2 x bit-width sweep",
        "'parameters such as bit-widths and supply voltages can be "
        "varied dynamically'",
    )
    print(f"{len(baseline)} points: serial grid_search {serial_s:.3f} s, "
          f"8-worker engine {engine_s:.3f} s -> {speedup:.2f}x")
    print(f"memo: {outcome.report.hits} hits / {outcome.report.misses} "
          f"misses")
    _record(
        {
            "points": len(baseline),
            "serial_seconds": serial_s,
            "engine_seconds": engine_s,
            "speedup": speedup,
            "memo_hits": outcome.report.hits,
            "memo_misses": outcome.report.misses,
        }
    )
    assert speedup >= 3.0, f"only {speedup:.2f}x over serial grid_search"


def test_kill_and_resume_is_byte_identical(tmp_path):
    space = ParameterSpace(
        [
            parse_axis_spec("VDD2=1.1:3.3:0.4"),
            Axis("bw", (8.0, 12.0, 16.0), target=BITS_TARGET),
        ]
    )
    uninterrupted = run_sweep(build_infopad(), space, chunk_size=4)
    expected = export_json(
        uninterrupted.rows,
        uninterrupted.axis_names,
        uninterrupted.objective_names,
    )

    store = JobStore(tmp_path)
    job = store.create(build_infopad(), space, chunk_size=4)
    run_job(job, should_stop=lambda: len(job.chunks) >= 2)  # the "kill"
    assert job.state == "cancelled"
    assert 0 < job.done_points < job.total_points

    revived = JobStore(tmp_path).job(job.job_id)  # a fresh process
    run_job(revived)
    assert revived.state == "done"
    resumed = export_json(
        revived.result_rows(),
        revived.space.axis_names,
        revived.objective_names,
    )

    banner(
        "Exploration engine — checkpoint / resume equivalence",
        "sweep results must not depend on whether the job survived",
    )
    identical = resumed == expected
    print(f"{job.total_points} points, killed after {job.done_points}: "
          f"resumed export {'==' if identical else '!='} uninterrupted")
    _record({"resume_byte_identical": identical})
    assert identical
