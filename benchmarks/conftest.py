"""Shared fixtures/helpers for the experiment benches.

Every bench regenerates one table or figure from the paper's evaluation
and prints the same rows/series (run with ``-s`` to see them, or read
EXPERIMENTS.md for a captured set).  Assertions encode the *shape* the
paper reports — who wins, by roughly what factor — not absolute watts,
since our library is a re-characterization (see DESIGN.md).
"""

from __future__ import annotations


def banner(experiment: str, claim: str) -> None:
    print()
    print("=" * 72)
    print(f"{experiment}")
    print(f"paper: {claim}")
    print("=" * 72)
