"""E3 — Figure 4: the multiplier input form and its result excerpt.

The form takes two bit-widths and a multiplier (correlation) type and
returns capacitance/power "virtually instantaneously, so the user may
cycle through many options".  The published model anchor is EQ 20:

    C_T = bitwidthA * bitwidthB * 253 fF     (non-correlated inputs)

The bench regenerates the form's result table across a bit-width sweep
and both correlation classes, and times the feedback loop through the
actual web application (form POST -> computed page).
"""

import pytest

from conftest import banner

from repro.core.units import format_eng, format_quantity
from repro.models.computation import MULTIPLIER_C_UNCORRELATED, multiplier


def test_fig4_eq20_sweep(benchmark):
    model_plain = multiplier(correlation="uncorrelated")
    model_corr = multiplier(correlation="correlated")
    widths = (4, 8, 12, 16, 24, 32)

    def sweep():
        rows = []
        for bits in widths:
            env = {"bitwidthA": bits, "bitwidthB": bits, "VDD": 1.5, "f": 2e6}
            rows.append(
                (
                    bits,
                    model_plain.effective_capacitance(env),
                    model_plain.power(env),
                    model_corr.power(env),
                )
            )
        return rows

    rows = benchmark(sweep)

    banner(
        "E3 / Figure 4 — multiplier form (EQ 20)",
        "C_T = bwA * bwB * 253 fF; correlated variant, same shape",
    )
    print(f"{'bits':>5} {'C_T':>12} {'P (uncorr)':>14} {'P (corr)':>14}")
    for bits, capacitance, plain_w, corr_w in rows:
        print(
            f"{bits:>5} {format_quantity(capacitance, 'F'):>12} "
            f"{format_eng(plain_w, 'W'):>14} {format_eng(corr_w, 'W'):>14}"
        )

    # EQ 20 exactly, including the paper's 16x16 anchor
    for bits, capacitance, plain_w, corr_w in rows:
        assert capacitance == pytest.approx(
            bits * bits * MULTIPLIER_C_UNCORRELATED
        )
        assert corr_w < plain_w
    anchor = dict((bits, watts) for bits, _c, watts, _cw in rows)
    assert anchor[16] * 1e6 == pytest.approx(291.456)


def test_fig4_form_feedback_through_web_app(benchmark, tmp_path):
    """'The feedback is virtually instantaneous' — timed through the
    real form handler."""
    from repro.web.app import Application

    app = Application(tmp_path / "state")
    app.handle("POST", "/login", {"user": "bench"})
    form = {
        "user": "bench", "name": "multiplier",
        "p:bitwidthA": "16", "p:bitwidthB": "16",
        "p:VDD": "1.5", "p:f": "2M",
    }

    response = benchmark(app.handle, "POST", "/cell", form)
    assert response.status == 200
    assert "2.9146e-04 W" in response.body
    print("\nform round trip OK: 16x16 multiplier -> 2.9146e-04 W")
