"""E1 — Figure 2: the luminance_1 spreadsheet power analysis.

Regenerates the Figure 2 table: one row per block of the Figure 1
architecture (read bank, write bank, look-up table, output register),
parameterized by supply and pixel rate, with per-row power in
engineering notation and the design total.

Paper-visible numbers: supply 1.5 V, f = 2 MHz, read bank at f/16,
write bank at f/32, total ~8.8e-04 W, LUT dominant.
"""

import pytest

from conftest import banner

from repro.core.estimator import evaluate_power
from repro.core.report import render_power
from repro.designs.luminance import build_figure1_design


def test_fig2_luminance_sheet(benchmark):
    design = build_figure1_design()
    report = benchmark(evaluate_power, design)

    banner(
        "E1 / Figure 2 — luminance_1 summary spreadsheet",
        "VDD 1.5 V, f 2 MHz; banks 2048x8 at f/16 and f/32; total ~8.8e-4 W",
    )
    print(render_power(report))

    # the Figure 2 rows, by name
    assert [child.name for child in report.children] == [
        "read_bank", "write_bank", "lut", "output_register",
    ]
    # access-rate relations: read = f/16, write = f/32
    f_pixel = design.scope["f_pixel"]
    assert design.row("read_bank").scope["f"] == pytest.approx(f_pixel / 16)
    assert design.row("write_bank").scope["f"] == pytest.approx(f_pixel / 32)
    assert report["read_bank"].power == pytest.approx(
        2 * report["write_bank"].power
    )
    # total in the figure's band; LUT dominates
    assert 5e-4 < report.power < 1.2e-3
    assert report["lut"].power / report.power > 0.8


def test_fig2_parameter_variation(benchmark):
    """The table is parameterized: 'parameters such as bit-widths and
    supply voltages can be varied dynamically'."""
    design = build_figure1_design()

    def vary():
        low = evaluate_power(design, overrides={"VDD": 1.1}).power
        high = evaluate_power(design, overrides={"VDD": 3.0}).power
        return low, high

    low, high = benchmark(vary)
    print(f"\nVDD 1.1 V -> {low * 1e6:7.1f} uW;  VDD 3.0 V -> {high * 1e6:7.1f} uW")
    assert high / low == pytest.approx((3.0 / 1.1) ** 2, rel=1e-6)
