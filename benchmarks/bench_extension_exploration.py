"""Extension bench — the closed exploration loop the paper gestures at.

Three utilities built on top of the reproduction's core, exercised on
the paper's own designs:

* voltage optimization: minimum-power supply meeting the pixel-rate
  timing constraint (bisection over the composed critical path);
* grid search with Pareto extraction over (VDD, organization);
* battery life of the InfoPad, closing the loop from spreadsheet watts
  to the hours a terminal architect budgets.
"""

import pytest

from conftest import banner

from repro.core.composition import Chain
from repro.core.model import VoltageScaledTimingModel
from repro.core.estimator import evaluate_power
from repro.core.optimize import (
    grid_search,
    minimum_voltage,
    optimize_voltage,
    pareto_front,
)
from repro.designs.infopad import build_infopad
from repro.designs.luminance import build_figure3_design, build_luminance_design
from repro.models.battery import NICD_6V, NIMH_6V, battery_life


def test_voltage_optimization(benchmark):
    design = build_figure3_design()
    critical_path = Chain(
        "lut_to_pixel",
        [
            VoltageScaledTimingModel("lut_access", 500e-9, v_ref=1.5),
            VoltageScaledTimingModel("mux_reg", 60e-9, v_ref=1.5),
        ],
    )
    lut_rate = design.scope["f_pixel"] / 4

    result = benchmark(
        optimize_voltage, design, critical_path, lut_rate
    )

    banner(
        "Extension — minimum-power supply under the timing constraint",
        "the power/speed trade the spreadsheet exists to explore",
    )
    print(
        f"nominal: {result.nominal_vdd:.2f} V / "
        f"{result.nominal_power * 1e6:.1f} uW; optimum: {result.vdd:.2f} V / "
        f"{result.power * 1e6:.1f} uW ({100 * result.saving:.0f}% saved)"
    )
    assert result.vdd < result.nominal_vdd
    assert result.saving > 0.2
    assert critical_path.delay({"VDD": result.vdd}) <= 4.0 / design.scope[
        "f_pixel"
    ]


def test_pareto_over_voltage_and_organization(benchmark):
    """The two-knob design space: supply x words-per-access."""

    def explore():
        points = []
        for words in (1, 2, 4, 8):
            design = build_luminance_design(words_per_access=words)
            timing = VoltageScaledTimingModel(
                "lut", 9e-9 * 12 * words, v_ref=1.5  # wider reads are slower
            )
            for vdd in (1.0, 1.2, 1.5, 2.0):
                watts = evaluate_power(design, overrides={"VDD": vdd}).power
                delay = timing.delay({"VDD": vdd})
                points.append(((words, vdd), watts, delay))
        return points

    points = benchmark(explore)
    front = pareto_front([(watts, delay) for _cfg, watts, delay in points])
    by_objectives = {
        (watts, delay): cfg for cfg, watts, delay in points
    }
    print("\nPareto-optimal (power, LUT delay) configurations:")
    for watts, delay in front:
        words, vdd = by_objectives[(watts, delay)]
        print(
            f"  w={words:>2} VDD={vdd:>3.1f} V -> {watts * 1e6:7.1f} uW, "
            f"{delay * 1e9:6.1f} ns"
        )
    assert 2 <= len(front) < len(points)


def test_battery_life_closing_the_loop(benchmark):
    system = build_infopad()

    def closed_loop():
        rows = []
        for backlight in (1.0, 0.5):
            report = evaluate_power(system)
            system.row("display_lcds").set("backlight_duty", backlight)
            report = evaluate_power(system)
            rows.append(
                (backlight, report.power, battery_life(report.power, NIMH_6V))
            )
        system.row("display_lcds").set("backlight_duty", 1.0)
        return rows

    rows = benchmark(closed_loop)
    print(f"\n{'backlight':>10} {'system':>8} {'NiMH life':>10}")
    for backlight, watts, hours in rows:
        print(f"{backlight:>10.1f} {watts:>7.2f}W {hours:>9.2f}h")
    full, dimmed = rows[0], rows[1]
    assert dimmed[2] > full[2]
